//! End-to-end integration test: the full Mind Mappings pipeline
//! (dataset generation → surrogate training → gradient search) against the
//! black-box baselines, spanning every workspace crate.

use mind_mappings::prelude::*;
use mind_mappings::workloads::conv1d::Conv1dFamily;
use mm_core::GradientSearch;
use mm_search::AnnealingConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_phase1() -> Phase1Config {
    Phase1Config {
        num_samples: 2_000,
        mappings_per_problem: 50,
        hidden_layers: vec![48, 48],
        epochs: 20,
        batch_size: 64,
        ..Phase1Config::quick()
    }
}

#[test]
fn full_pipeline_beats_random_and_respects_lower_bound() {
    let mut rng = StdRng::seed_from_u64(0xE2E);
    let arch = Architecture::example();
    let (mm, history) = MindMappings::train(
        arch.clone(),
        &Conv1dFamily::default(),
        &quick_phase1(),
        &mut rng,
    )
    .expect("phase 1");
    assert!(history.final_train_loss().is_finite());
    assert!(history.final_test_loss().is_finite());

    // An unseen problem from the same family.
    let problem = ProblemSpec::conv1d(1777, 7);
    let model = CostModel::new(arch.clone(), problem.clone());
    let trace = mm.search(&problem, 600, &mut rng);
    let best = trace.best_mapping.as_ref().expect("mapping found");

    // The returned mapping is valid and its cost is consistent.
    assert!(mm.is_member(&problem, best));
    assert!((model.edp(best) - trace.best_cost).abs() / trace.best_cost < 1e-9);

    // EDP can never beat the algorithmic minimum.
    assert!(trace.best_cost >= model.lower_bound().edp * 0.999);

    // And it should comfortably beat the average random mapping.
    let space = mm.map_space(&problem);
    let mut random_mean = 0.0;
    let n = 30;
    for _ in 0..n {
        random_mean += model.edp(&space.random_mapping(&mut rng));
    }
    random_mean /= n as f64;
    assert!(
        trace.best_cost < random_mean,
        "MM {} vs random mean {random_mean}",
        trace.best_cost
    );
}

#[test]
fn mind_mappings_is_competitive_with_simulated_annealing_iso_iteration() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let arch = Architecture::example();
    let (mm, _) = MindMappings::train(
        arch.clone(),
        &Conv1dFamily::default(),
        &quick_phase1(),
        &mut rng,
    )
    .expect("phase 1");

    let problem = ProblemSpec::conv1d(2500, 9);
    let model = CostModel::new(arch.clone(), problem.clone());
    let space = mm.map_space(&problem);
    let iterations = 500u64;

    // SA queries the true cost model.
    let mut sa = SimulatedAnnealing::new(AnnealingConfig::default());
    let mut objective = CostModelObjective::new(model.clone());
    let sa_trace = sa.search(
        &space,
        &mut objective,
        Budget::iterations(iterations),
        &mut rng,
    );

    // MM queries its surrogate.
    let gs = GradientSearch::new(mm.surrogate(), problem.clone(), Phase2Config::default())
        .expect("family match");
    let mm_trace = gs.run(Budget::iterations(iterations), &model, &mut rng);

    // Both must be sane; MM must not be dramatically worse than SA (the
    // paper finds it better on average; with a toy surrogate we only assert
    // it lands in the same ballpark to keep the test robust).
    assert!(sa_trace.best_cost >= model.lower_bound().edp * 0.999);
    assert!(mm_trace.best_cost >= model.lower_bound().edp * 0.999);
    assert!(
        mm_trace.best_cost <= sa_trace.best_cost * 5.0,
        "MM ({:.3e}) is far worse than SA ({:.3e})",
        mm_trace.best_cost,
        sa_trace.best_cost
    );
}

#[test]
fn surrogate_generalizes_across_unseen_problem_sizes() {
    // Train once, then check the surrogate ranks mappings sensibly on
    // several problems it has never seen (Section 4.1.1's generalization
    // requirement).
    let mut rng = StdRng::seed_from_u64(0x6E9);
    let arch = Architecture::example();
    let (mm, _) = MindMappings::train(
        arch.clone(),
        &Conv1dFamily::default(),
        &quick_phase1(),
        &mut rng,
    )
    .expect("phase 1");

    for (w, r) in [(333, 3), (1500, 5), (3000, 9)] {
        let problem = ProblemSpec::conv1d(w, r);
        let model = CostModel::new(arch.clone(), problem.clone());
        let space = mm.map_space(&problem);
        let mut agree = 0;
        let pairs = 60;
        for _ in 0..pairs {
            let a = space.random_mapping(&mut rng);
            let b = space.random_mapping(&mut rng);
            let truth = model.edp(&a) < model.edp(&b);
            let pred = mm.surrogate().predict_normalized_edp(&problem, &a)
                < mm.surrogate().predict_normalized_edp(&problem, &b);
            if truth == pred {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / pairs as f64 > 0.55,
            "poor ranking agreement ({agree}/{pairs}) on unseen problem {problem}"
        );
    }
}
