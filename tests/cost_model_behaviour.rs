//! Integration tests of the cost model's qualitative behaviour on the
//! paper's workloads: the properties that make mapping space search hard
//! (Section 3.1) and the properties any credible accelerator model must have.

use mind_mappings::prelude::*;
use mind_mappings::workloads::cnn::CnnLayer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(name: &str) -> (CostModel, MapSpace) {
    let target = table1::by_name(name).expect("table 1 problem");
    let arch = evaluated_accelerator();
    let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
    (CostModel::new(arch, target.problem), space)
}

#[test]
fn cost_varies_by_orders_of_magnitude_across_mappings() {
    // Section 3.1: the choice of mapping changes cost by multiplicative
    // factors; random mappings of ResNet Conv_4 must span a wide EDP range.
    let (model, space) = setup("ResNet Conv_4");
    let mut rng = StdRng::seed_from_u64(0);
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..200 {
        let edp = model.normalized_edp(&space.random_mapping(&mut rng));
        min = min.min(edp);
        max = max.max(edp);
    }
    assert!(
        max / min > 10.0,
        "cost spread too small: min {min}, max {max}"
    );
}

#[test]
fn all_table1_problems_evaluate_consistently() {
    let mut rng = StdRng::seed_from_u64(1);
    for target in table1::all_problems() {
        let arch = evaluated_accelerator();
        let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, target.problem.clone());
        for _ in 0..10 {
            let m = space.random_mapping(&mut rng);
            let cost = model.evaluate(&m);
            assert!(cost.edp.is_finite(), "{}", target.problem.name);
            assert!(
                cost.edp >= model.lower_bound().edp * 0.999,
                "{} beats its lower bound",
                target.problem.name
            );
            // Meta statistics must be finite and mostly nonzero.
            let meta = cost.meta_statistics();
            assert!(meta.iter().all(|v| v.is_finite()));
            assert!(meta.iter().filter(|&&v| v > 0.0).count() >= meta.len() - 1);
        }
    }
}

#[test]
fn parallelism_improves_edp_for_compute_bound_layer() {
    // Spreading work over more PEs must reduce delay (and EDP) for a large
    // layer when tiles are kept identical.
    let problem = CnnLayer::resnet_conv4().into_problem();
    let arch = evaluated_accelerator();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, problem.clone());

    let k = problem.dim_by_name("K").unwrap();
    let mut serial = Mapping::minimal(&problem);
    for d in problem.dims() {
        serial.tiles[0][d.index()] = 1;
        serial.tiles[1][d.index()] = 2.min(problem.dim_size(d));
    }
    space.repair(&mut serial);
    let mut parallel = serial.clone();
    parallel.parallel[k.index()] = 64;
    space.repair(&mut parallel);
    assert!(space.is_member(&serial) && space.is_member(&parallel));

    let cs = model.evaluate(&serial);
    let cp = model.evaluate(&parallel);
    assert!(
        cp.cycles < cs.cycles,
        "parallel mapping should have fewer cycles ({} vs {})",
        cp.cycles,
        cs.cycles
    );
}

#[test]
fn dram_energy_dominates_for_poor_reuse_mappings() {
    // A mapping with unit tiles refetches operands constantly; DRAM energy
    // should dominate the breakdown (the physical motivation for tiling).
    let (model, _space) = setup("AlexNet Conv_2");
    let problem = model.problem().clone();
    let minimal = Mapping::minimal(&problem);
    let cost = model.evaluate(&minimal);
    let dram_energy: f64 = cost.energy_pj[2].iter().sum();
    let onchip_energy: f64 =
        cost.energy_pj[0].iter().sum::<f64>() + cost.energy_pj[1].iter().sum::<f64>();
    assert!(
        dram_energy > onchip_energy,
        "expected DRAM-dominated energy for a unit-tile mapping"
    );
}

#[test]
fn lower_bound_scales_with_problem_size() {
    let arch = evaluated_accelerator();
    let small = CostModel::new(arch.clone(), CnnLayer::alexnet_conv4().into_problem());
    let large = CostModel::new(arch, CnnLayer::inception_conv2().into_problem());
    assert!(large.lower_bound().energy_pj > small.lower_bound().energy_pj);
    assert!(large.lower_bound().cycles > small.lower_bound().cycles);
}

#[test]
fn map_space_size_estimates_match_paper_magnitude() {
    // Section 3.1 / 5.4.1: ResNet Conv_4's space is ~1e25 valid mappings.
    // Our estimate is a loose upper bound over the attribute product space
    // (it does not subtract capacity-invalid assignments), so we only check
    // that both spaces are astronomically large — far beyond exhaustive
    // search — which is the property the paper's argument rests on.
    let arch = evaluated_accelerator();
    let cnn = MapSpace::new(
        table1::by_name("ResNet Conv_4").unwrap().problem,
        arch.mapping_constraints(),
    );
    let mttkrp = MapSpace::new(
        table1::by_name("MTTKRP_0").unwrap().problem,
        arch.mapping_constraints(),
    );
    assert!(cnn.log10_size_estimate() > 20.0);
    assert!(mttkrp.log10_size_estimate() > 15.0);
}
