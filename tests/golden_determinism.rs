//! Golden determinism snapshots: byte-identical replay as a *checked-in
//! contract*.
//!
//! The mapper and the serving layer both promise that their canonical
//! report strings (`MapperReport::canonical_string`,
//! `NetworkReport::canonical_string`) depend only on the search
//! configuration and seed — never on worker counts, scheduling, or machine
//! speed. The pairwise runtime comparisons in the crate tests prove
//! worker-count independence *within* one build; these fixtures pin the
//! exact bytes across builds, so any change to the deterministic search
//! stream (RNG derivation, shard slicing, schedule sizing, merge order)
//! shows up as a reviewable fixture diff instead of silently reshuffling
//! results.
//!
//! Regenerate deliberately with `MM_BLESS=1 cargo test --test
//! golden_determinism` after an intentional behaviour change, and commit
//! the new fixtures with the code that changed them.
//!
//! The multi-axis shard test also pins this release's acceptance criterion:
//! the mixed-radix axis product must beat the PR 3 single-axis capacity
//! (`d! · largest_dim`) by at least the parallelism-axis factor on Table 1
//! layers.

use std::path::PathBuf;
use std::sync::Arc;

use mind_mappings::prelude::*;
use mm_mapspace::{ShardAxis, ShardAxisKind};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compare `actual` against the checked-in fixture, or rewrite the fixture
/// when `MM_BLESS` is set.
fn check_fixture(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("MM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixtures/");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {name} ({e}); generate it with \
             MM_BLESS=1 cargo test --test golden_determinism"
        )
    });
    if expected != actual {
        let diff_at = expected
            .lines()
            .zip(actual.lines())
            .position(|(a, b)| a != b);
        panic!(
            "canonical output diverged from fixture {name} (first differing line: {:?}); \
             if the change is intentional, re-bless with MM_BLESS=1 and commit the diff",
            diff_at
        );
    }
}

/// The pinned mapper scenario: multi-axis sharded SA over conv1d on the
/// example accelerator, deterministic schedule, shard-aware horizon hints
/// on (so the hint path is part of the pinned contract).
#[test]
fn mapper_canonical_report_matches_fixture() {
    let arch = Architecture::example();
    let problem = ProblemSpec::conv1d(512, 7);
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let evaluator: Arc<dyn CostEvaluator> =
        Arc::new(ModelEvaluator::edp(CostModel::new(arch, problem)));
    let report = Mapper::new(MapperConfig {
        threads: 2,
        shards: Some(4),
        shard_space: true,
        shard_horizon: true,
        seed: 7,
        termination: TerminationPolicy::search_size(240),
        ..MapperConfig::default()
    })
    .run(&space, evaluator, |_| {
        Box::new(SimulatedAnnealing::default())
    });
    assert_eq!(report.total_evaluations, 240);
    check_fixture("mapper_canonical.txt", &report.canonical_string());
}

/// The pinned serving scenario: the whole Table 1 network over a shared
/// pool, two disjoint shards per layer.
#[test]
fn network_canonical_report_matches_fixture() {
    // The PR 9 API split must not move these bytes: the request tag renders
    // the legacy config_tag format, so the fixture pins that too.
    let mut service = MappingService::new(
        evaluated_accelerator(),
        (
            ServiceConfig::default()
                .with_workers(2)
                .with_max_active_jobs(2)
                .with_queue_depth(4),
            RequestConfig::default()
                .with_seed(42)
                .with_search_size(96)
                .with_shards(2),
        ),
    );
    let report = service.map_network(&table1_network());
    assert_eq!(report.layers.len(), 8);
    check_fixture("network_canonical.txt", &report.canonical_string());
}

/// Acceptance criterion of the multi-axis refactor: on Table 1 layers the
/// axis-product capacity strictly exceeds PR 3's single-axis
/// `d! · largest_dim` by (at least) the parallelism-axis factor.
#[test]
fn table1_shard_capacity_beats_the_single_axis_formula() {
    let arch = evaluated_accelerator();
    let mut checked = 0;
    for target in table1::all_problems() {
        let problem = target.problem;
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let d = problem.num_dims();
        let factorial: u128 = (1..=d as u128).product();
        let largest = problem.dims().map(|dd| problem.dim_size(dd)).max().unwrap();
        let pr3_capacity = factorial * u128::from(largest);

        let axes = space.axis_product();
        let par_factor = axes
            .iter()
            .find(|a| a.kind() == ShardAxisKind::Parallel)
            .map(ShardAxis::cardinality)
            .unwrap_or(1);
        if par_factor < 2 {
            continue; // no parallelism axis on this layer
        }
        assert!(
            space.shard_capacity() > pr3_capacity * par_factor,
            "{}: multi-axis capacity {} must exceed PR3 {} x par factor {}",
            problem.name,
            space.shard_capacity(),
            pr3_capacity,
            par_factor
        );
        checked += 1;
    }
    assert!(
        checked >= 2,
        "at least two Table 1 layers must exercise the parallelism axis, got {checked}"
    );
}
