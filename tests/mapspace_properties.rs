//! Property-based integration tests over the map-space layer, using the
//! paper's real workloads (CNN layers and MTTKRP shapes) and accelerator:
//! every sampled mapping is valid, every projection of arbitrary noise is
//! valid, encodings round-trip, and the cost model respects its lower bound
//! on all of them.

use mind_mappings::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cnn_problem(n: u64, k: u64, c: u64, hw: u64, rs: u64) -> ProblemSpec {
    CnnLayer {
        name: "prop-cnn",
        n,
        k,
        c,
        hw,
        rs,
    }
    .into_problem()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(48))]

    /// Random valid mappings of random CNN layers are accepted by
    /// `is_member`, have costs above the algorithmic minimum, and re-encode
    /// losslessly enough for projection to be idempotent.
    #[test]
    fn sampled_cnn_mappings_are_valid_and_bounded(
        seed in 0u64..1_000_000,
        n in 1u64..16,
        k in 16u64..256,
        c in 8u64..256,
        hw in 7u64..56,
        rs_idx in 0usize..3,
    ) {
        let rs = [1u64, 3, 5][rs_idx];
        prop_assume!(hw >= rs);
        let problem = cnn_problem(n, k, c, hw, rs);
        let arch = evaluated_accelerator();
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem.clone());
        let mut rng = StdRng::seed_from_u64(seed);

        let mapping = space.random_mapping(&mut rng);
        prop_assert!(space.is_member(&mapping), "{:?}", space.validate(&mapping));

        let cost = model.evaluate(&mapping);
        prop_assert!(cost.edp.is_finite() && cost.edp > 0.0);
        prop_assert!(cost.total_energy_pj >= model.lower_bound().energy_pj * 0.999);
        prop_assert!(cost.cycles >= model.lower_bound().cycles * 0.999);
        prop_assert!(cost.utilization > 0.0 && cost.utilization <= 1.0);

        // Encode -> project round trip keeps the mapping valid and keeps the
        // discrete attributes intact.
        let enc = Encoding::for_problem(&problem);
        let v = enc.encode_mapping(&problem, &mapping);
        let reprojected = space.project(&v).unwrap();
        prop_assert!(space.is_member(&reprojected));
        prop_assert_eq!(&reprojected.tiles[0], &mapping.tiles[0]);
        prop_assert_eq!(&reprojected.parallel, &mapping.parallel);
        prop_assert_eq!(&reprojected.loop_orders, &mapping.loop_orders);
    }

    /// Projection maps arbitrary real vectors into the valid map space for
    /// MTTKRP problems of arbitrary shape.
    #[test]
    fn projection_of_noise_is_always_valid_for_mttkrp(
        seed in 0u64..1_000_000,
        i in 16u64..2048,
        j in 16u64..2048,
        k in 16u64..2048,
        l in 16u64..2048,
        scale in 1.0f32..1000.0,
    ) {
        let problem = MttkrpShape { name: "prop-mttkrp", i, j, k, l }.into_problem();
        let arch = evaluated_accelerator();
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let enc = Encoding::for_problem(&problem);
        prop_assert_eq!(enc.total_len(), 40);

        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let noise: Vec<f32> = (0..enc.mapping_len())
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let mapping = space.project(&noise).unwrap();
        prop_assert!(space.is_member(&mapping), "{:?}", space.validate(&mapping));
    }

    /// Mutation (SA/GA neighbourhood moves) and crossover preserve validity
    /// on the paper's target problems.
    #[test]
    fn local_moves_preserve_validity(seed in 0u64..1_000_000, steps in 1usize..30) {
        let problem = table1::by_name("AlexNet Conv_4").unwrap().problem;
        let arch = evaluated_accelerator();
        let space = MapSpace::new(problem, arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = space.random_mapping(&mut rng);
        let b = space.random_mapping(&mut rng);
        for _ in 0..steps {
            a = space.neighbor(&a, &mut rng);
            prop_assert!(space.is_member(&a));
        }
        let child = space.crossover(&a, &b, &mut rng);
        prop_assert!(space.is_member(&child));
    }
}

use mind_mappings::workloads::cnn::CnnLayer;
use mind_mappings::workloads::mttkrp::MttkrpShape;

#[test]
fn paper_encoding_lengths_for_table1_problems() {
    for target in table1::all_problems() {
        let enc = Encoding::for_problem(&target.problem);
        match target.algorithm {
            table1::Algorithm::CnnLayer => assert_eq!(enc.total_len(), 62),
            table1::Algorithm::Mttkrp => assert_eq!(enc.total_len(), 40),
        }
        // Meta-statistics lengths from Section 5.5: 12 and 15.
        let arch = evaluated_accelerator();
        let model = CostModel::new(arch, target.problem.clone());
        let m = Mapping::minimal(&target.problem);
        let meta = model.evaluate(&m).meta_statistics();
        match target.algorithm {
            table1::Algorithm::CnnLayer => assert_eq!(meta.len(), 12),
            table1::Algorithm::Mttkrp => assert_eq!(meta.len(), 15),
        }
    }
}
