//! The zero-allocation contract, enforced by the allocator itself.
//!
//! A counting `#[global_allocator]` wraps `System`; after a warmup pass
//! (first-use growth of scratch rows, proposal slots, and RNG state) the
//! steady-state `neighbor_into → validate → evaluate_into` loop — and the
//! batched `evaluate_batch_into` kernel — must perform **zero** heap
//! allocations per evaluation. This is the machine-checked version of the
//! `// mm-lint: hot-path` tags: the lint bans allocation *tokens*, this
//! test bans allocation *behaviour*.
//!
//! This file deliberately holds a single `#[test]`: the counter is global,
//! so a sibling test running on another harness thread would alias it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mind_mappings::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves (or grows in place) is still allocator
        // traffic the hot path must not generate.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_eval_loop_allocates_nothing() {
    let arch = evaluated_accelerator();
    let problem = CnnLayer {
        name: "zero-alloc",
        n: 1,
        k: 64,
        c: 64,
        hw: 14,
        rs: 3,
    }
    .into_problem();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, problem);
    let mut rng = StdRng::seed_from_u64(11);

    let mut current = space.random_mapping(&mut rng);
    let mut best_cost = f64::INFINITY;
    let mut proposal = current.clone();
    let mut scratch = EvalScratch::new();

    let mut hill_climb_step =
        |current: &mut Mapping, proposal: &mut Mapping, best: &mut f64, rng: &mut StdRng| {
            space.neighbor_into(current, proposal, rng);
            assert!(space.validate(proposal).is_ok());
            let cost = model.evaluate_into(&mut scratch, proposal);
            if cost.edp < *best {
                *best = cost.edp;
                std::mem::swap(current, proposal);
            }
        };

    // Warmup: first-use growth of scratch rows and mapping storage.
    for _ in 0..64 {
        hill_climb_step(&mut current, &mut proposal, &mut best_cost, &mut rng);
    }

    let before = allocations();
    for _ in 0..512 {
        hill_climb_step(&mut current, &mut proposal, &mut best_cost, &mut rng);
    }
    let scalar_allocs = allocations() - before;
    assert_eq!(
        scalar_allocs, 0,
        "scalar hot path allocated {scalar_allocs} times over 512 evals after warmup"
    );

    // The batch kernel over a reused buffer must be equally silent.
    let batch: Vec<Mapping> = (0..32).map(|_| space.random_mapping(&mut rng)).collect();
    let mut costs = BatchCosts::new();
    model.evaluate_batch_into(&mut scratch, &batch, &mut costs); // warmup growth

    let before = allocations();
    for _ in 0..16 {
        model.evaluate_batch_into(&mut scratch, &batch, &mut costs);
    }
    let batch_allocs = allocations() - before;
    assert_eq!(
        batch_allocs, 0,
        "batch hot path allocated {batch_allocs} times over 16x32 evals after warmup"
    );
    assert_eq!(costs.len(), batch.len());
    assert!(best_cost.is_finite());
}
