//! Telemetry invariance: the `mm-telemetry` layer observes — it must never
//! steer. The canonical report strings of the mapper and the serving layer
//! are required to stay **byte-identical** whether telemetry is off,
//! counting, or journaling, at any worker count; and a journal-level run
//! must actually have recorded the work it watched (nonzero evaluation,
//! sync, shard-repair, and cache counters, plus queue-latency samples).
//!
//! Every test toggles the process-global telemetry level, so they all
//! serialize on one lock and restore the ambient level before returning —
//! the other integration binaries never see a mutated level.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use mm_accel::CostModel;
use mm_mapper::{Mapper, MapperConfig, ModelEvaluator, SyncPolicy, TerminationPolicy};
use mm_mapspace::MapSpace;
use mm_search::SimulatedAnnealing;
use mm_serve::{MappingService, RequestConfig, ServiceConfig};
use mm_telemetry::Level;
use mm_workloads::{evaluated_accelerator, table1, table1_network};

/// Serializes level-mutating tests within this binary.
fn level_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Run `f` at the given telemetry level (with a fresh registry), restoring
/// the ambient level afterwards, and return `f`'s result plus the snapshot
/// taken before restoring.
fn at_level<T>(
    level: Level,
    f: impl FnOnce() -> T,
) -> (T, Option<mm_telemetry::TelemetrySnapshot>) {
    let previous = mm_telemetry::level();
    mm_telemetry::set_level(level);
    mm_telemetry::global().reset();
    let value = f();
    let snapshot = mm_telemetry::snapshot_if_enabled();
    mm_telemetry::set_level(previous);
    mm_telemetry::global().reset();
    (value, snapshot)
}

fn mapper_report(threads: usize) -> mm_mapper::MapperReport {
    let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
    let arch = evaluated_accelerator();
    let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
    let evaluator = Arc::new(ModelEvaluator::edp(CostModel::new(
        arch,
        target.problem.clone(),
    )));
    let mapper = Mapper::new(MapperConfig {
        threads,
        shards: Some(2),
        shard_space: true,
        seed: 11,
        sync: SyncPolicy::Anchor,
        sync_interval: 32,
        termination: TerminationPolicy::search_size(400),
        ..MapperConfig::default()
    });
    mapper.run(&space, evaluator, |_| {
        Box::new(SimulatedAnnealing::default())
    })
}

fn mapper_canonical(threads: usize) -> String {
    mapper_report(threads).canonical_string()
}

#[test]
fn mapper_reports_are_level_invariant_across_worker_counts() {
    let _guard = level_guard();
    let (reference, _) = at_level(Level::Off, || mapper_canonical(1));
    for threads in [1usize, 2, 4] {
        for level in [Level::Off, Level::Counters, Level::Journal, Level::Spans] {
            let (canonical, _) = at_level(level, || mapper_canonical(threads));
            assert_eq!(
                canonical, reference,
                "canonical string diverged at {level:?} with {threads} worker(s)"
            );
        }
    }
}

/// The deterministic span-identity of a snapshot: the `(name, id)` sequence
/// of every mapper-owned track, in track order. Pool-worker and pipeline
/// tracks are observational (their span counts depend on arrival timing),
/// so only the `mapper` / `mapper.shard*` tracks carry this contract.
fn mapper_span_identities(
    snap: &mm_telemetry::TelemetrySnapshot,
) -> Vec<(String, Vec<(&'static str, u64)>)> {
    snap.tracks
        .iter()
        .filter(|(name, _)| name.as_str() == "mapper" || name.starts_with("mapper.shard"))
        .map(|(name, spans)| (name.clone(), spans.iter().map(|s| (s.name, s.id)).collect()))
        .collect()
}

#[test]
fn mapper_span_ids_and_convergence_are_worker_count_invariant() {
    let _guard = level_guard();
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let (report, snapshot) = at_level(Level::Spans, || mapper_report(threads));
            (threads, report, snapshot.expect("spans level snapshots"))
        })
        .collect();

    let reference = mapper_span_identities(&runs[0].2);
    let names: Vec<&str> = reference
        .iter()
        .flat_map(|(_, spans)| spans.iter().map(|(n, _)| *n))
        .collect();
    // The whole causal chain shows up: run → sync rounds → shard drives →
    // searcher proposals → cost evaluations → shard syncs.
    for expected in [
        "mapper.run",
        "mapper.sync_round",
        "shard.drive",
        "searcher.propose",
        "cost.evaluate",
        "shard.sync",
    ] {
        assert!(names.contains(&expected), "missing span {expected}");
    }

    for (threads, report, snap) in &runs {
        assert_eq!(snap.level, "spans");
        assert_eq!(snap.dropped_spans, 0);
        assert_eq!(
            mapper_span_identities(snap),
            reference,
            "span identities diverged at {threads} worker(s)"
        );
        // Convergence rides in the report, merged across shards, covering
        // every evaluation, identical at every worker count.
        let convergence = report.convergence.as_ref().expect("convergence recorded");
        assert_eq!(convergence.total_evals, report.total_evaluations);
        assert_eq!(convergence.best_cost(), report.best_cost());
        assert_eq!(
            report.convergence, runs[0].1.convergence,
            "convergence diverged at {threads} worker(s)"
        );
        for (s, shard) in report.shards.iter().enumerate() {
            let sc = shard.convergence.as_ref().expect("shard convergence");
            assert_eq!(sc.total_evals, shard.evaluations, "shard {s}");
        }
    }

    // Span ids are a pure function of (track name, sequence): recomputable
    // offline from the snapshot alone.
    for (name, spans) in &reference {
        let track_id = mm_telemetry::track(name).id();
        for (seq, (_, id)) in spans.iter().enumerate() {
            assert_eq!(*id, mm_telemetry::span_id(track_id, seq as u64));
        }
    }
    mm_telemetry::global().reset();
}

#[test]
fn journaled_mapper_run_records_the_work_it_watched() {
    let _guard = level_guard();
    let (_, snapshot) = at_level(Level::Journal, || mapper_canonical(2));
    let snap = snapshot.expect("journal level snapshots");
    assert_eq!(snap.level, "journal");

    // Every evaluation came from an SA proposal, and some were accepted.
    assert_eq!(
        snap.counter("search.sa.proposed"),
        400,
        "all evaluations counted: {:?}",
        snap.counters
    );
    assert!(snap.counter("search.sa.accepted") > 0);
    // The anchor policy decided at every barrier round's sync point…
    assert!(snap.counter("sync.decides") > 0);
    assert!(snap.counter("sync.adopts") > 0, "anchor always adopts");
    assert!(snap.counter("mapper.sync_rounds") > 0);
    // …and the sharded space repaired every proposal into its slice.
    assert_eq!(snap.counter("mapspace.pin_fix_calls"), 400);
    // The journal carries structured events with monotone sequence numbers.
    assert!(!snap.events.is_empty());
    assert!(snap.events.windows(2).all(|w| w[0].seq < w[1].seq));
    assert!(snap.events.iter().any(|e| e.kind == "mapper.sync_round"));
}

fn serve_profile(workers: usize) -> (ServiceConfig, RequestConfig) {
    (
        ServiceConfig::default()
            .with_workers(workers)
            .with_max_active_jobs(workers.max(2))
            .with_cache_capacity(Some(4)),
        RequestConfig::default()
            .with_seed(42)
            .with_search_size(150)
            .with_shards(2)
            .with_sync(SyncPolicy::Anchor),
    )
}

fn serve_report(workers: usize) -> mm_serve::NetworkReport {
    let mut service = MappingService::new(evaluated_accelerator(), serve_profile(workers));
    service.map_network(&table1_network())
}

fn serve_canonical(workers: usize) -> String {
    serve_report(workers).canonical_string()
}

#[test]
fn serve_reports_are_level_invariant_across_worker_counts() {
    let _guard = level_guard();
    let (reference, _) = at_level(Level::Off, || serve_canonical(2));
    for workers in [1usize, 2, 4] {
        for level in [Level::Off, Level::Counters, Level::Journal, Level::Spans] {
            let (canonical, _) = at_level(level, || serve_canonical(workers));
            assert_eq!(
                canonical, reference,
                "canonical string diverged at {level:?} with {workers} worker(s)"
            );
        }
    }
}

#[test]
fn serve_convergence_traces_are_worker_count_invariant() {
    let _guard = level_guard();
    let (reference, _) = at_level(Level::Spans, || serve_report(1));
    for workers in [2usize, 4] {
        let (report, snapshot) = at_level(Level::Spans, || serve_report(workers));
        let snap = snapshot.expect("spans level snapshots");
        assert_eq!(snap.dropped_spans, 0);
        // The job-lifecycle spans exist (one serve.job track per shard job).
        assert!(
            snap.tracks.iter().any(|(name, spans)| {
                name.starts_with("serve.job") && spans.iter().any(|s| s.name == "job.run")
            }),
            "job lifecycle spans recorded"
        );
        for (a, b) in reference.layers.iter().zip(&report.layers) {
            let ca = a.convergence.as_ref().expect("layer convergence");
            let cb = b.convergence.as_ref().expect("layer convergence");
            assert_eq!(
                ca, cb,
                "layer {} convergence diverged at {workers} workers",
                a.layer
            );
            assert_eq!(ca.total_evals, a.evaluations, "layer {}", a.layer);
            assert!(ca.best_cost().is_finite(), "layer {}", a.layer);
        }
    }
    mm_telemetry::global().reset();
}

#[test]
fn journaled_serve_run_records_cache_jobs_and_sync() {
    let _guard = level_guard();
    let (report, snapshot) = at_level(Level::Journal, || {
        let mut service = MappingService::new(evaluated_accelerator(), serve_profile(2));
        let first = service.map_network(&table1_network());
        // The second request replays from cache (bounded to 4 entries, so
        // evicted layers re-search — both paths get exercised).
        let second = service.map_network(&table1_network());
        (first, second)
    });
    let snap = snapshot.expect("journal level snapshots");
    let (first, second) = report;

    // The embedded snapshot rides in the report and is the same registry.
    let embedded = second.telemetry.as_ref().expect("snapshot embedded");
    assert_eq!(embedded.counters, snap.counters);

    // Cache statistics in the report agree with the telemetry counters.
    assert_eq!(second.cache.capacity, Some(4));
    assert!(second.cache.evictions > 0, "8 distinct layers, capacity 4");
    assert_eq!(snap.counter("serve.cache.hits"), second.cache.hits);
    assert_eq!(snap.counter("serve.cache.misses"), second.cache.misses);
    assert_eq!(snap.counter("serve.cache.inserts"), second.cache.inserts);
    assert_eq!(
        snap.counter("serve.cache.evictions"),
        second.cache.evictions
    );
    assert!(second.cache.hits > 0 && second.cache.misses > 0);

    // Scheduler jobs ran (first call: 8 layers × 2 shards) and balanced.
    let started = snap.counter("serve.scheduler.jobs_started");
    assert!(started >= 16, "at least the first call's shard jobs");
    assert_eq!(started, snap.counter("serve.scheduler.jobs_finished"));
    assert!(snap.counter("serve.scheduler.sync_actions") > 0);
    assert!(snap.counter("mapspace.pin_fix_calls") > 0);

    // Every evaluation passed through the shared pool's workers, which also
    // sampled batch sizes and queue latency.
    let pool_evals: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("eval_pool.worker"))
        .map(|(_, v)| v)
        .sum();
    assert!(pool_evals > 0, "pool workers counted: {:?}", snap.counters);
    let batch = snap
        .histograms
        .get("eval_pool.batch_size")
        .expect("batch-size histogram");
    assert!(batch.count > 0 && batch.sum >= batch.count);
    let latency = snap
        .histograms
        .get("eval_pool.queue_latency_us")
        .expect("queue-latency histogram");
    assert!(latency.count > 0);

    // Cached replay reproduces every layer's search result exactly — only
    // the cache-hit provenance flags may differ between the two calls.
    assert_eq!(first.layers.len(), second.layers.len());
    for (a, b) in first.layers.iter().zip(&second.layers) {
        assert_eq!(a.layer, b.layer);
        assert_eq!(a.best_mapping, b.best_mapping, "layer {}", a.layer);
        assert_eq!(a.best_metrics, b.best_metrics, "layer {}", a.layer);
        assert_eq!(a.evaluations, b.evaluations, "layer {}", a.layer);
    }
}
