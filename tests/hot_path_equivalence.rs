//! The zero-alloc hot path is a pure refactor: bit-identical costs.
//!
//! `CostModel::evaluate_into` (scratch-reusing) and
//! `CostModel::evaluate_batch_into` (SoA batch kernel) are the steady-state
//! entry points behind `CostEvaluator::evaluate` / `evaluate_batch`; the
//! allocating `evaluate` is the reference implementation. Every float they
//! produce must match `evaluate` *to the bit* (`f64::to_bits`), on valid
//! mappings and on out-of-space ones alike — otherwise the "fast path" is
//! silently a different cost model and every checked-in baseline lies.
//!
//! The golden-fixture replay closes the loop end to end: the pinned mapper
//! scenario from `golden_determinism` re-run through the batched pool at
//! 1, 2, and 4 workers must still reproduce the checked-in canonical bytes.

use std::path::PathBuf;
use std::sync::Arc;

use mind_mappings::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_summary_bits(reference: &CostBreakdown, fast: &CostSummary, what: &str) {
    assert_eq!(
        reference.compute_energy_pj.to_bits(),
        fast.compute_energy_pj.to_bits(),
        "{what}: compute_energy_pj diverged"
    );
    assert_eq!(
        reference.total_energy_pj.to_bits(),
        fast.total_energy_pj.to_bits(),
        "{what}: total_energy_pj diverged"
    );
    assert_eq!(
        reference.cycles.to_bits(),
        fast.cycles.to_bits(),
        "{what}: cycles diverged"
    );
    assert_eq!(
        reference.utilization.to_bits(),
        fast.utilization.to_bits(),
        "{what}: utilization diverged"
    );
    assert_eq!(
        reference.edp.to_bits(),
        fast.edp.to_bits(),
        "{what}: edp diverged"
    );
    assert_eq!(
        reference
            .accesses
            .total_at(mind_mappings::mapspace::mapping::Level::Dram),
        fast.last_level_accesses,
        "{what}: last_level_accesses diverged"
    );
}

/// A valid mapping plus deliberately out-of-space mutants of it: the cost
/// model is total over the encoding, so the fast paths must agree off the
/// feasible set too (the searcher evaluates repaired proposals, but the
/// contract is on the whole domain).
fn mapping_family(space: &MapSpace, rng: &mut StdRng) -> Vec<Mapping> {
    let valid = space.random_mapping(rng);
    let mut oversized = valid.clone();
    for tile in &mut oversized.tiles[0] {
        *tile = tile.saturating_mul(3);
    }
    let mut starved = valid.clone();
    for alloc in &mut starved.buffer_alloc {
        for frac in alloc.iter_mut() {
            *frac = (*frac * 0.01).max(1e-6);
        }
    }
    let mut overfanned = valid.clone();
    for par in &mut overfanned.parallel {
        *par = par.saturating_mul(7);
    }
    vec![valid, oversized, starved, overfanned]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(32))]

    /// `evaluate_into` through a reused scratch is bit-identical to the
    /// allocating `evaluate`, across random CNN shapes and both valid and
    /// invalid mappings.
    #[test]
    fn evaluate_into_is_bit_identical_across_the_domain(
        seed in 0u64..1_000_000,
        k in 16u64..256,
        c in 8u64..128,
        hw in 7u64..42,
    ) {
        let problem = CnnLayer { name: "hot-path", n: 1, k, c, hw, rs: 3 }.into_problem();
        let arch = evaluated_accelerator();
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        let mut rng = StdRng::seed_from_u64(seed);

        // One scratch across the whole family: stale state from the
        // previous mapping must never leak into the next result.
        let mut scratch = EvalScratch::new();
        for (i, mapping) in mapping_family(&space, &mut rng).iter().enumerate() {
            let reference = model.evaluate(mapping);
            let fast = model.evaluate_into(&mut scratch, mapping);
            assert_summary_bits(&reference, &fast, &format!("family member {i}"));
            prop_assert_eq!(
                &reference.energy_pj,
                &scratch.energy_pj().to_vec(),
                "family member {}: per-level energy rows diverged",
                i
            );
        }
    }

    /// The SoA batch kernel equals the scalar path column for column, and
    /// reusing the output buffer across batches leaves no stale rows.
    #[test]
    fn evaluate_batch_into_matches_scalar_bits(
        seed in 0u64..1_000_000,
        k in 16u64..256,
        c in 8u64..128,
    ) {
        let problem = CnnLayer { name: "hot-path-batch", n: 1, k, c, hw: 14, rs: 3 }.into_problem();
        let arch = evaluated_accelerator();
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        let mut rng = StdRng::seed_from_u64(seed);

        let big: Vec<Mapping> = (0..9).flat_map(|_| mapping_family(&space, &mut rng)).collect();
        let small: Vec<Mapping> = mapping_family(&space, &mut rng);

        let mut scratch = EvalScratch::new();
        let mut costs = BatchCosts::new();
        for mappings in [&big, &small] {
            model.evaluate_batch_into(&mut scratch, mappings, &mut costs);
            prop_assert_eq!(costs.len(), mappings.len(), "batch length mismatch");
            for (i, mapping) in mappings.iter().enumerate() {
                let reference = model.evaluate(mapping);
                let fast = costs.summary(i);
                assert_summary_bits(&reference, &fast, &format!("batch row {i}"));
            }
        }
    }
}

/// Replay the pinned `golden_determinism` mapper scenario through the
/// batched pool at 1, 2, and 4 workers: the canonical bytes must match the
/// checked-in fixture at every width. (No `MM_BLESS` path here on purpose —
/// this test *consumes* the fixture; blessing stays with
/// `golden_determinism`.)
#[test]
fn golden_fixture_replays_identically_at_1_2_4_workers() {
    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mapper_canonical.txt");
    let expected = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing fixture mapper_canonical.txt ({e}); generate it with \
             MM_BLESS=1 cargo test --test golden_determinism"
        )
    });
    for threads in [1usize, 2, 4] {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let evaluator: Arc<dyn CostEvaluator> =
            Arc::new(ModelEvaluator::edp(CostModel::new(arch, problem)));
        let report = Mapper::new(MapperConfig {
            threads,
            shards: Some(4),
            shard_space: true,
            shard_horizon: true,
            seed: 7,
            termination: TerminationPolicy::search_size(240),
            ..MapperConfig::default()
        })
        .run(&space, evaluator, |_| {
            Box::new(SimulatedAnnealing::default())
        });
        assert_eq!(report.total_evaluations, 240, "threads={threads}");
        assert_eq!(
            report.canonical_string(),
            expected,
            "canonical bytes shifted at threads={threads}; the hot path must be \
             worker-count independent"
        );
    }
}
