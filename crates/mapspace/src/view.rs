//! [`MapSpaceView`]: the searcher-facing map-space API, and
//! [`ShardedMapSpace`]: a provably disjoint slice of a [`MapSpace`].
//!
//! Search methods never need the whole concrete [`MapSpace`] — they consume a
//! small operational surface (sample, perturb, recombine, repair, check).
//! [`MapSpaceView`] names exactly that surface as an object-safe trait, so a
//! searcher works identically over the full space and over a *shard* of it.
//!
//! # Sharding
//!
//! [`MapSpace::shard(i, n)`](MapSpace::shard) splits the space into `n`
//! pairwise-disjoint, jointly-covering subspaces by restricting a
//! **mixed-radix product of discrete axes**, in the spirit of Timeloop's
//! mapspace splits. The axes, most significant first:
//!
//! * **L2 loop-order prefix** ([`ShardAxisKind::OrderL2`]). The L2-level
//!   temporal loop order is a permutation of the problem dimensions; its
//!   lexicographic (Lehmer) rank lives in `[0, d!)`.
//! * **L1 loop-order prefix** ([`ShardAxisKind::OrderL1`]). The same rank
//!   over the L1-level loop order — another independent `d!` factor.
//! * **Parallelism split** ([`ShardAxisKind::Parallel`]). The spatial
//!   fan-out assigned to one split dimension (a dimension *other than* the
//!   tile-split dimension, so the two pins never conflict), bucketed into
//!   `[1, P]` where `P` is capped so that every (parallelism, tile) pin
//!   combination still admits a valid mapping under the buffer capacities.
//! * **L2 tile prefix** ([`ShardAxisKind::Tile`]). The L2 tile extent of the
//!   largest problem dimension, bucketed into `[1, size]` (PR 3's fallback
//!   axis, now the least-significant refinement).
//!
//! Every mapping has exactly one **combined rank** — the mixed-radix number
//! whose digits are the axis values above — so contiguous rank intervals
//! partition the space: disjoint by construction and jointly covering
//! (attribute values beyond a bucketed axis's extent are absorbed by its
//! last bucket, keeping the digit function total). [`MapSpace::shard_capacity`]
//! is the *product* of the axis cardinalities (`d!·d!·P·size`), so the
//! useful shard count grows multiplicatively instead of being throttled by
//! a single axis on small-`d!` problems. [`MapSpace::shard_with`] restricts
//! the product to a chosen subset of axes.

use std::sync::{Arc, OnceLock};

use rand::{Rng, RngCore};

use crate::mapping::Mapping;
use crate::problem::{DimId, ProblemSpec};
use crate::space::{MapSpace, MappingConstraints};
use crate::MapSpaceError;

/// Interned telemetry counters for the shard clamp/repair path. Handles are
/// cached in `OnceLock` statics so the hot path is one relaxed level check
/// plus (when enabled) one relaxed add; instrumentation never draws RNG or
/// reorders anything, keeping the deterministic replay contract intact.
fn tele_clamp_moved() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("mapspace.clamp_moved"))
}

fn tele_pin_fix_calls() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("mapspace.pin_fix_calls"))
}

fn tele_pin_fix_refits() -> &'static Arc<mm_telemetry::Counter> {
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("mapspace.pin_fix_refits"))
}

/// Index of the L1 temporal loop order within `Mapping::loop_orders`.
const L1_ORDER_LEVEL: usize = 0;
/// Index of the L2 temporal loop order within `Mapping::loop_orders`.
const L2_ORDER_LEVEL: usize = 1;

/// The operations searchers actually use, abstracted over "the full map
/// space" and "one shard of it".
///
/// Object-safe (`&dyn MapSpaceView`) so heterogeneous drivers — the
/// sequential `drive` loop, the pipelined pool driver, the multi-shard
/// `Mapper`, the serve scheduler — can hold any view behind one pointer.
/// [`MapSpace`] implements it by delegation; [`ShardedMapSpace`] implements
/// it with the shard constraint enforced after every operation.
pub trait MapSpaceView: Send + Sync {
    /// The problem this view's mappings target.
    fn problem(&self) -> &ProblemSpec;

    /// The accelerator constraints.
    fn constraints(&self) -> &MappingConstraints;

    /// Draw a random *valid* mapping belonging to this view.
    fn random_mapping(&self, rng: &mut dyn RngCore) -> Mapping;

    /// In-place form of [`random_mapping`](Self::random_mapping): rewrite
    /// `out` to a fresh random valid mapping, reusing its allocations.
    /// Draws the same RNG stream and produces the same mapping.
    ///
    /// The default forwards to the allocating form; concrete views override
    /// it with a genuinely allocation-free implementation.
    fn random_mapping_into(&self, out: &mut Mapping, rng: &mut dyn RngCore) {
        *out = self.random_mapping(rng);
    }

    /// A valid neighbouring mapping of `m` within this view.
    fn neighbor(&self, m: &Mapping, rng: &mut dyn RngCore) -> Mapping;

    /// In-place form of [`neighbor`](Self::neighbor): rewrite `out` to a
    /// valid neighbour of `current`, reusing `out`'s allocations. Draws the
    /// same RNG stream and produces the same mapping.
    fn neighbor_into(&self, current: &Mapping, out: &mut Mapping, rng: &mut dyn RngCore) {
        *out = self.neighbor(current, rng);
    }

    /// Mutate one attribute in place (may leave the mapping invalid until
    /// [`repair`](Self::repair) is called).
    fn mutate_in_place(&self, m: &mut Mapping, rng: &mut dyn RngCore);

    /// Uniform crossover of two parents; the child is valid and in-view.
    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut dyn RngCore) -> Mapping;

    /// In-place form of [`crossover`](Self::crossover): write the child into
    /// `out`, reusing its allocations. Draws the same RNG stream and
    /// produces the same child.
    fn crossover_into(&self, a: &Mapping, b: &Mapping, out: &mut Mapping, rng: &mut dyn RngCore) {
        *out = self.crossover(a, b, rng);
    }

    /// Deterministically repair `m` to validity *within this view*.
    fn repair(&self, m: &mut Mapping);

    /// Whether `m` is a valid mapping belonging to this view.
    fn is_member(&self, m: &Mapping) -> bool;

    /// Like [`is_member`](Self::is_member), returning the first violated
    /// constraint as a human-readable string.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated validity (or shard
    /// membership) constraint.
    fn validate(&self, m: &Mapping) -> Result<(), String>;

    /// Order-of-magnitude estimate of `log10 |view|`.
    fn log10_size_estimate(&self) -> f64;

    /// Project the mapping portion of a flat encoded vector onto this view.
    ///
    /// # Errors
    ///
    /// Returns [`MapSpaceError::BadVectorLength`] if the vector length does
    /// not match the encoding for this problem.
    fn project(&self, mapping_values: &[f32]) -> Result<Mapping, MapSpaceError>;

    /// `(index, count)` when this view is one shard of a partition; `None`
    /// for the full space.
    fn shard_info(&self) -> Option<(usize, usize)> {
        None
    }

    /// Shard-aware schedule-horizon hint: how many of `budget` evaluations
    /// a schedule-based searcher (SA cooling, GA generations, annealed
    /// injection) should stretch its schedule over.
    ///
    /// The full space returns `budget` unchanged. A shard scales the budget
    /// by its share of the full space's log-magnitude
    /// (`log10|shard| / log10|space|`, clamped to `[0.25, 1]`), so a
    /// searcher confined to a slice stops tuning its cooling/generation
    /// horizon as if it owned the whole space — the tail of the budget is
    /// spent exploiting the (smaller) slice instead.
    fn horizon_hint(&self, budget: u64) -> u64 {
        budget
    }

    /// Clone this view behind a fresh box (object-safe `Clone`).
    fn clone_view(&self) -> Box<dyn MapSpaceView>;
}

impl MapSpaceView for MapSpace {
    fn problem(&self) -> &ProblemSpec {
        MapSpace::problem(self)
    }

    fn constraints(&self) -> &MappingConstraints {
        MapSpace::constraints(self)
    }

    fn random_mapping(&self, rng: &mut dyn RngCore) -> Mapping {
        MapSpace::random_mapping(self, rng)
    }

    fn random_mapping_into(&self, out: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::random_mapping_into(self, out, rng);
    }

    fn neighbor(&self, m: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        MapSpace::neighbor(self, m, rng)
    }

    fn neighbor_into(&self, current: &Mapping, out: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::neighbor_into(self, current, out, rng);
    }

    fn mutate_in_place(&self, m: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::mutate_in_place(self, m, rng);
    }

    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        MapSpace::crossover(self, a, b, rng)
    }

    fn crossover_into(&self, a: &Mapping, b: &Mapping, out: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::crossover_into(self, a, b, out, rng);
    }

    fn repair(&self, m: &mut Mapping) {
        MapSpace::repair(self, m);
    }

    fn is_member(&self, m: &Mapping) -> bool {
        MapSpace::is_member(self, m)
    }

    fn validate(&self, m: &Mapping) -> Result<(), String> {
        MapSpace::validate(self, m)
    }

    fn log10_size_estimate(&self) -> f64 {
        MapSpace::log10_size_estimate(self)
    }

    fn project(&self, mapping_values: &[f32]) -> Result<Mapping, MapSpaceError> {
        MapSpace::project(self, mapping_values)
    }

    fn clone_view(&self) -> Box<dyn MapSpaceView> {
        Box::new(self.clone())
    }
}

/// The discrete axes a shard partition can restrict (see the
/// [module docs](self)); [`MapSpace::shard_with`] takes a subset, and
/// [`MapSpace::shard`] uses [`ShardAxisKind::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAxisKind {
    /// Lexicographic rank of the L2 temporal loop order (`d!` values).
    OrderL2,
    /// Lexicographic rank of the L1 temporal loop order (`d!` values).
    OrderL1,
    /// Spatial fan-out of the parallelism-split dimension.
    Parallel,
    /// L2 tile extent of the largest problem dimension.
    Tile,
}

impl ShardAxisKind {
    /// Every axis, in canonical significance order (most significant first).
    pub const ALL: [ShardAxisKind; 4] = [
        ShardAxisKind::OrderL2,
        ShardAxisKind::OrderL1,
        ShardAxisKind::Parallel,
        ShardAxisKind::Tile,
    ];
}

/// One concrete axis of a shard partition's mixed-radix product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAxis {
    /// Digit = lexicographic rank of `loop_orders[level]`, in `[0, perms)`.
    OrderPrefix {
        /// Which loop-order level is ranked (0 = L1, 1 = L2).
        level: usize,
        /// `d!` for `d` problem dimensions.
        perms: u128,
    },
    /// Digit = `parallel[dim].clamp(1, extent) − 1`, in `[0, extent)` (the
    /// last bucket absorbs fan-outs beyond `extent`).
    ParallelSplit {
        /// The split dimension (never the tile-split dimension).
        dim: usize,
        /// Number of parallelism buckets, capped for joint satisfiability
        /// with the tile axis.
        extent: u64,
    },
    /// Digit = `tiles[L2][dim].clamp(1, extent) − 1`, in `[0, extent)`.
    TilePrefix {
        /// The split tiling dimension (largest problem dimension).
        dim: usize,
        /// That dimension's size (number of admissible L2 tile extents).
        extent: u64,
    },
}

impl ShardAxis {
    /// Number of digit values of this axis.
    pub fn cardinality(&self) -> u128 {
        match self {
            ShardAxis::OrderPrefix { perms, .. } => *perms,
            ShardAxis::ParallelSplit { extent, .. } | ShardAxis::TilePrefix { extent, .. } => {
                u128::from(*extent)
            }
        }
    }

    /// Which [`ShardAxisKind`] this axis realizes.
    pub fn kind(&self) -> ShardAxisKind {
        match self {
            ShardAxis::OrderPrefix { level, .. } if *level == L2_ORDER_LEVEL => {
                ShardAxisKind::OrderL2
            }
            ShardAxis::OrderPrefix { .. } => ShardAxisKind::OrderL1,
            ShardAxis::ParallelSplit { .. } => ShardAxisKind::Parallel,
            ShardAxis::TilePrefix { .. } => ShardAxisKind::Tile,
        }
    }

    /// The digit this axis assigns to a (structurally well-formed) mapping.
    fn digit(&self, m: &Mapping) -> u128 {
        match self {
            ShardAxis::OrderPrefix { level, .. } => perm_rank(&m.loop_orders[*level]),
            ShardAxis::ParallelSplit { dim, extent } => {
                u128::from(m.parallel[*dim].clamp(1, *extent) - 1)
            }
            ShardAxis::TilePrefix { dim, extent } => {
                u128::from(m.tiles[1][*dim].clamp(1, *extent) - 1)
            }
        }
    }

    /// Overwrite the attribute this axis ranks from a digit value.
    fn apply(&self, m: &mut Mapping, digit: u128) {
        match self {
            ShardAxis::OrderPrefix { level, .. } => {
                let d = m.loop_orders[*level].len();
                m.loop_orders[*level] = perm_unrank(d, digit);
            }
            ShardAxis::ParallelSplit { dim, .. } => {
                m.parallel[*dim] = digit as u64 + 1;
            }
            ShardAxis::TilePrefix { dim, .. } => {
                m.tiles[1][*dim] = digit as u64 + 1;
            }
        }
    }
}

/// One shard of a [`MapSpace`]: the subset of mappings whose combined
/// mixed-radix rank (see [module docs](self)) falls in `[lo, hi)`.
///
/// Produced by [`MapSpace::shard`] / [`MapSpace::shard_with`]; the `n`
/// shards of one space are pairwise disjoint and jointly cover the full
/// space.
#[derive(Debug, Clone)]
pub struct ShardedMapSpace {
    base: MapSpace,
    index: usize,
    count: usize,
    /// The restricted axes, most significant first.
    axes: Vec<ShardAxis>,
    /// `strides[i]` = product of cardinalities of `axes[i+1..]`.
    strides: Vec<u128>,
    /// Inclusive lower bound of this shard's combined-rank interval.
    lo: u128,
    /// Exclusive upper bound of this shard's combined-rank interval.
    hi: u128,
}

impl MapSpace {
    /// The full mixed-radix axis product [`shard`](Self::shard) partitions:
    /// every [`ShardAxisKind`] whose cardinality on this space is at least 2,
    /// in canonical significance order.
    pub fn axis_product(&self) -> Vec<ShardAxis> {
        self.axis_product_for(&ShardAxisKind::ALL)
    }

    /// The axis product restricted to `kinds` (order and duplicates in
    /// `kinds` are ignored — axes always appear in canonical significance
    /// order, and axes with fewer than 2 values on this space are dropped).
    pub fn axis_product_for(&self, kinds: &[ShardAxisKind]) -> Vec<ShardAxis> {
        let d = self.problem().num_dims();
        let perms = factorial(d);
        let (tile_dim, raw_tile_size) = largest_dim(self.problem());
        let tile_size = self.satisfiable_tile_extent(tile_dim, raw_tile_size);
        let has = |k: ShardAxisKind| kinds.contains(&k);
        let mut axes = Vec::new();
        if has(ShardAxisKind::OrderL2) && perms >= 2 {
            axes.push(ShardAxis::OrderPrefix {
                level: L2_ORDER_LEVEL,
                perms,
            });
        }
        if has(ShardAxisKind::OrderL1) && perms >= 2 {
            axes.push(ShardAxis::OrderPrefix {
                level: L1_ORDER_LEVEL,
                perms,
            });
        }
        if has(ShardAxisKind::Parallel) {
            if let Some((dim, extent)) = self.parallel_axis(tile_dim, tile_size) {
                axes.push(ShardAxis::ParallelSplit { dim, extent });
            }
        }
        if has(ShardAxisKind::Tile) && tile_size >= 2 {
            axes.push(ShardAxis::TilePrefix {
                dim: tile_dim,
                extent: tile_size,
            });
        }
        axes
    }

    /// The largest L2 tile extent of the tile-split dimension whose pin
    /// still admits a valid mapping (witness: that tile alone at `extent`,
    /// everything else minimal — L2 footprints are monotone in the pin, and
    /// extents beyond the cap are absorbed by the axis's last bucket).
    fn satisfiable_tile_extent(&self, tile_dim: usize, mut extent: u64) -> u64 {
        let p = self.problem();
        let cap = self.constraints().l2_capacity_words;
        while extent >= 2 {
            let mut witness = Mapping::minimal(p);
            witness.tiles[1][tile_dim] = extent;
            let total: u64 = (0..p.num_tensors())
                .map(|ti| witness.l2_footprint(p, ti))
                .sum();
            if total <= cap {
                break;
            }
            extent /= 2;
        }
        extent
    }

    /// The parallelism-split axis: the non-tile dimension with the largest
    /// usable fan-out, capped so that *every* (parallelism, tile) pin
    /// combination still admits a valid mapping (the witness pins both axes
    /// at their extremes — L2 footprints are monotone in both pins — with
    /// unit L1 tiles and no other parallelism). `None` when no such axis
    /// with at least 2 buckets exists.
    fn parallel_axis(&self, tile_dim: usize, tile_size: u64) -> Option<(usize, u64)> {
        let p = self.problem();
        let (dim, raw) = p
            .dims()
            .filter(|dd| dd.0 != tile_dim)
            .map(|dd| (dd.0, p.dim_size(dd).min(self.constraints().num_pes)))
            .max_by_key(|&(i, e)| (e, std::cmp::Reverse(i)))?;
        let mut extent = raw;
        let cap = self.constraints().l2_capacity_words;
        while extent >= 2 {
            let mut witness = Mapping::minimal(p);
            witness.parallel[dim] = extent;
            witness.tiles[1][dim] = extent;
            witness.tiles[1][tile_dim] = tile_size.max(1);
            let total: u64 = (0..p.num_tensors())
                .map(|ti| witness.l2_footprint(p, ti))
                .sum();
            if total <= cap {
                break;
            }
            extent /= 2;
        }
        (extent >= 2).then_some((dim, extent))
    }

    /// The largest shard count [`shard`](Self::shard) supports for this
    /// space: the product of every axis cardinality (`d!·d!·P·size`, see the
    /// [module docs](self)).
    pub fn shard_capacity(&self) -> u128 {
        self.shard_capacity_for(&ShardAxisKind::ALL)
    }

    /// The largest shard count [`shard_with`](Self::shard_with) supports for
    /// the given axis subset. Monotone in the subset: adding an axis kind
    /// never decreases capacity.
    pub fn shard_capacity_for(&self, kinds: &[ShardAxisKind]) -> u128 {
        self.axis_product_for(kinds)
            .iter()
            .fold(1u128, |acc, a| acc.saturating_mul(a.cardinality()))
    }

    /// `count` clamped into [`shard`](Self::shard)'s valid range
    /// `[1, shard_capacity()]` — the one idiom every shard-count knob
    /// (mapper, serve, Phase 2) funnels through before calling `shard`.
    pub fn clamp_shard_count(&self, count: usize) -> usize {
        self.clamp_shard_count_for(&ShardAxisKind::ALL, count)
    }

    /// [`clamp_shard_count`](Self::clamp_shard_count) against the capacity
    /// of the given axis subset.
    pub fn clamp_shard_count_for(&self, kinds: &[ShardAxisKind], count: usize) -> usize {
        usize::try_from(self.shard_capacity_for(kinds).min(count.max(1) as u128))
            .unwrap_or(count.max(1))
    }

    /// Shard `index` of a partition of this space into `count`
    /// pairwise-disjoint, jointly-covering subspaces over the full axis
    /// product (see the [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, `index >= count`, or `count` exceeds
    /// [`shard_capacity`](Self::shard_capacity).
    pub fn shard(&self, index: usize, count: usize) -> ShardedMapSpace {
        self.shard_with(&ShardAxisKind::ALL, index, count)
    }

    /// Like [`shard`](Self::shard), but partitioning only the given subset
    /// of axes (`count` bounded by
    /// [`shard_capacity_for`](Self::shard_capacity_for)).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, `index >= count`, or `count` exceeds the
    /// subset's capacity.
    pub fn shard_with(
        &self,
        kinds: &[ShardAxisKind],
        index: usize,
        count: usize,
    ) -> ShardedMapSpace {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        let axes = self.axis_product_for(kinds);
        let total = axes
            .iter()
            .fold(1u128, |acc, a| acc.saturating_mul(a.cardinality()));
        assert!(
            count as u128 <= total,
            "shard count {count} exceeds the axis-product cardinality {total} \
             (= shard_capacity for these axes)"
        );
        let mut strides = vec![1u128; axes.len()];
        for i in (0..axes.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1].saturating_mul(axes[i + 1].cardinality());
        }
        let lo = index as u128 * total / count as u128;
        let hi = (index as u128 + 1) * total / count as u128;
        ShardedMapSpace {
            base: self.clone(),
            index,
            count,
            axes,
            strides,
            lo,
            hi,
        }
    }
}

/// `d!` as `u128` (problem dimension counts are single digits, so this never
/// overflows in practice; saturates defensively).
fn factorial(d: usize) -> u128 {
    (1..=d as u128).fold(1u128, |acc, i| acc.saturating_mul(i))
}

/// The first largest problem dimension `(index, size)`.
fn largest_dim(problem: &ProblemSpec) -> (usize, u64) {
    let mut best = (0usize, 0u64);
    for d in problem.dims() {
        let size = problem.dim_size(d);
        if size > best.1 {
            best = (d.0, size);
        }
    }
    best
}

/// Lexicographic (Lehmer) rank of a permutation of `0..d`, in `[0, d!)`.
fn perm_rank(perm: &[usize]) -> u128 {
    let d = perm.len();
    let mut rank = 0u128;
    for i in 0..d {
        let smaller_after = perm[i + 1..].iter().filter(|&&x| x < perm[i]).count();
        rank += smaller_after as u128 * factorial(d - 1 - i);
    }
    rank
}

/// The permutation of `0..d` with lexicographic rank `rank` (mod `d!`).
fn perm_unrank(d: usize, mut rank: u128) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..d).collect();
    let mut out = Vec::with_capacity(d);
    rank %= factorial(d).max(1);
    for i in 0..d {
        let f = factorial(d - 1 - i);
        let idx = (rank / f) as usize;
        rank %= f;
        out.push(pool.remove(idx));
    }
    out
}

/// The adjustable (validity-coupled) suffix of a shard's axis product: the
/// parallelism and tile pins, with the admissible windows the shard
/// interval leaves them at the mapping's current loop-order prefix.
struct PinWindow {
    /// Local suffix rank window `[qlo, qhi]` (inclusive).
    qlo: u128,
    qhi: u128,
    /// `(dim, extent)` of the parallelism axis, when present.
    par: Option<(usize, u64)>,
    /// `(dim, extent)` of the tile axis, when present.
    tile: Option<(usize, u64)>,
}

impl PinWindow {
    /// Admissible parallelism *values* `[lo, hi]` of the split dimension.
    fn par_bounds(&self) -> Option<(usize, u64, u64)> {
        let (dim, extent) = self.par?;
        let t = self.tile.map_or(1u128, |(_, e)| u128::from(e));
        let lo = (self.qlo / t) as u64 + 1;
        let hi = ((self.qhi / t) as u64 + 1).min(extent);
        Some((dim, lo.min(extent), hi))
    }

    /// Admissible L2 tile *extents* `[lo, hi]` of the split dimension, given
    /// the current parallelism value of the parallelism-split dimension.
    fn tile_bounds(&self, par_value: u64) -> Option<(usize, u64, u64)> {
        let (dim, extent) = self.tile?;
        let t = u128::from(extent);
        let dp = match self.par {
            Some((_, pe)) => u128::from(par_value.clamp(1, pe) - 1),
            None => 0,
        };
        let lo = self.qlo.saturating_sub(dp * t).min(t - 1) as u64 + 1;
        let hi = ((self.qhi - (dp * t).min(self.qhi)).min(t - 1) as u64 + 1).max(lo);
        Some((dim, lo.min(extent), hi.min(extent)))
    }
}

impl ShardedMapSpace {
    /// The full space this shard was cut from.
    pub fn base(&self) -> &MapSpace {
        &self.base
    }

    /// This shard's index within the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of shards in the partition.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The restricted axes, most significant first.
    pub fn axes(&self) -> &[ShardAxis] {
        &self.axes
    }

    /// Human-readable description of the restricted axis product, for
    /// reports.
    pub fn axis_description(&self) -> String {
        let radix: Vec<String> = self
            .axes
            .iter()
            .map(|a| match a {
                ShardAxis::OrderPrefix { level, perms } => {
                    format!("L{}-order:{perms}", level + 1)
                }
                ShardAxis::ParallelSplit { dim, extent } => format!("par[{dim}]:{extent}"),
                ShardAxis::TilePrefix { dim, extent } => format!("tile[{dim}]:{extent}"),
            })
            .collect();
        format!(
            "mixed-radix ranks [{}, {}) of {}",
            self.lo,
            self.hi,
            radix.join("x")
        )
    }

    /// The combined mixed-radix rank of a (structurally well-formed)
    /// mapping.
    fn combined_rank(&self, m: &Mapping) -> u128 {
        self.axes
            .iter()
            .zip(&self.strides)
            .map(|(a, s)| a.digit(m).saturating_mul(*s))
            .sum()
    }

    /// Whether `m`'s combined rank falls in this shard's interval.
    fn in_shard(&self, m: &Mapping) -> bool {
        let c = self.combined_rank(m);
        self.lo <= c && c < self.hi
    }

    /// Clamp `m`'s sharded attributes into this shard's rank interval,
    /// axis by axis: each digit is clamped into the window the interval
    /// (and the more-significant digits) leaves it, and as soon as the
    /// remaining interval covers a whole block every less-significant
    /// attribute is left untouched — an escaping move is pulled back with
    /// the minimal per-axis correction instead of wiping the unconstrained
    /// digits to the interval edge.
    fn clamp_into_interval(&self, m: &mut Mapping) {
        let mut l = self.lo;
        let mut h = self.hi;
        let mut moved = false;
        for (axis, stride) in self.axes.iter().zip(&self.strides) {
            let card = axis.cardinality();
            let s = *stride;
            if l == 0 && h == s.saturating_mul(card) {
                break; // whole block admissible: nothing below needs moving
            }
            let current = axis.digit(m);
            let dlo = l / s;
            let dhi = (h - 1) / s;
            let digit = current.clamp(dlo, dhi);
            if digit != current {
                axis.apply(m, digit);
                moved = true;
            }
            l = if digit == dlo { l - digit * s } else { 0 };
            h = if digit == dhi { h - digit * s } else { s };
        }
        if moved {
            tele_clamp_moved().bump(1);
            mm_telemetry::event("mapspace.clamp", || {
                format!("shard={}/{}", self.index, self.count)
            });
        }
        debug_assert!(self.in_shard(m), "clamp must land in the interval");
    }

    /// Re-sample `m`'s sharded attributes into this shard's rank interval,
    /// axis by axis (most significant first): an axis the interval
    /// *restricts* gets a uniformly chosen admissible digit; as soon as the
    /// remaining interval covers a whole block, every less-significant axis
    /// is unconstrained and the **base-sampled attributes are kept** — so
    /// shard sampling matches the full space's distribution wherever the
    /// shard imposes no constraint (exactly PR 3's behaviour when the
    /// partition only cuts the leading order axis).
    ///
    /// Returns `true` when a validity-coupled attribute (parallelism or
    /// tile) changed — the caller must then force a capacity refit.
    fn sample_in_interval(&self, m: &mut Mapping, rng: &mut dyn RngCore) -> bool {
        // [l, h) is the admissible rank interval relative to the current
        // axis's block (the whole product at the top level).
        let mut l = self.lo;
        let mut h = self.hi;
        let mut touched = false;
        for (axis, stride) in self.axes.iter().zip(&self.strides) {
            let card = axis.cardinality();
            let s = *stride;
            if l == 0 && h == s.saturating_mul(card) {
                break; // whole block admissible: keep the base sample
            }
            let dlo = l / s;
            let dhi = (h - 1) / s;
            let digit = if dlo == dhi {
                dlo
            } else {
                let span = dhi - dlo + 1;
                dlo + u128::from(rng.gen_range(0..u64::try_from(span).unwrap_or(u64::MAX)))
            };
            touched |= axis.digit(m) != digit && !matches!(axis, ShardAxis::OrderPrefix { .. });
            axis.apply(m, digit);
            l = if digit == dlo { l - digit * s } else { 0 };
            h = if digit == dhi { h - digit * s } else { s };
        }
        touched
    }

    /// The pin window of the adjustable suffix (parallelism/tile axes) at
    /// `m`'s current loop-order prefix, or `None` when the product restricts
    /// loop orders only (which never affect base validity).
    fn pin_window(&self, m: &Mapping) -> Option<PinWindow> {
        let mut par = None;
        let mut tile = None;
        for axis in &self.axes {
            match axis {
                ShardAxis::ParallelSplit { dim, extent } => par = Some((*dim, *extent)),
                ShardAxis::TilePrefix { dim, extent } => tile = Some((*dim, *extent)),
                ShardAxis::OrderPrefix { .. } => {}
            }
        }
        let w =
            par.map_or(1u128, |(_, e)| u128::from(e)) * tile.map_or(1u128, |(_, e)| u128::from(e));
        if w <= 1 {
            return None;
        }
        // The adjustable axes are the least-significant suffix of the
        // product, so the suffix value is simply `rank mod w`.
        let c = self.combined_rank(m);
        debug_assert!(
            self.lo <= c && c < self.hi,
            "pin window needs a pinned rank"
        );
        let block = c - c % w;
        let qlo = self.lo.max(block) - block;
        let qhi = self.hi.min(block + w) - 1 - block;
        Some(PinWindow {
            qlo,
            qhi,
            par,
            tile,
        })
    }

    /// Pull a base-valid mapping into this shard and restore validity: pin
    /// the combined rank into `[lo, hi)`, then re-establish the tile/
    /// parallelism/capacity invariants the pin may have disturbed — without
    /// leaving the shard again.
    fn pin_and_fix(&self, m: &mut Mapping) {
        self.pin_and_fix_impl(m, false);
    }

    /// [`pin_and_fix`](Self::pin_and_fix) with `force_fit` requesting the
    /// capacity refit even when the pins themselves moved nothing (used
    /// after [`sample_in_interval`](Self::sample_in_interval) already
    /// changed validity-coupled attributes).
    fn pin_and_fix_impl(&self, m: &mut Mapping, force_fit: bool) {
        tele_pin_fix_calls().bump(1);
        // Snapshot the validity-coupled attributes: when no pin moves any
        // of them, the (base-valid) mapping needs no refit at all.
        let tiles_before = m.tiles.clone();
        let parallel_before = m.parallel.clone();
        self.clamp_into_interval(m);
        let Some(window) = self.pin_window(m) else {
            // Loop orders never affect base validity: pinned and done.
            return;
        };
        let p = self.base.problem();
        let t = p.num_tensors();
        let d = p.num_dims();

        // -- Parallelism pin: clamp the digit into its window, then restore
        //    the local invariants around the pinned fan-out. The pinned
        //    dimension's parallelism never shrinks again below `plo`.
        let mut par_pin: Option<(usize, u64)> = None; // (dim, floor value)
        if let Some((pdim, plo, phi)) = window.par_bounds() {
            // mm-lint: allow(panic): par_bounds() returning Some implies
            // the window has a par axis by construction.
            let (_, extent) = window.par.expect("par bounds imply a par axis");
            let bucket = m.parallel[pdim].clamp(1, extent);
            if bucket < plo || bucket > phi {
                // Out-of-window digits move; in-window fan-outs beyond the
                // last bucket stay (the bucket absorbs the tail).
                m.parallel[pdim] = bucket.clamp(plo, phi);
            }
            let size = p.dim_size(DimId(pdim));
            // Spatial tile within the dimension: only the L1 tile gives way.
            while m.tiles[0][pdim].saturating_mul(m.parallel[pdim]) > size && m.tiles[0][pdim] > 1 {
                m.tiles[0][pdim] /= 2;
            }
            let spatial = m.tiles[0][pdim].saturating_mul(m.parallel[pdim]).min(size);
            m.tiles[1][pdim] = m.tiles[1][pdim].max(spatial).min(size).max(1);
            // PE budget: only unpinned dimensions give way (the axis extent
            // is at most `num_pes`, so this always converges).
            while m.active_pes() > self.base.constraints().num_pes {
                let Some(worst) = (0..d)
                    .filter(|&i| i != pdim && m.parallel[i] > 1)
                    .max_by_key(|&i| m.parallel[i])
                else {
                    break;
                };
                m.parallel[worst] /= 2;
            }
            par_pin = Some((pdim, plo));
        }

        // -- Tile pin: clamp the digit into the window its (possibly moved)
        //    parallelism digit leaves it, then refit L1 tile/parallelism
        //    under the pinned L2 tile.
        let mut tile_pin: Option<(usize, u64)> = None; // (dim, floor value)
        let par_value = window.par.map_or(1, |(pdim, _)| m.parallel[pdim]);
        if let Some((tdim, tlo, thi)) = window.tile_bounds(par_value) {
            // mm-lint: allow(panic): tile_bounds() returning Some implies
            // the window has a tile axis by construction.
            let (_, extent) = window.tile.expect("tile bounds imply a tile axis");
            let bucket = m.tiles[1][tdim].clamp(1, extent);
            if bucket < tlo || bucket > thi {
                m.tiles[1][tdim] = bucket.clamp(tlo, thi);
            }
            m.tiles[0][tdim] = m.tiles[0][tdim].clamp(1, m.tiles[1][tdim]);
            while m.tiles[0][tdim].saturating_mul(m.parallel[tdim]) > m.tiles[1][tdim] {
                if m.parallel[tdim] > 1 {
                    m.parallel[tdim] /= 2;
                } else if m.tiles[0][tdim] > 1 {
                    m.tiles[0][tdim] /= 2;
                } else {
                    break;
                }
            }
            tile_pin = Some((tdim, tlo));
        }

        // Nothing validity-coupled moved: the mapping was base-valid and
        // still is — skip the refit so in-shard mappings pass through
        // untouched.
        if !force_fit && m.tiles == tiles_before && m.parallel == parallel_before {
            return;
        }
        tele_pin_fix_refits().bump(1);
        mm_telemetry::event("mapspace.refit", || {
            format!("shard={}/{} force={force_fit}", self.index, self.count)
        });

        // -- Shared-buffer refit: the pins may have *grown* L2 footprints;
        //    shrink un-pinned contributions until everything fits, never
        //    moving a pinned attribute out of its window (the parallelism
        //    axis extent is capped at construction so the pinned extremes
        //    always fit — see `MapSpace::parallel_axis`).
        let cap = self.base.constraints().l2_capacity_words;
        let pdim = par_pin.map(|(i, _)| i);
        'fit: for _ in 0..256 {
            let footprints: Vec<u64> = (0..t).map(|ti| m.l2_footprint(p, ti)).collect();
            let total_fp: u64 = footprints.iter().sum();
            if total_fp <= cap {
                // Redistribute allocations: exactly what each tensor needs
                // plus a proportional share of the slack.
                let slack = (cap - total_fp) as f64;
                for (ti, &fp) in footprints.iter().enumerate() {
                    let share = if total_fp > 0 {
                        slack * fp as f64 / total_fp as f64
                    } else {
                        slack / t as f64
                    };
                    m.buffer_alloc[1][ti] = ((fp as f64 + share) / cap as f64).clamp(1e-6, 1.0);
                }
                break;
            }
            let Some(worst) = (0..t).max_by_key(|&ti| footprints[ti]) else {
                break; // no tensors: nothing occupies the buffer
            };
            // Shrink the worst tensor's largest shrinkable L2 contribution;
            // pinned dimensions only shrink down to their window floors.
            // When every dim of the worst tensor is pinned at its floor,
            // fall back to the remaining dims (largest contribution first):
            // other tensors may still hold shrinkable extent.
            let mut dims: Vec<DimId> = p.tensors[worst].relevant_dims();
            let mut rest: Vec<DimId> = p.dims().filter(|dd| !dims.contains(dd)).collect();
            dims.sort_by_key(|dd| std::cmp::Reverse(m.tiles[1][dd.0].max(m.spatial_tile(*dd))));
            rest.sort_by_key(|dd| std::cmp::Reverse(m.tiles[1][dd.0].max(m.spatial_tile(*dd))));
            dims.extend(rest);
            for dd in dims {
                let i = dd.0;
                let tile_floor = match tile_pin {
                    Some((tdim, tlo)) if tdim == i => tlo,
                    _ => 1,
                };
                // The pinned-parallelism dim's L2 tile cannot drop under its
                // spatial tile, whose parallelism factor is itself pinned.
                let spatial_floor = if pdim == Some(i) {
                    m.parallel[i].max(1)
                } else {
                    1
                };
                let floor = tile_floor.max(spatial_floor);
                if m.tiles[1][i] > floor {
                    m.tiles[1][i] = (m.tiles[1][i] / 2).max(floor).max(1);
                    while m.tiles[0][i].saturating_mul(m.parallel[i]) > m.tiles[1][i] {
                        if m.parallel[i] > 1 && pdim != Some(i) {
                            m.parallel[i] /= 2;
                        } else if m.tiles[0][i] > 1 {
                            m.tiles[0][i] /= 2;
                        } else {
                            break;
                        }
                    }
                    continue 'fit;
                }
                if pdim != Some(i) && tile_pin.map(|(tdim, _)| tdim) != Some(i) {
                    if m.parallel[i] > 1 {
                        m.parallel[i] /= 2;
                        continue 'fit;
                    }
                    if m.tiles[0][i] > 1 {
                        m.tiles[0][i] /= 2;
                        continue 'fit;
                    }
                }
                if m.tiles[0][i] > 1 {
                    m.tiles[0][i] /= 2;
                    continue 'fit;
                }
            }
            break; // nothing left to shrink
        }
    }
}

impl MapSpaceView for ShardedMapSpace {
    fn problem(&self) -> &ProblemSpec {
        MapSpace::problem(&self.base)
    }

    fn constraints(&self) -> &MappingConstraints {
        MapSpace::constraints(&self.base)
    }

    fn random_mapping(&self, rng: &mut dyn RngCore) -> Mapping {
        let mut m = MapSpace::random_mapping(&self.base, rng);
        // Re-sample only the axes this shard actually restricts (keeping
        // the base distribution elsewhere), then restore validity (forcing
        // the capacity refit when the sampler moved parallelism/tiles).
        let touched = self.sample_in_interval(&mut m, rng);
        self.pin_and_fix_impl(&mut m, touched);
        debug_assert!(
            self.is_member(&m),
            "{:?}\naxes={:?} lo={} hi={}\nmapping={:?}",
            self.validate(&m),
            self.axes,
            self.lo,
            self.hi,
            m
        );
        m
    }

    fn random_mapping_into(&self, out: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::random_mapping_into(&self.base, out, rng);
        let touched = self.sample_in_interval(out, rng);
        self.pin_and_fix_impl(out, touched);
        debug_assert!(
            self.is_member(out),
            "{:?}\naxes={:?} lo={} hi={}\nmapping={:?}",
            self.validate(out),
            self.axes,
            self.lo,
            self.hi,
            out
        );
    }

    fn neighbor(&self, m: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        let mut out = m.clone();
        MapSpace::mutate_in_place(&self.base, &mut out, rng);
        self.repair(&mut out);
        out
    }

    fn neighbor_into(&self, current: &Mapping, out: &mut Mapping, rng: &mut dyn RngCore) {
        out.clone_from(current);
        MapSpace::mutate_in_place(&self.base, out, rng);
        self.repair(out);
    }

    fn mutate_in_place(&self, m: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::mutate_in_place(&self.base, m, rng);
    }

    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        let mut child = MapSpace::crossover(&self.base, a, b, rng);
        self.pin_and_fix(&mut child);
        debug_assert!(self.is_member(&child), "{:?}", self.validate(&child));
        child
    }

    fn crossover_into(&self, a: &Mapping, b: &Mapping, out: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::crossover_into(&self.base, a, b, out, rng);
        self.pin_and_fix(out);
        debug_assert!(self.is_member(out), "{:?}", self.validate(out));
    }

    fn repair(&self, m: &mut Mapping) {
        MapSpace::repair(&self.base, m);
        self.pin_and_fix(m);
    }

    fn is_member(&self, m: &Mapping) -> bool {
        MapSpace::is_member(&self.base, m) && self.in_shard(m)
    }

    fn validate(&self, m: &Mapping) -> Result<(), String> {
        MapSpace::validate(&self.base, m)?;
        if self.in_shard(m) {
            Ok(())
        } else {
            Err(format!(
                "combined rank {} outside shard {}/{} interval [{}, {})",
                self.combined_rank(m),
                self.index,
                self.count,
                self.lo,
                self.hi
            ))
        }
    }

    fn log10_size_estimate(&self) -> f64 {
        MapSpace::log10_size_estimate(&self.base) - (self.count.max(1) as f64).log10()
    }

    fn project(&self, mapping_values: &[f32]) -> Result<Mapping, MapSpaceError> {
        let mut m = MapSpace::project(&self.base, mapping_values)?;
        self.pin_and_fix(&mut m);
        Ok(m)
    }

    fn shard_info(&self) -> Option<(usize, usize)> {
        Some((self.index, self.count))
    }

    fn horizon_hint(&self, budget: u64) -> u64 {
        if self.count <= 1 || budget == 0 {
            return budget;
        }
        let full = MapSpace::log10_size_estimate(&self.base).max(1.0);
        let scale = ((full - (self.count as f64).log10()) / full).clamp(0.25, 1.0);
        ((budget as f64 * scale).round() as u64).max(1)
    }

    fn clone_view(&self) -> Box<dyn MapSpaceView> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> MapSpace {
        MapSpace::new(ProblemSpec::conv1d(128, 7), MappingConstraints::example())
    }

    #[test]
    fn sharded_into_forms_match_allocating_forms() {
        let s = space();
        for i in 0..4 {
            let sh = s.shard(i, 4);
            let mut rng_a = StdRng::seed_from_u64(23 + i as u64);
            let mut rng_b = StdRng::seed_from_u64(23 + i as u64);
            let mut sample_buf = Mapping::default();
            let mut neigh_buf = Mapping::default();
            for _ in 0..20 {
                let a = MapSpaceView::random_mapping(&sh, &mut rng_a);
                sh.random_mapping_into(&mut sample_buf, &mut rng_b);
                assert_eq!(a, sample_buf, "sharded random_mapping_into diverged");
                let n = MapSpaceView::neighbor(&sh, &a, &mut rng_a);
                sh.neighbor_into(&a, &mut neigh_buf, &mut rng_b);
                assert_eq!(n, neigh_buf, "sharded neighbor_into diverged");
            }
        }
    }

    #[test]
    fn perm_rank_unrank_roundtrip() {
        for d in 1..=5usize {
            let total = factorial(d);
            for r in 0..total {
                let p = perm_unrank(d, r);
                assert_eq!(perm_rank(&p), r, "d={d} rank={r} perm={p:?}");
            }
        }
        assert_eq!(perm_rank(&[0, 1, 2]), 0);
        assert_eq!(perm_rank(&[2, 1, 0]), 5);
    }

    #[test]
    fn axis_product_is_the_canonical_four_axis_stack() {
        let s = space();
        // conv1d(128, 7): dims X=122 (largest → tile axis), R=7 (par axis,
        // capped at min(7, 16 PEs) = 7).
        let axes = s.axis_product();
        let kinds: Vec<ShardAxisKind> = axes.iter().map(ShardAxis::kind).collect();
        assert_eq!(
            kinds,
            vec![
                ShardAxisKind::OrderL2,
                ShardAxisKind::OrderL1,
                ShardAxisKind::Parallel,
                ShardAxisKind::Tile,
            ]
        );
        assert_eq!(axes[0].cardinality(), 2); // 2! L2 orders
        assert_eq!(axes[1].cardinality(), 2); // 2! L1 orders
        assert_eq!(axes[2].cardinality(), 7); // R fan-out
        assert_eq!(axes[3].cardinality(), 122); // X tile extents
        assert!(matches!(
            axes[2],
            ShardAxis::ParallelSplit { dim: 1, extent: 7 }
        ));
        assert!(matches!(
            axes[3],
            ShardAxis::TilePrefix {
                dim: 0,
                extent: 122
            }
        ));
    }

    #[test]
    fn shard_capacity_is_the_axis_product() {
        let s = space();
        // 2! · 2! · 7 · 122 — multiplicative, not the PR 3 single-axis
        // d!·largest_dim = 244.
        assert_eq!(s.shard_capacity(), 2 * 2 * 7 * 122);
        // Subsets multiply their own factors and stay monotone.
        assert_eq!(s.shard_capacity_for(&[ShardAxisKind::OrderL2]), 2);
        assert_eq!(
            s.shard_capacity_for(&[ShardAxisKind::OrderL2, ShardAxisKind::Tile]),
            2 * 122
        );
        assert_eq!(s.shard_capacity_for(&[ShardAxisKind::Parallel]), 7);
        assert!(s.shard_capacity_for(&[]) == 1);
    }

    #[test]
    fn order_prefix_shards_partition_the_permutations() {
        let s = space();
        let a = s.shard_with(&[ShardAxisKind::OrderL2], 0, 2);
        let b = s.shard_with(&[ShardAxisKind::OrderL2], 1, 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let m = MapSpace::random_mapping(&s, &mut rng);
            let ina = a.in_shard(&m);
            let inb = b.in_shard(&m);
            assert!(ina ^ inb, "every mapping lands in exactly one shard");
        }
    }

    #[test]
    fn high_shard_counts_partition_via_the_full_product() {
        let s = space();
        // 8 > 2! — PR 3 would fall back to one refinement axis; the product
        // now spreads the cut across orders, parallelism, and tiles.
        let shards: Vec<ShardedMapSpace> = (0..8).map(|i| s.shard(i, 8)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        for round in 0..40 {
            let m = MapSpace::random_mapping(&s, &mut rng);
            let owners = shards.iter().filter(|sh| sh.in_shard(&m)).count();
            assert_eq!(owners, 1, "round {round}: exactly one owner");
        }
    }

    #[test]
    fn shard_sampling_stays_in_shard_and_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 3, 5, 8, 29, 488] {
            for i in 0..n {
                let sh = s.shard(i, n);
                for _ in 0..5 {
                    let m = sh.random_mapping(&mut rng);
                    assert!(sh.is_member(&m), "n={n} i={i}: {:?}", sh.validate(&m));
                    assert!(MapSpace::is_member(&s, &m));
                }
            }
        }
    }

    #[test]
    fn shard_moves_stay_in_shard() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(4);
        for (i, n) in [(2usize, 4usize), (11, 16), (200, 488)] {
            let sh = s.shard(i, n);
            let mut m = sh.random_mapping(&mut rng);
            for _ in 0..100 {
                m = sh.neighbor(&m, &mut rng);
                assert!(sh.is_member(&m), "{:?}", sh.validate(&m));
            }
            let a = sh.random_mapping(&mut rng);
            let b = sh.random_mapping(&mut rng);
            for _ in 0..25 {
                let c = MapSpaceView::crossover(&sh, &a, &b, &mut rng);
                assert!(sh.is_member(&c), "{:?}", sh.validate(&c));
            }
        }
    }

    #[test]
    fn shard_projection_is_valid_and_in_shard() {
        let s = space();
        let enc = crate::encode::Encoding::for_problem(s.problem());
        let mut rng = StdRng::seed_from_u64(5);
        for (i, n) in [(1usize, 3usize), (7, 12), (100, 300)] {
            let sh = s.shard(i, n);
            for _ in 0..25 {
                let v: Vec<f32> = (0..enc.mapping_len())
                    .map(|_| rng.gen_range(-20.0..200.0))
                    .collect();
                let m = MapSpaceView::project(&sh, &v).unwrap();
                assert!(sh.is_member(&m), "{:?}", sh.validate(&m));
            }
        }
    }

    #[test]
    fn shard_info_and_size_estimate() {
        let s = space();
        let sh = s.shard(1, 4);
        assert_eq!(sh.shard_info(), Some((1, 4)));
        assert_eq!(MapSpaceView::shard_info(&s), None);
        assert!(sh.log10_size_estimate() < MapSpaceView::log10_size_estimate(&s));
        assert!(!sh.axis_description().is_empty());
        assert_eq!(sh.axes().len(), 4);
    }

    #[test]
    fn horizon_hint_scales_with_shard_count() {
        let s = space();
        assert_eq!(MapSpaceView::horizon_hint(&s, 1000), 1000, "full space");
        let sh2 = s.shard(0, 2);
        let sh64 = s.shard(0, 64);
        let h2 = sh2.horizon_hint(1000);
        let h64 = sh64.horizon_hint(1000);
        assert!(h2 < 1000, "a shard shortens the schedule horizon");
        assert!(h64 < h2, "more shards shorten it further");
        assert!(h64 >= 250, "the hint never drops below a quarter");
        assert_eq!(sh64.horizon_hint(0), 0);
        assert_eq!(s.shard(0, 1).horizon_hint(77), 77, "1 shard = full space");
    }

    #[test]
    fn pinned_axis_extents_are_capacity_capped() {
        // A tiny L2 forces the tile (and possibly parallelism) axis extents
        // down: every pin combination must still admit a valid mapping.
        let tight = MapSpace::new(
            ProblemSpec::conv1d(128, 7),
            MappingConstraints {
                num_pes: 16,
                l1_capacity_words: 1024,
                l2_capacity_words: 160, // cannot hold a full-width X tile twice
                l1_banks: 8,
                l2_banks: 16,
            },
        );
        let tile_extent = tight
            .axis_product()
            .iter()
            .find(|a| a.kind() == ShardAxisKind::Tile)
            .map(ShardAxis::cardinality)
            .expect("tile axis present");
        assert!(
            tile_extent < 122,
            "capacity cap must bite, got {tile_extent}"
        );
        // Sampling still works at the full capacity, in every shard.
        let n = tight.clamp_shard_count(1_000_000);
        let mut rng = StdRng::seed_from_u64(9);
        for i in [0, n / 2, n - 1] {
            let sh = tight.shard(i, n);
            let m = sh.random_mapping(&mut rng);
            assert!(sh.is_member(&m), "{:?}", sh.validate(&m));
        }
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn shard_rejects_out_of_range_index() {
        let _ = space().shard(3, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds the axis-product cardinality")]
    fn shard_rejects_count_beyond_capacity() {
        let s = space();
        let cap = s.shard_capacity() as usize;
        let _ = s.shard(0, cap + 1);
    }

    #[test]
    fn dyn_view_is_usable_behind_a_pointer() {
        let s = space();
        let views: Vec<Box<dyn MapSpaceView>> = vec![Box::new(s.clone()), Box::new(s.shard(0, 2))];
        let mut rng = StdRng::seed_from_u64(6);
        for v in &views {
            let m = v.random_mapping(&mut rng);
            assert!(v.is_member(&m));
            let n = v.neighbor(&m, &mut rng);
            assert!(v.is_member(&n));
            let v2 = v.clone_view();
            assert!(v2.is_member(&m));
        }
    }
}
