//! [`MapSpaceView`]: the searcher-facing map-space API, and
//! [`ShardedMapSpace`]: a provably disjoint slice of a [`MapSpace`].
//!
//! Search methods never need the whole concrete [`MapSpace`] — they consume a
//! small operational surface (sample, perturb, recombine, repair, check).
//! [`MapSpaceView`] names exactly that surface as an object-safe trait, so a
//! searcher works identically over the full space and over a *shard* of it.
//!
//! # Sharding
//!
//! [`MapSpace::shard(i, n)`](MapSpace::shard) splits the space into `n`
//! pairwise-disjoint, jointly-covering subspaces by restricting one discrete
//! axis, in the spirit of Timeloop's mapspace splits:
//!
//! * **Loop-order prefix (primary axis).** The L2-level loop order is a
//!   permutation of the problem dimensions; its lexicographic (Lehmer) rank
//!   lives in `[0, d!)`. Shard `i` owns the contiguous rank interval
//!   `[i·d!/n, (i+1)·d!/n)` — a contiguous rank interval is exactly the set
//!   of permutations sharing a (generalized) lexicographic prefix.
//! * **Largest-tiling-axis fallback.** When `n` exceeds the permutation
//!   count `d!`, the axis is refined with the L2 tile extent of the largest
//!   problem dimension: the combined rank `order_rank · size + (t2 − 1)`
//!   ranges over `[0, d!·size)` and is partitioned the same way.
//!
//! Every mapping of the full space has exactly one combined rank, so the `n`
//! shards partition the space: disjoint by construction (disjoint intervals)
//! and jointly covering (the intervals tile the whole rank range).

use rand::{Rng, RngCore};

use crate::mapping::Mapping;
use crate::problem::{DimId, ProblemSpec};
use crate::space::{MapSpace, MappingConstraints};
use crate::MapSpaceError;

/// Index of the L2 temporal loop order within `Mapping::loop_orders`
/// (level 1 of `ORDER_LEVELS`; the axis restricted by sharding).
const SHARD_ORDER_LEVEL: usize = 1;

/// The operations searchers actually use, abstracted over "the full map
/// space" and "one shard of it".
///
/// Object-safe (`&dyn MapSpaceView`) so heterogeneous drivers — the
/// sequential `drive` loop, the pipelined pool driver, the multi-shard
/// `Mapper`, the serve scheduler — can hold any view behind one pointer.
/// [`MapSpace`] implements it by delegation; [`ShardedMapSpace`] implements
/// it with the shard constraint enforced after every operation.
pub trait MapSpaceView: Send + Sync {
    /// The problem this view's mappings target.
    fn problem(&self) -> &ProblemSpec;

    /// The accelerator constraints.
    fn constraints(&self) -> &MappingConstraints;

    /// Draw a random *valid* mapping belonging to this view.
    fn random_mapping(&self, rng: &mut dyn RngCore) -> Mapping;

    /// A valid neighbouring mapping of `m` within this view.
    fn neighbor(&self, m: &Mapping, rng: &mut dyn RngCore) -> Mapping;

    /// Mutate one attribute in place (may leave the mapping invalid until
    /// [`repair`](Self::repair) is called).
    fn mutate_in_place(&self, m: &mut Mapping, rng: &mut dyn RngCore);

    /// Uniform crossover of two parents; the child is valid and in-view.
    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut dyn RngCore) -> Mapping;

    /// Deterministically repair `m` to validity *within this view*.
    fn repair(&self, m: &mut Mapping);

    /// Whether `m` is a valid mapping belonging to this view.
    fn is_member(&self, m: &Mapping) -> bool;

    /// Like [`is_member`](Self::is_member), returning the first violated
    /// constraint as a human-readable string.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated validity (or shard
    /// membership) constraint.
    fn validate(&self, m: &Mapping) -> Result<(), String>;

    /// Order-of-magnitude estimate of `log10 |view|`.
    fn log10_size_estimate(&self) -> f64;

    /// Project the mapping portion of a flat encoded vector onto this view.
    ///
    /// # Errors
    ///
    /// Returns [`MapSpaceError::BadVectorLength`] if the vector length does
    /// not match the encoding for this problem.
    fn project(&self, mapping_values: &[f32]) -> Result<Mapping, MapSpaceError>;

    /// `(index, count)` when this view is one shard of a partition; `None`
    /// for the full space.
    fn shard_info(&self) -> Option<(usize, usize)> {
        None
    }

    /// Clone this view behind a fresh box (object-safe `Clone`).
    fn clone_view(&self) -> Box<dyn MapSpaceView>;
}

impl MapSpaceView for MapSpace {
    fn problem(&self) -> &ProblemSpec {
        MapSpace::problem(self)
    }

    fn constraints(&self) -> &MappingConstraints {
        MapSpace::constraints(self)
    }

    fn random_mapping(&self, rng: &mut dyn RngCore) -> Mapping {
        MapSpace::random_mapping(self, rng)
    }

    fn neighbor(&self, m: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        MapSpace::neighbor(self, m, rng)
    }

    fn mutate_in_place(&self, m: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::mutate_in_place(self, m, rng);
    }

    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        MapSpace::crossover(self, a, b, rng)
    }

    fn repair(&self, m: &mut Mapping) {
        MapSpace::repair(self, m);
    }

    fn is_member(&self, m: &Mapping) -> bool {
        MapSpace::is_member(self, m)
    }

    fn validate(&self, m: &Mapping) -> Result<(), String> {
        MapSpace::validate(self, m)
    }

    fn log10_size_estimate(&self) -> f64 {
        MapSpace::log10_size_estimate(self)
    }

    fn project(&self, mapping_values: &[f32]) -> Result<Mapping, MapSpaceError> {
        MapSpace::project(self, mapping_values)
    }

    fn clone_view(&self) -> Box<dyn MapSpaceView> {
        Box::new(self.clone())
    }
}

/// Which discrete axis a partition restricts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardAxis {
    /// Combined rank = lexicographic rank of the L2 loop order, in
    /// `[0, perms)`.
    OrderPrefix {
        /// `d!` for `d` problem dimensions.
        perms: u128,
    },
    /// Combined rank = `order_rank · extent + (tiles[L2][dim] − 1)`, in
    /// `[0, perms · extent)`.
    OrderTile {
        /// `d!` for `d` problem dimensions.
        perms: u128,
        /// The split tiling dimension (largest problem dimension).
        dim: usize,
        /// That dimension's size (number of admissible L2 tile extents).
        extent: u64,
    },
}

/// One shard of a [`MapSpace`]: the subset of mappings whose combined
/// discrete rank (see [module docs](self)) falls in `[lo, hi)`.
///
/// Produced by [`MapSpace::shard`]; the `n` shards of one space are
/// pairwise disjoint and jointly cover the full space.
#[derive(Debug, Clone)]
pub struct ShardedMapSpace {
    base: MapSpace,
    index: usize,
    count: usize,
    axis: ShardAxis,
    /// Inclusive lower bound of this shard's combined-rank interval.
    lo: u128,
    /// Exclusive upper bound of this shard's combined-rank interval.
    hi: u128,
}

impl MapSpace {
    /// The largest shard count [`shard`](Self::shard) supports for this
    /// space: `d! · max_dim_size` (L2 loop orders refined by the L2 tile
    /// extent of the largest dimension).
    pub fn shard_capacity(&self) -> u128 {
        let d = self.problem().num_dims();
        factorial(d) * u128::from(largest_dim(self.problem()).1.max(1))
    }

    /// `count` clamped into [`shard`](Self::shard)'s valid range
    /// `[1, shard_capacity()]` — the one idiom every shard-count knob
    /// (mapper, serve, Phase 2) funnels through before calling `shard`.
    pub fn clamp_shard_count(&self, count: usize) -> usize {
        usize::try_from(self.shard_capacity().min(count.max(1) as u128)).unwrap_or(count.max(1))
    }

    /// Shard `index` of a partition of this space into `count`
    /// pairwise-disjoint, jointly-covering subspaces (see the
    /// [module docs](self) for the partitioned axis).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, `index >= count`, or `count` exceeds
    /// [`shard_capacity`](Self::shard_capacity).
    pub fn shard(&self, index: usize, count: usize) -> ShardedMapSpace {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        let d = self.problem().num_dims();
        let perms = factorial(d);
        let (dim, size) = largest_dim(self.problem());
        let axis = if count as u128 <= perms {
            ShardAxis::OrderPrefix { perms }
        } else {
            ShardAxis::OrderTile {
                perms,
                dim,
                extent: size.max(1),
            }
        };
        let total = axis_cardinality(&axis);
        assert!(
            count as u128 <= total,
            "shard count {count} exceeds the discrete axis cardinality {total} \
             (d!·largest_dim = shard_capacity)"
        );
        let lo = index as u128 * total / count as u128;
        let hi = (index as u128 + 1) * total / count as u128;
        ShardedMapSpace {
            base: self.clone(),
            index,
            count,
            axis,
            lo,
            hi,
        }
    }
}

/// Total number of combined-rank values of an axis.
fn axis_cardinality(axis: &ShardAxis) -> u128 {
    match axis {
        ShardAxis::OrderPrefix { perms } => *perms,
        ShardAxis::OrderTile { perms, extent, .. } => perms * u128::from(*extent),
    }
}

/// `d!` as `u128` (problem dimension counts are single digits, so this never
/// overflows in practice; saturates defensively).
fn factorial(d: usize) -> u128 {
    (1..=d as u128).fold(1u128, |acc, i| acc.saturating_mul(i))
}

/// The first largest problem dimension `(index, size)`.
fn largest_dim(problem: &ProblemSpec) -> (usize, u64) {
    let mut best = (0usize, 0u64);
    for d in problem.dims() {
        let size = problem.dim_size(d);
        if size > best.1 {
            best = (d.0, size);
        }
    }
    best
}

/// Lexicographic (Lehmer) rank of a permutation of `0..d`, in `[0, d!)`.
fn perm_rank(perm: &[usize]) -> u128 {
    let d = perm.len();
    let mut rank = 0u128;
    for i in 0..d {
        let smaller_after = perm[i + 1..].iter().filter(|&&x| x < perm[i]).count();
        rank += smaller_after as u128 * factorial(d - 1 - i);
    }
    rank
}

/// The permutation of `0..d` with lexicographic rank `rank` (mod `d!`).
fn perm_unrank(d: usize, mut rank: u128) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..d).collect();
    let mut out = Vec::with_capacity(d);
    rank %= factorial(d).max(1);
    for i in 0..d {
        let f = factorial(d - 1 - i);
        let idx = (rank / f) as usize;
        rank %= f;
        out.push(pool.remove(idx));
    }
    out
}

impl ShardedMapSpace {
    /// The full space this shard was cut from.
    pub fn base(&self) -> &MapSpace {
        &self.base
    }

    /// This shard's index within the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of shards in the partition.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Human-readable description of the restricted axis, for reports.
    pub fn axis_description(&self) -> String {
        match &self.axis {
            ShardAxis::OrderPrefix { perms } => {
                format!("L2 loop-order ranks [{}, {}) of {perms}", self.lo, self.hi)
            }
            ShardAxis::OrderTile { perms, dim, extent } => format!(
                "L2 (order, tile[{dim}]) ranks [{}, {}) of {perms}x{extent}",
                self.lo, self.hi
            ),
        }
    }

    /// The combined discrete rank of a (structurally well-formed) mapping.
    fn combined_rank(&self, m: &Mapping) -> u128 {
        let rank = perm_rank(&m.loop_orders[SHARD_ORDER_LEVEL]);
        match &self.axis {
            ShardAxis::OrderPrefix { .. } => rank,
            ShardAxis::OrderTile { dim, extent, .. } => {
                let t2 = m.tiles[1][*dim].clamp(1, *extent);
                rank * u128::from(*extent) + u128::from(t2 - 1)
            }
        }
    }

    /// Whether `m`'s combined rank falls in this shard's interval.
    fn in_shard(&self, m: &Mapping) -> bool {
        let c = self.combined_rank(m);
        self.lo <= c && c < self.hi
    }

    /// Overwrite the sharded attributes of `m` from a combined rank.
    fn apply_rank(&self, m: &mut Mapping, c: u128) {
        let d = self.base.problem().num_dims();
        match &self.axis {
            ShardAxis::OrderPrefix { .. } => {
                m.loop_orders[SHARD_ORDER_LEVEL] = perm_unrank(d, c);
            }
            ShardAxis::OrderTile { dim, extent, .. } => {
                let order_rank = c / u128::from(*extent);
                let t2 = (c % u128::from(*extent)) as u64 + 1;
                m.loop_orders[SHARD_ORDER_LEVEL] = perm_unrank(d, order_rank);
                m.tiles[1][*dim] = t2;
            }
        }
    }

    /// Admissible L2 tile interval `[t2lo, t2hi]` of the split dimension,
    /// given the order rank `m` currently sits at (the shard interval cut
    /// through this order's tile block). `None` when no tile axis is split.
    fn tile_bounds(&self, m: &Mapping) -> Option<(usize, u64, u64)> {
        let ShardAxis::OrderTile { dim, extent, .. } = &self.axis else {
            return None;
        };
        let e = u128::from(*extent);
        let block = perm_rank(&m.loop_orders[SHARD_ORDER_LEVEL]) * e;
        let lo = self.lo.max(block).saturating_sub(block) as u64 + 1;
        let hi = (self.hi.min(block + e).saturating_sub(block) as u64).max(lo);
        Some((*dim, lo.min(*extent), hi.min(*extent)))
    }

    /// Pull a base-valid mapping into this shard and restore validity: pin
    /// the combined rank into `[lo, hi)`, then re-establish the tile/
    /// parallelism/capacity invariants the pin may have disturbed — without
    /// leaving the shard again.
    fn pin_and_fix(&self, m: &mut Mapping) {
        let c = self.combined_rank(m);
        if c < self.lo || c >= self.hi {
            self.apply_rank(m, c.clamp(self.lo, self.hi - 1));
        }
        let Some((dim, t2lo, t2hi)) = self.tile_bounds(m) else {
            // Loop orders never affect base validity: pinned and done.
            return;
        };
        let p = self.base.problem();
        let t = p.num_tensors();

        // Local invariants around the pinned tile: L1 tile under the L2
        // tile, spatial tile under the L2 tile (so the L2 footprint is the
        // tile, not the spatial spread).
        m.tiles[1][dim] = m.tiles[1][dim].clamp(t2lo, t2hi);
        m.tiles[0][dim] = m.tiles[0][dim].clamp(1, m.tiles[1][dim]);
        while m.tiles[0][dim].saturating_mul(m.parallel[dim]) > m.tiles[1][dim] {
            if m.parallel[dim] > 1 {
                m.parallel[dim] /= 2;
            } else if m.tiles[0][dim] > 1 {
                m.tiles[0][dim] /= 2;
            } else {
                break;
            }
        }

        // The pin may have *grown* the L2 tile: re-fit the shared buffer
        // without shrinking the pinned tile below its admissible interval.
        let cap = self.base.constraints().l2_capacity_words;
        'fit: for _ in 0..256 {
            let footprints: Vec<u64> = (0..t).map(|ti| m.l2_footprint(p, ti)).collect();
            let total_fp: u64 = footprints.iter().sum();
            if total_fp <= cap {
                // Redistribute allocations: exactly what each tensor needs
                // plus a proportional share of the slack.
                let slack = (cap - total_fp) as f64;
                for (ti, &fp) in footprints.iter().enumerate() {
                    let share = if total_fp > 0 {
                        slack * fp as f64 / total_fp as f64
                    } else {
                        slack / t as f64
                    };
                    m.buffer_alloc[1][ti] = ((fp as f64 + share) / cap as f64).clamp(1e-6, 1.0);
                }
                break;
            }
            let worst = (0..t)
                .max_by_key(|&ti| footprints[ti])
                .expect("at least one tensor");
            // Shrink the worst tensor's largest shrinkable L2 contribution;
            // the pinned dimension only shrinks down to `t2lo`.
            let mut dims: Vec<DimId> = p.tensors[worst].relevant_dims();
            dims.sort_by_key(|dd| std::cmp::Reverse(m.tiles[1][dd.0].max(m.spatial_tile(*dd))));
            for dd in dims {
                let i = dd.0;
                let floor = if i == dim { t2lo } else { 1 };
                if m.tiles[1][i] > floor {
                    m.tiles[1][i] = (m.tiles[1][i] / 2).max(floor).max(1);
                    while m.tiles[0][i].saturating_mul(m.parallel[i]) > m.tiles[1][i] {
                        if m.parallel[i] > 1 {
                            m.parallel[i] /= 2;
                        } else if m.tiles[0][i] > 1 {
                            m.tiles[0][i] /= 2;
                        } else {
                            break;
                        }
                    }
                    continue 'fit;
                }
                if i != dim {
                    if m.parallel[i] > 1 {
                        m.parallel[i] /= 2;
                        continue 'fit;
                    }
                    if m.tiles[0][i] > 1 {
                        m.tiles[0][i] /= 2;
                        continue 'fit;
                    }
                }
            }
            break; // nothing left to shrink
        }
    }
}

impl MapSpaceView for ShardedMapSpace {
    fn problem(&self) -> &ProblemSpec {
        MapSpace::problem(&self.base)
    }

    fn constraints(&self) -> &MappingConstraints {
        MapSpace::constraints(&self.base)
    }

    fn random_mapping(&self, rng: &mut dyn RngCore) -> Mapping {
        let mut m = MapSpace::random_mapping(&self.base, rng);
        // Sample the shard's discrete axis uniformly, then restore validity.
        let span = self.hi - self.lo;
        let offset = if span <= 1 {
            0
        } else {
            u128::from(rng.gen_range(0..u64::try_from(span).unwrap_or(u64::MAX)))
        };
        self.apply_rank(&mut m, self.lo + offset);
        self.pin_and_fix(&mut m);
        debug_assert!(self.is_member(&m), "{:?}", self.validate(&m));
        m
    }

    fn neighbor(&self, m: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        let mut out = m.clone();
        MapSpace::mutate_in_place(&self.base, &mut out, rng);
        self.repair(&mut out);
        out
    }

    fn mutate_in_place(&self, m: &mut Mapping, rng: &mut dyn RngCore) {
        MapSpace::mutate_in_place(&self.base, m, rng);
    }

    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut dyn RngCore) -> Mapping {
        let mut child = MapSpace::crossover(&self.base, a, b, rng);
        self.pin_and_fix(&mut child);
        debug_assert!(self.is_member(&child), "{:?}", self.validate(&child));
        child
    }

    fn repair(&self, m: &mut Mapping) {
        MapSpace::repair(&self.base, m);
        self.pin_and_fix(m);
    }

    fn is_member(&self, m: &Mapping) -> bool {
        MapSpace::is_member(&self.base, m) && self.in_shard(m)
    }

    fn validate(&self, m: &Mapping) -> Result<(), String> {
        MapSpace::validate(&self.base, m)?;
        if self.in_shard(m) {
            Ok(())
        } else {
            Err(format!(
                "combined rank {} outside shard {}/{} interval [{}, {})",
                self.combined_rank(m),
                self.index,
                self.count,
                self.lo,
                self.hi
            ))
        }
    }

    fn log10_size_estimate(&self) -> f64 {
        MapSpace::log10_size_estimate(&self.base) - (self.count.max(1) as f64).log10()
    }

    fn project(&self, mapping_values: &[f32]) -> Result<Mapping, MapSpaceError> {
        let mut m = MapSpace::project(&self.base, mapping_values)?;
        self.pin_and_fix(&mut m);
        Ok(m)
    }

    fn shard_info(&self) -> Option<(usize, usize)> {
        Some((self.index, self.count))
    }

    fn clone_view(&self) -> Box<dyn MapSpaceView> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> MapSpace {
        MapSpace::new(ProblemSpec::conv1d(128, 7), MappingConstraints::example())
    }

    #[test]
    fn perm_rank_unrank_roundtrip() {
        for d in 1..=5usize {
            let total = factorial(d);
            for r in 0..total {
                let p = perm_unrank(d, r);
                assert_eq!(perm_rank(&p), r, "d={d} rank={r} perm={p:?}");
            }
        }
        assert_eq!(perm_rank(&[0, 1, 2]), 0);
        assert_eq!(perm_rank(&[2, 1, 0]), 5);
    }

    #[test]
    fn shard_capacity_is_orders_times_largest_dim() {
        let s = space();
        // conv1d(128, 7): dims X=122 (output width), R=7 → 2! · 122.
        let d = s.problem().num_dims();
        let (_, size) = largest_dim(s.problem());
        assert_eq!(s.shard_capacity(), factorial(d) * u128::from(size));
    }

    #[test]
    fn order_prefix_shards_partition_the_permutations() {
        let s = space();
        // d = 2 → 2 permutations → 2 order-prefix shards.
        let a = s.shard(0, 2);
        let b = s.shard(1, 2);
        assert!(matches!(a.axis, ShardAxis::OrderPrefix { .. }));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let m = MapSpace::random_mapping(&s, &mut rng);
            let ina = a.in_shard(&m);
            let inb = b.in_shard(&m);
            assert!(ina ^ inb, "every mapping lands in exactly one shard");
        }
    }

    #[test]
    fn tile_fallback_engages_when_count_exceeds_permutations() {
        let s = space();
        let shards: Vec<ShardedMapSpace> = (0..8).map(|i| s.shard(i, 8)).collect();
        assert!(matches!(shards[0].axis, ShardAxis::OrderTile { .. }));
        let mut rng = StdRng::seed_from_u64(2);
        for round in 0..40 {
            let m = MapSpace::random_mapping(&s, &mut rng);
            let owners = shards.iter().filter(|sh| sh.in_shard(&m)).count();
            assert_eq!(owners, 1, "round {round}: exactly one owner");
        }
    }

    #[test]
    fn shard_sampling_stays_in_shard_and_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 3, 5, 8] {
            for i in 0..n {
                let sh = s.shard(i, n);
                for _ in 0..25 {
                    let m = sh.random_mapping(&mut rng);
                    assert!(sh.is_member(&m), "{:?}", sh.validate(&m));
                    assert!(MapSpace::is_member(&s, &m));
                }
            }
        }
    }

    #[test]
    fn shard_moves_stay_in_shard() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(4);
        let sh = s.shard(2, 4);
        let mut m = sh.random_mapping(&mut rng);
        for _ in 0..100 {
            m = sh.neighbor(&m, &mut rng);
            assert!(sh.is_member(&m), "{:?}", sh.validate(&m));
        }
        let a = sh.random_mapping(&mut rng);
        let b = sh.random_mapping(&mut rng);
        for _ in 0..25 {
            let c = MapSpaceView::crossover(&sh, &a, &b, &mut rng);
            assert!(sh.is_member(&c), "{:?}", sh.validate(&c));
        }
    }

    #[test]
    fn shard_projection_is_valid_and_in_shard() {
        let s = space();
        let sh = s.shard(1, 3);
        let enc = crate::encode::Encoding::for_problem(s.problem());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let v: Vec<f32> = (0..enc.mapping_len())
                .map(|_| rng.gen_range(-20.0..200.0))
                .collect();
            let m = MapSpaceView::project(&sh, &v).unwrap();
            assert!(sh.is_member(&m), "{:?}", sh.validate(&m));
        }
    }

    #[test]
    fn shard_info_and_size_estimate() {
        let s = space();
        let sh = s.shard(1, 4);
        assert_eq!(sh.shard_info(), Some((1, 4)));
        assert_eq!(MapSpaceView::shard_info(&s), None);
        assert!(sh.log10_size_estimate() < MapSpaceView::log10_size_estimate(&s));
        assert!(!sh.axis_description().is_empty());
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn shard_rejects_out_of_range_index() {
        let _ = space().shard(3, 3);
    }

    #[test]
    fn dyn_view_is_usable_behind_a_pointer() {
        let s = space();
        let views: Vec<Box<dyn MapSpaceView>> = vec![Box::new(s.clone()), Box::new(s.shard(0, 2))];
        let mut rng = StdRng::seed_from_u64(6);
        for v in &views {
            let m = v.random_mapping(&mut rng);
            assert!(v.is_member(&m));
            let n = v.neighbor(&m, &mut rng);
            assert!(v.is_member(&n));
            let v2 = v.clone_view();
            assert!(v2.is_member(&m));
        }
    }
}
