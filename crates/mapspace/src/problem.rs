//! Problem specifications: named dimensions plus the tensors that project
//! onto them.
//!
//! This is the domain-agnostic analogue of Timeloop's "problem" description:
//! any algorithm expressible as an affine loop nest over a set of dimensions
//! (a generalized einsum, possibly with sliding-window/compound indices such
//! as `I[x + r]` in convolutions) can be described as a [`ProblemSpec`]. The
//! Mind Mappings surrogate is trained over a *family* of problems
//! ([`ProblemFamily`]) so that it generalizes to unseen problem shapes
//! (Section 4.1.1).

use serde::{Deserialize, Serialize};

/// Index of a problem dimension within a [`ProblemSpec`].
///
/// Newtype so that dimension indices cannot be confused with tensor indices
/// or loop positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DimId(pub usize);

impl DimId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for DimId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Whether a tensor is an input operand or the produced output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// Read-only operand (e.g. the input activations or filter weights).
    Input,
    /// The produced (and possibly accumulated) result tensor.
    Output,
}

/// One coordinate of a tensor, expressed in terms of problem dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorDim {
    /// The coordinate ranges directly over one problem dimension.
    Single(DimId),
    /// A sliding-window coordinate `a + b` (e.g. `x + r` in convolution).
    /// Its extent for tile sizes `ta`, `tb` is `ta + tb - 1`.
    Compound(DimId, DimId),
}

impl TensorDim {
    /// Problem dimensions referenced by this coordinate.
    pub fn referenced(&self) -> Vec<DimId> {
        match *self {
            TensorDim::Single(d) => vec![d],
            TensorDim::Compound(a, b) => vec![a, b],
        }
    }

    /// Whether this coordinate references problem dimension `d`
    /// (allocation-free form of `referenced().contains(&d)`).
    pub fn references(&self, d: DimId) -> bool {
        match *self {
            TensorDim::Single(a) => a == d,
            TensorDim::Compound(a, b) => a == d || b == d,
        }
    }

    /// Extent of this coordinate when each problem dimension `d` has tile size
    /// `tile(d)`.
    pub fn extent(&self, tile: impl Fn(DimId) -> u64) -> u64 {
        match *self {
            TensorDim::Single(d) => tile(d).max(1),
            TensorDim::Compound(a, b) => (tile(a).max(1) + tile(b).max(1)).saturating_sub(1),
        }
    }
}

/// A tensor (operand or result) of the problem and its projection onto the
/// problem dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorSpec {
    /// Short name used in reports (e.g. `"I"`, `"F"`, `"O"`).
    pub name: String,
    /// Operand vs. result.
    pub kind: TensorKind,
    /// Coordinates of the tensor in terms of problem dimensions.
    pub dims: Vec<TensorDim>,
}

impl TensorSpec {
    /// Create a tensor spec.
    pub fn new(name: impl Into<String>, kind: TensorKind, dims: Vec<TensorDim>) -> Self {
        Self {
            name: name.into(),
            kind,
            dims,
        }
    }

    /// All problem dimensions this tensor depends on (deduplicated, ordered).
    pub fn relevant_dims(&self) -> Vec<DimId> {
        let mut out = Vec::new();
        for td in &self.dims {
            for d in td.referenced() {
                if !out.contains(&d) {
                    out.push(d);
                }
            }
        }
        out
    }

    /// Allocation-free form of [`relevant_dims`](Self::relevant_dims): write
    /// the deduplicated dimensions (same order) into `buf` and return how many
    /// were written. `buf` must have room for every distinct dimension the
    /// tensor references.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is too small to hold the distinct referenced dims.
    pub fn relevant_dims_into(&self, buf: &mut [DimId]) -> usize {
        let mut n = 0;
        for td in &self.dims {
            let (a, b) = match *td {
                TensorDim::Single(a) => (a, None),
                TensorDim::Compound(a, b) => (a, Some(b)),
            };
            for d in std::iter::once(a).chain(b) {
                if !buf[..n].contains(&d) {
                    buf[n] = d;
                    n += 1;
                }
            }
        }
        n
    }

    /// Whether the tensor's contents depend on problem dimension `d`.
    ///
    /// Allocation-free: this sits on the innermost loops of the reuse
    /// analysis (called per temporal loop per tensor per evaluation).
    pub fn is_relevant(&self, d: DimId) -> bool {
        self.dims.iter().any(|td| td.references(d))
    }

    /// Number of elements of this tensor covered by a tile with per-dimension
    /// extents given by `tile`.
    pub fn footprint(&self, tile: impl Fn(DimId) -> u64 + Copy) -> u64 {
        self.dims
            .iter()
            .map(|td| td.extent(tile))
            .fold(1u64, |acc, e| acc.saturating_mul(e.max(1)))
    }
}

/// A fully parameterized problem: one member of an algorithm family.
///
/// For example *the* CNN layer with `N=16, K=256, C=256, X=14, Y=14, R=3,
/// S=3`, as opposed to "CNN layers" in general.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Human-readable problem name (e.g. `"ResNet Conv_4"`).
    pub name: String,
    /// Names of the problem dimensions, in canonical order.
    pub dim_names: Vec<String>,
    /// Sizes (loop bounds) of the problem dimensions, same order.
    pub dim_sizes: Vec<u64>,
    /// The tensors read and written by the problem.
    pub tensors: Vec<TensorSpec>,
}

impl ProblemSpec {
    /// Create a problem spec. Panics if `dim_names` and `dim_sizes` lengths
    /// differ or any size is zero.
    ///
    /// # Panics
    ///
    /// Panics when the dimension name/size lists have different lengths, when
    /// a dimension size is zero, or when no output tensor is present.
    pub fn new(name: impl Into<String>, dims: Vec<(&str, u64)>, tensors: Vec<TensorSpec>) -> Self {
        assert!(
            dims.iter().all(|(_, s)| *s > 0),
            "problem dimensions must be non-zero"
        );
        assert!(
            tensors.iter().any(|t| t.kind == TensorKind::Output),
            "problem must have an output tensor"
        );
        Self {
            name: name.into(),
            dim_names: dims.iter().map(|(n, _)| n.to_string()).collect(),
            dim_sizes: dims.iter().map(|(_, s)| *s).collect(),
            tensors,
        }
    }

    /// Number of problem dimensions.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.dim_sizes.len()
    }

    /// Number of tensors (operands + results).
    #[inline]
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// Size (loop bound) of dimension `d`.
    #[inline]
    pub fn dim_size(&self, d: DimId) -> u64 {
        self.dim_sizes[d.0]
    }

    /// Iterator over all dimension ids.
    pub fn dims(&self) -> impl Iterator<Item = DimId> {
        (0..self.dim_sizes.len()).map(DimId)
    }

    /// Look up a dimension id by name.
    pub fn dim_by_name(&self, name: &str) -> Option<DimId> {
        self.dim_names.iter().position(|n| n == name).map(DimId)
    }

    /// Total number of multiply-accumulate operations: the product of all
    /// dimension sizes (every point of the iteration space is one MAC).
    pub fn total_macs(&self) -> u128 {
        self.dim_sizes.iter().map(|&s| s as u128).product()
    }

    /// Total number of elements of tensor `t` for the full problem.
    pub fn tensor_size(&self, t: usize) -> u64 {
        self.tensors[t].footprint(|d| self.dim_size(d))
    }

    /// The problem-id vector used to condition the surrogate (Section 4.1.1):
    /// simply the dimension sizes as floats.
    pub fn problem_id(&self) -> Vec<f32> {
        self.dim_sizes.iter().map(|&s| s as f32).collect()
    }

    /// The output tensor index. Problems are guaranteed to have one.
    pub fn output_tensor(&self) -> usize {
        self.tensors
            .iter()
            .position(|t| t.kind == TensorKind::Output)
            // mm-lint: allow(panic): every constructor inserts an output
            // tensor; its absence is a corrupted ProblemSpec.
            .expect("ProblemSpec invariant: output tensor exists")
    }

    /// Dimensions that do not appear in the output tensor (reduction
    /// dimensions); iterating them accumulates partial sums.
    pub fn reduction_dims(&self) -> Vec<DimId> {
        let out = &self.tensors[self.output_tensor()];
        self.dims().filter(|&d| !out.is_relevant(d)).collect()
    }

    // ----- Canonical example problems (used across the workspace) -----

    /// The 1D convolution of Section 3: `O[x] += I[x + r] * F[r]` with input
    /// width `w` and filter size `r`. The two dimensions are the output width
    /// `X = w - r + 1` and the filter extent `R = r`.
    ///
    /// # Panics
    ///
    /// Panics if `r > w` or either is zero.
    pub fn conv1d(w: u64, r: u64) -> Self {
        assert!(w >= r && r > 0, "conv1d requires 0 < r <= w");
        let x = w - r + 1;
        let dx = DimId(0);
        let dr = DimId(1);
        ProblemSpec::new(
            format!("conv1d_w{w}_r{r}"),
            vec![("X", x), ("R", r)],
            vec![
                TensorSpec::new("I", TensorKind::Input, vec![TensorDim::Compound(dx, dr)]),
                TensorSpec::new("F", TensorKind::Input, vec![TensorDim::Single(dr)]),
                TensorSpec::new("O", TensorKind::Output, vec![TensorDim::Single(dx)]),
            ],
        )
    }
}

impl std::fmt::Display for ProblemSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [", self.name)?;
        for (i, (n, s)) in self.dim_names.iter().zip(&self.dim_sizes).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={s}")?;
        }
        write!(f, "]")
    }
}

/// A family of problems sharing an algorithm (all CNN layers, all MTTKRP
/// shapes, …). Used to generate the Phase-1 training set: the surrogate is
/// trained on mappings drawn from *representative* problems of the family so
/// it can interpolate to unseen shapes (Section 4.1.1, question 1).
pub trait ProblemFamily {
    /// Name of the algorithm (e.g. `"cnn-layer"`).
    fn algorithm(&self) -> &str;

    /// Number of problem dimensions every member of the family has.
    fn num_dims(&self) -> usize;

    /// Number of tensors every member of the family has.
    fn num_tensors(&self) -> usize;

    /// Sample a representative problem of the family (used for training-set
    /// generation; typical dimension ranges, uniform at random).
    fn sample_problem(&self, rng: &mut dyn rand::RngCore) -> ProblemSpec;

    /// A fixed canonical member of the family, used to derive the encoding
    /// shape (vector lengths) which is constant across the family.
    fn canonical_problem(&self) -> ProblemSpec;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> ProblemSpec {
        ProblemSpec::conv1d(64, 5)
    }

    #[test]
    fn conv1d_shape() {
        let p = conv();
        assert_eq!(p.num_dims(), 2);
        assert_eq!(p.num_tensors(), 3);
        assert_eq!(p.dim_size(DimId(0)), 60); // X = 64 - 5 + 1
        assert_eq!(p.dim_size(DimId(1)), 5);
        assert_eq!(p.total_macs(), 60 * 5);
    }

    #[test]
    fn conv1d_tensor_sizes() {
        let p = conv();
        // I is compound: X + R - 1 = 64
        assert_eq!(p.tensor_size(0), 64);
        // F = R = 5
        assert_eq!(p.tensor_size(1), 5);
        // O = X = 60
        assert_eq!(p.tensor_size(2), 60);
    }

    #[test]
    fn relevant_dims_and_reductions() {
        let p = conv();
        let filt = &p.tensors[1];
        assert!(filt.is_relevant(DimId(1)));
        assert!(!filt.is_relevant(DimId(0)));
        assert_eq!(p.output_tensor(), 2);
        assert_eq!(p.reduction_dims(), vec![DimId(1)]);
    }

    #[test]
    fn relevant_dims_into_matches_allocating_form() {
        let p = conv();
        for t in &p.tensors {
            let mut buf = [DimId(0); 8];
            let n = t.relevant_dims_into(&mut buf);
            assert_eq!(&buf[..n], t.relevant_dims().as_slice());
        }
    }

    #[test]
    fn footprint_respects_compound_dims() {
        let p = conv();
        let inp = &p.tensors[0];
        // tile X=4, R=3 -> input footprint = 4 + 3 - 1 = 6
        let fp = inp.footprint(|d| if d == DimId(0) { 4 } else { 3 });
        assert_eq!(fp, 6);
    }

    #[test]
    fn problem_id_matches_dim_sizes() {
        let p = conv();
        assert_eq!(p.problem_id(), vec![60.0, 5.0]);
    }

    #[test]
    fn dim_by_name_roundtrip() {
        let p = conv();
        assert_eq!(p.dim_by_name("X"), Some(DimId(0)));
        assert_eq!(p.dim_by_name("R"), Some(DimId(1)));
        assert_eq!(p.dim_by_name("Z"), None);
    }

    #[test]
    fn display_contains_sizes() {
        let p = conv();
        let s = p.to_string();
        assert!(s.contains("X=60"));
        assert!(s.contains("R=5"));
    }

    #[test]
    #[should_panic(expected = "conv1d requires")]
    fn conv1d_rejects_bad_sizes() {
        let _ = ProblemSpec::conv1d(3, 5);
    }

    #[test]
    fn tensor_dim_extent_handles_zero_gracefully() {
        let td = TensorDim::Compound(DimId(0), DimId(1));
        assert_eq!(td.extent(|_| 0), 1);
        let td = TensorDim::Single(DimId(0));
        assert_eq!(td.extent(|_| 0), 1);
    }
}
