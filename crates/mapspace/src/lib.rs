//! # mm-mapspace
//!
//! Mapping and map-space abstractions for programmable hardware accelerators,
//! following the formulation of *Mind Mappings: Enabling Efficient
//! Algorithm-Accelerator Mapping Space Search* (ASPLOS 2021), Sections 2–3.
//!
//! A **problem** is a parameterized instance of an algorithm (e.g. one CNN
//! layer shape), described by a [`ProblemSpec`]: a set of named dimensions and
//! the tensors that project onto them. A **mapping** ([`Mapping`]) assigns the
//! accelerator's programmable attributes — per-level tile sizes, spatial
//! parallelism, loop orders, and buffer allocations — for that problem. The
//! [`MapSpace`] ties a problem to the accelerator's [`MappingConstraints`] and
//! provides the three routines required by the Mind Mappings API (Appendix B):
//!
//! * `random_mapping` (`getMapping`) — a uniformly sampled *valid* mapping,
//! * `is_member` (`isMember`) — validity check,
//! * [`project`](MapSpace::project) (`getProjection`) — nearest-valid
//!   projection of an arbitrary real vector, used by projected gradient
//!   descent.
//!
//! Mappings can be flattened to a fixed-length `f32` vector via [`Encoding`],
//! matching the input representation of Section 5.5 (62 values for CNN-Layer,
//! 40 for MTTKRP).
//!
//! Searchers consume the space through the object-safe [`MapSpaceView`]
//! trait — implemented by the full [`MapSpace`] and by [`ShardedMapSpace`]
//! ([`MapSpace::shard`]), a pairwise-disjoint, jointly-covering slice of the
//! space for provably non-overlapping parallel search (see [`view`]).
//!
//! ```
//! use mm_mapspace::problem::ProblemSpec;
//! use mm_mapspace::space::{MapSpace, MappingConstraints};
//!
//! // A toy 1D-convolution problem: O[x] += I[x + r] * F[r]
//! let problem = ProblemSpec::conv1d(64, 5);
//! let constraints = MappingConstraints::example();
//! let space = MapSpace::new(problem, constraints);
//! let mut rng = rand::thread_rng();
//! let mapping = space.random_mapping(&mut rng);
//! assert!(space.is_member(&mapping));
//! ```

pub mod encode;
pub mod mapping;
pub mod problem;
pub mod project;
pub mod space;
pub mod view;

pub use encode::Encoding;
pub use mapping::Mapping;
pub use problem::{DimId, ProblemFamily, ProblemSpec, TensorDim, TensorKind, TensorSpec};
pub use space::{MapSpace, MappingConstraints};
pub use view::{MapSpaceView, ShardAxis, ShardAxisKind, ShardedMapSpace};

/// Errors produced when constructing or validating mappings and problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapSpaceError {
    /// A dimension size, tile size, or parallelism factor was zero.
    ZeroExtent {
        /// Human-readable description of the offending attribute.
        what: String,
    },
    /// The mapping's shape (number of levels/dims/tensors) does not match the
    /// problem or constraints it is being validated against.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// A vector passed for decoding had the wrong length.
    BadVectorLength {
        /// Expected number of values.
        expected: usize,
        /// Number of values actually supplied.
        actual: usize,
    },
}

impl std::fmt::Display for MapSpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapSpaceError::ZeroExtent { what } => write!(f, "zero extent in {what}"),
            MapSpaceError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            MapSpaceError::BadVectorLength { expected, actual } => {
                write!(f, "bad vector length: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for MapSpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = MapSpaceError::ZeroExtent {
            what: "tile".into(),
        };
        assert!(!e.to_string().is_empty());
        let e = MapSpaceError::BadVectorLength {
            expected: 62,
            actual: 40,
        };
        assert!(e.to_string().contains("62"));
    }

    #[test]
    fn shape_mismatch_display() {
        let e = MapSpaceError::ShapeMismatch {
            what: "dims".into(),
        };
        assert!(e.to_string().contains("dims"));
    }
}
