// mm-lint: identity — this file feeds canonical output; the determinism rule applies.
//! The [`Mapping`] type: one point in the algorithm-accelerator map space.
//!
//! A mapping fixes the accelerator's programmable attributes for one problem
//! (Definition 2.1): per-level tile sizes, spatial parallelism across PEs,
//! per-level loop orders, and per-level buffer allocation fractions. The
//! memory hierarchy is modelled with two on-chip levels (a private L1 per PE
//! and a shared L2) below DRAM, matching the accelerator evaluated in
//! Section 5.

use serde::{Deserialize, Serialize};

use crate::problem::{DimId, ProblemSpec};

/// Number of on-chip buffer levels (L1 private, L2 shared).
pub const ONCHIP_LEVELS: usize = 2;
/// Number of loop-nest levels carrying temporal loop orders (L1, L2, DRAM).
pub const ORDER_LEVELS: usize = 3;

/// Identifier of a loop-nest / buffer level, innermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Per-PE private buffer (innermost tiles).
    L1,
    /// Shared on-chip buffer.
    L2,
    /// Off-chip DRAM (outermost loops).
    Dram,
}

impl Level {
    /// The three levels, innermost first.
    pub const ALL: [Level; 3] = [Level::L1, Level::L2, Level::Dram];

    /// Index used throughout the crate: L1 = 0, L2 = 1, DRAM = 2.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Level::L1 => 0,
            Level::L2 => 1,
            Level::Dram => 2,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::L1 => write!(f, "L1"),
            Level::L2 => write!(f, "L2"),
            Level::Dram => write!(f, "DRAM"),
        }
    }
}

/// A complete assignment of the accelerator's programmable attributes for one
/// problem: tiling, parallelism, loop ordering, and buffer allocation.
///
/// Invariants expected by the cost model (and enforced by
/// [`MapSpace::is_member`](crate::space::MapSpace::is_member)):
///
/// * `1 <= tiles[L1][d] <= tiles[L2][d] <= dim_size(d)` for every dimension;
/// * `1 <= parallel[d]` and `Π_d parallel[d] <= num_pes`;
/// * `tiles[L2][d] >= tiles[L1][d] * parallel[d]` (the shared-buffer tile must
///   cover the work spread across PEs);
/// * each `loop_orders[level]` is a permutation of the dimensions;
/// * `buffer_alloc[level]` entries are in `(0, 1]` and sum to at most 1;
/// * the per-level tensor footprints fit in the buffer capacity allocated to
///   them.
#[derive(Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Tile sizes per on-chip level: `tiles[0]` = L1 (per-PE) tile extents,
    /// `tiles[1]` = L2 (shared buffer) tile extents, indexed by dimension.
    pub tiles: Vec<Vec<u64>>,
    /// Spatial fan-out (number of PEs) assigned to each dimension.
    pub parallel: Vec<u64>,
    /// Loop order per level (innermost level first): a permutation of the
    /// dimension indices, outermost loop first within each level.
    pub loop_orders: Vec<Vec<usize>>,
    /// Fraction of each on-chip level's capacity allocated to each tensor:
    /// `buffer_alloc[level][tensor] ∈ (0, 1]`, summing to ≤ 1 per level.
    pub buffer_alloc: Vec<Vec<f64>>,
}

/// Hand-written so `clone_from` reuses the destination's nested allocations
/// (the derived impl would fall back to `*self = source.clone()`), which is
/// what lets proposal buffers and eval pipelines recycle mapping storage.
impl Clone for Mapping {
    fn clone(&self) -> Self {
        Mapping {
            tiles: self.tiles.clone(),
            parallel: self.parallel.clone(),
            loop_orders: self.loop_orders.clone(),
            buffer_alloc: self.buffer_alloc.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.tiles.clone_from(&source.tiles);
        self.parallel.clone_from(&source.parallel);
        self.loop_orders.clone_from(&source.loop_orders);
        self.buffer_alloc.clone_from(&source.buffer_alloc);
    }
}

impl Mapping {
    /// A trivially valid "minimal" mapping for the given problem: unit tiles,
    /// no parallelism, identity loop orders, and equal buffer split.
    ///
    /// Useful as a starting point for tests and as a guaranteed-valid
    /// fallback.
    pub fn minimal(problem: &ProblemSpec) -> Self {
        let d = problem.num_dims();
        let t = problem.num_tensors();
        Mapping {
            tiles: vec![vec![1; d]; ONCHIP_LEVELS],
            parallel: vec![1; d],
            loop_orders: vec![(0..d).collect(); ORDER_LEVELS],
            buffer_alloc: vec![vec![1.0 / t as f64; t]; ONCHIP_LEVELS],
        }
    }

    /// Rewrite `self` in place to equal [`Mapping::minimal`] for `problem`,
    /// reusing the existing nested allocations when shapes already match.
    pub fn reset_minimal(&mut self, problem: &ProblemSpec) {
        let d = problem.num_dims();
        let t = problem.num_tensors();
        self.tiles.resize_with(ONCHIP_LEVELS, Vec::new);
        for row in &mut self.tiles {
            row.clear();
            row.resize(d, 1);
        }
        self.parallel.clear();
        self.parallel.resize(d, 1);
        self.loop_orders.resize_with(ORDER_LEVELS, Vec::new);
        for order in &mut self.loop_orders {
            order.clear();
            order.extend(0..d);
        }
        self.buffer_alloc.resize_with(ONCHIP_LEVELS, Vec::new);
        for row in &mut self.buffer_alloc {
            row.clear();
            row.resize(t, 1.0 / t as f64);
        }
    }

    /// Number of problem dimensions this mapping covers.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.parallel.len()
    }

    /// Number of tensors this mapping allocates buffers for.
    #[inline]
    pub fn num_tensors(&self) -> usize {
        self.buffer_alloc.first().map_or(0, |v| v.len())
    }

    /// L1 (per-PE) tile extent of dimension `d`.
    #[inline]
    pub fn l1_tile(&self, d: DimId) -> u64 {
        self.tiles[0][d.0].max(1)
    }

    /// L2 (shared buffer) tile extent of dimension `d`.
    #[inline]
    pub fn l2_tile(&self, d: DimId) -> u64 {
        self.tiles[1][d.0].max(1)
    }

    /// Spatial parallelism assigned to dimension `d`.
    #[inline]
    pub fn parallelism(&self, d: DimId) -> u64 {
        self.parallel[d.0].max(1)
    }

    /// Total number of PEs used: the product of per-dimension parallelism.
    pub fn active_pes(&self) -> u64 {
        self.parallel
            .iter()
            .fold(1u64, |acc, &p| acc.saturating_mul(p.max(1)))
    }

    /// The extent of dimension `d` covered by one "spatial tile": the L1 tile
    /// replicated across the PEs assigned to `d`.
    #[inline]
    pub fn spatial_tile(&self, d: DimId) -> u64 {
        self.l1_tile(d).saturating_mul(self.parallelism(d))
    }

    /// Temporal loop trip count for dimension `d` at the given level, using
    /// ceiling division (imperfect factorizations are padded).
    pub fn trip_count(&self, problem: &ProblemSpec, level: Level, d: DimId) -> u64 {
        match level {
            Level::L1 => self.l1_tile(d),
            Level::L2 => div_ceil(self.l2_tile(d), self.spatial_tile(d)),
            Level::Dram => div_ceil(problem.dim_size(d), self.l2_tile(d)),
        }
    }

    /// The loop order (outermost first) at `level`.
    pub fn order(&self, level: Level) -> &[usize] {
        &self.loop_orders[level.index()]
    }

    /// Buffer fraction allocated to tensor `t` at on-chip level `level`
    /// (L1 or L2). Returns 0 for DRAM.
    pub fn alloc_fraction(&self, level: Level, t: usize) -> f64 {
        match level {
            Level::Dram => 0.0,
            _ => self.buffer_alloc[level.index()][t],
        }
    }

    /// Per-PE L1 footprint (in elements) of tensor `t`.
    pub fn l1_footprint(&self, problem: &ProblemSpec, t: usize) -> u64 {
        problem.tensors[t].footprint(|d| self.l1_tile(d))
    }

    /// Shared L2 footprint (in elements) of tensor `t`; covers the spatial
    /// tile so data for all active PEs is resident.
    pub fn l2_footprint(&self, problem: &ProblemSpec, t: usize) -> u64 {
        problem.tensors[t].footprint(|d| self.l2_tile(d).max(self.spatial_tile(d)))
    }

    /// The total padded iteration-space size implied by the mapping (may be
    /// larger than the problem's true MAC count when tiles do not divide the
    /// dimensions evenly).
    pub fn padded_macs(&self, problem: &ProblemSpec) -> u128 {
        problem
            .dims()
            .map(|d| {
                let per_dim = self.trip_count(problem, Level::L1, d)
                    * self.parallelism(d)
                    * self.trip_count(problem, Level::L2, d)
                    * self.trip_count(problem, Level::Dram, d);
                per_dim as u128
            })
            .product()
    }
}

/// Ceiling division for `u64`, returning at least 1.
#[inline]
pub fn div_ceil(a: u64, b: u64) -> u64 {
    if b == 0 {
        return a.max(1);
    }
    a.div_ceil(b).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemSpec;

    fn conv() -> ProblemSpec {
        ProblemSpec::conv1d(64, 5)
    }

    #[test]
    fn minimal_mapping_is_well_formed() {
        let p = conv();
        let m = Mapping::minimal(&p);
        assert_eq!(m.num_dims(), 2);
        assert_eq!(m.num_tensors(), 3);
        assert_eq!(m.active_pes(), 1);
        for d in p.dims() {
            assert_eq!(m.l1_tile(d), 1);
            assert_eq!(m.l2_tile(d), 1);
        }
    }

    #[test]
    fn trip_counts_use_ceiling_division() {
        let p = conv();
        let mut m = Mapping::minimal(&p);
        let x = DimId(0);
        m.tiles[0][0] = 4; // L1 tile of X
        m.parallel[0] = 2; // 2 PEs on X
        m.tiles[1][0] = 16; // L2 tile of X
        assert_eq!(m.trip_count(&p, Level::L1, x), 4);
        assert_eq!(m.trip_count(&p, Level::L2, x), 2); // 16 / (4*2)
        assert_eq!(m.trip_count(&p, Level::Dram, x), 4); // ceil(60/16)
    }

    #[test]
    fn footprints_follow_tiles() {
        let p = conv();
        let mut m = Mapping::minimal(&p);
        m.tiles[0] = vec![8, 3];
        m.tiles[1] = vec![32, 5];
        // Input footprint at L1 = (8 + 3 - 1) = 10
        assert_eq!(m.l1_footprint(&p, 0), 10);
        // Filter footprint at L1 = 3
        assert_eq!(m.l1_footprint(&p, 1), 3);
        // Output footprint at L2 = 32
        assert_eq!(m.l2_footprint(&p, 2), 32);
    }

    #[test]
    fn padded_macs_at_least_actual() {
        let p = conv();
        let mut m = Mapping::minimal(&p);
        m.tiles[0] = vec![7, 2];
        m.tiles[1] = vec![14, 4];
        assert!(m.padded_macs(&p) >= p.total_macs());
    }

    #[test]
    fn active_pes_is_product() {
        let p = conv();
        let mut m = Mapping::minimal(&p);
        m.parallel = vec![4, 2];
        assert_eq!(m.active_pes(), 8);
    }

    #[test]
    fn reset_minimal_matches_minimal() {
        let p = conv();
        let mut m = Mapping::minimal(&p);
        m.tiles[0] = vec![8, 3];
        m.parallel = vec![4, 2];
        m.loop_orders[1] = vec![1, 0];
        m.buffer_alloc[0] = vec![0.9, 0.05, 0.05];
        m.reset_minimal(&p);
        assert_eq!(m, Mapping::minimal(&p));

        // Starting from empty (Default) also works.
        let mut e = Mapping::default();
        e.reset_minimal(&p);
        assert_eq!(e, Mapping::minimal(&p));
    }

    #[test]
    fn div_ceil_edge_cases() {
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(div_ceil(1, 10), 1);
        assert_eq!(div_ceil(0, 0), 1);
        assert_eq!(div_ceil(5, 0), 5);
    }

    #[test]
    fn level_indices_are_stable() {
        assert_eq!(Level::L1.index(), 0);
        assert_eq!(Level::L2.index(), 1);
        assert_eq!(Level::Dram.index(), 2);
        assert_eq!(Level::ALL.len(), 3);
        assert_eq!(Level::Dram.to_string(), "DRAM");
    }
}
