//! The [`MapSpace`]: the set of valid mappings for one (accelerator, problem)
//! pair, together with sampling, validity checking, and the local-move
//! operators used by black-box searchers.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::mapping::{Level, Mapping, ONCHIP_LEVELS, ORDER_LEVELS};
use crate::problem::{DimId, ProblemSpec};

/// The accelerator parameters that constrain which mappings are valid:
/// buffer capacities, bank counts, and the number of processing elements.
///
/// This is the *mapping-relevant* subset of the architecture description; the
/// full architecture (energies, bandwidths, clock) lives in `mm-accel`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingConstraints {
    /// Number of processing elements available for spatial parallelism.
    pub num_pes: u64,
    /// Capacity of each PE's private L1 buffer, in data words.
    pub l1_capacity_words: u64,
    /// Capacity of the shared L2 buffer, in data words.
    pub l2_capacity_words: u64,
    /// Number of allocatable banks in each L1 buffer.
    pub l1_banks: u64,
    /// Number of allocatable banks in the L2 buffer.
    pub l2_banks: u64,
}

impl MappingConstraints {
    /// The accelerator evaluated in Section 5: 256 PEs, 64 KB private L1 per
    /// PE and 512 KB shared L2, with 4-byte words and 16/32 banks.
    pub fn paper_accelerator() -> Self {
        MappingConstraints {
            num_pes: 256,
            l1_capacity_words: 64 * 1024 / 4,
            l2_capacity_words: 512 * 1024 / 4,
            l1_banks: 16,
            l2_banks: 32,
        }
    }

    /// A small configuration handy for unit tests and doc examples.
    pub fn example() -> Self {
        MappingConstraints {
            num_pes: 16,
            l1_capacity_words: 1024,
            l2_capacity_words: 16 * 1024,
            l1_banks: 8,
            l2_banks: 16,
        }
    }

    /// Capacity in words of the given on-chip level (`None` for DRAM).
    pub fn capacity_words(&self, level: Level) -> Option<u64> {
        match level {
            Level::L1 => Some(self.l1_capacity_words),
            Level::L2 => Some(self.l2_capacity_words),
            Level::Dram => None,
        }
    }
}

impl Default for MappingConstraints {
    fn default() -> Self {
        Self::paper_accelerator()
    }
}

/// Tolerance (in words) used when comparing tensor footprints against buffer
/// allocations, absorbing the precision lost when allocation fractions pass
/// through the `f32` mapping encoding.
const ALLOC_EPS_WORDS: f64 = 0.0625;

/// Stack capacity for per-tensor relevant-dimension scratch in
/// [`MapSpace::repair`]; problems with more dimensions fall back to a heap
/// allocation (none of the paper's workloads come close).
const DIM_STACK: usize = 64;

/// The map space `M_{a,p}` (Definition 2.2): all valid mappings of problem
/// `p` onto the accelerator described by [`MappingConstraints`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapSpace {
    problem: ProblemSpec,
    constraints: MappingConstraints,
}

impl MapSpace {
    /// Create the map space for `problem` on the accelerator described by
    /// `constraints`.
    pub fn new(problem: ProblemSpec, constraints: MappingConstraints) -> Self {
        Self {
            problem,
            constraints,
        }
    }

    /// The problem this map space targets.
    #[inline]
    pub fn problem(&self) -> &ProblemSpec {
        &self.problem
    }

    /// The accelerator constraints.
    #[inline]
    pub fn constraints(&self) -> &MappingConstraints {
        &self.constraints
    }

    // ------------------------------------------------------------------
    // Validity (isMember)
    // ------------------------------------------------------------------

    /// `isMember(m, p)` — whether `m` is a valid mapping of the problem onto
    /// the accelerator (Appendix B). Checks shape, tile monotonicity,
    /// parallelism limits, loop-order permutations, buffer-allocation ranges
    /// and per-tensor capacity fits.
    pub fn is_member(&self, m: &Mapping) -> bool {
        self.validate(m).is_ok()
    }

    /// Like [`is_member`](Self::is_member) but returns the first violated
    /// constraint as a human-readable string, which is useful in tests and
    /// debugging.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated validity constraint.
    pub fn validate(&self, m: &Mapping) -> Result<(), String> {
        let p = &self.problem;
        let d = p.num_dims();
        let t = p.num_tensors();
        if m.tiles.len() != ONCHIP_LEVELS || m.tiles.iter().any(|v| v.len() != d) {
            return Err(format!("tiles must be {ONCHIP_LEVELS} levels x {d} dims"));
        }
        if m.parallel.len() != d {
            return Err(format!("parallel must have {d} entries"));
        }
        if m.loop_orders.len() != ORDER_LEVELS || m.loop_orders.iter().any(|v| v.len() != d) {
            return Err(format!(
                "loop_orders must be {ORDER_LEVELS} levels x {d} dims"
            ));
        }
        if m.buffer_alloc.len() != ONCHIP_LEVELS || m.buffer_alloc.iter().any(|v| v.len() != t) {
            return Err(format!(
                "buffer_alloc must be {ONCHIP_LEVELS} levels x {t} tensors"
            ));
        }

        for dim in p.dims() {
            let size = p.dim_size(dim);
            let t1 = m.tiles[0][dim.0];
            let t2 = m.tiles[1][dim.0];
            let par = m.parallel[dim.0];
            if t1 == 0 || t2 == 0 || par == 0 {
                return Err(format!("zero tile/parallelism for dim {dim}"));
            }
            if t1 > size || t2 > size {
                return Err(format!(
                    "tile larger than dimension {dim} (t1={t1}, t2={t2}, size={size})"
                ));
            }
            if par > size {
                return Err(format!("parallelism {par} exceeds dim {dim} size {size}"));
            }
            if t1.saturating_mul(par) > size {
                return Err(format!(
                    "spatial tile t1*par = {} exceeds dim {dim} size {size}",
                    t1 * par
                ));
            }
            if t2 < t1 {
                return Err(format!("L2 tile {t2} smaller than L1 tile {t1} ({dim})"));
            }
        }

        if m.active_pes() > self.constraints.num_pes {
            return Err(format!(
                "parallelism product {} exceeds {} PEs",
                m.active_pes(),
                self.constraints.num_pes
            ));
        }

        for lv in 0..ORDER_LEVELS {
            if d <= 128 {
                // Bitmask permutation check: keeps the hot validate path
                // allocation-free for every realistic problem.
                let mut seen: u128 = 0;
                for &i in &m.loop_orders[lv] {
                    if i >= d || seen & (1u128 << i) != 0 {
                        return Err(format!("loop order at level {lv} is not a permutation"));
                    }
                    seen |= 1u128 << i;
                }
            } else {
                let mut seen = vec![false; d];
                for &i in &m.loop_orders[lv] {
                    if i >= d || seen[i] {
                        return Err(format!("loop order at level {lv} is not a permutation"));
                    }
                    seen[i] = true;
                }
            }
        }

        for lv in 0..ONCHIP_LEVELS {
            let sum: f64 = m.buffer_alloc[lv].iter().sum();
            if m.buffer_alloc[lv].iter().any(|&f| !(f > 0.0 && f <= 1.0)) {
                return Err(format!("buffer fractions at level {lv} out of (0,1]"));
            }
            if sum > 1.0 + 1e-9 {
                return Err(format!("buffer fractions at level {lv} sum to {sum} > 1"));
            }
        }

        // Capacity checks: each tensor's tile must fit within its allocation.
        for (lv, level) in [Level::L1, Level::L2].into_iter().enumerate() {
            let Some(cap) = self.constraints.capacity_words(level) else {
                continue; // only on-chip levels carry a capacity bound
            };
            for ti in 0..t {
                let fp = match level {
                    Level::L1 => m.l1_footprint(p, ti),
                    Level::L2 => m.l2_footprint(p, ti),
                    // mm-lint: allow(panic): the enclosing loop iterates
                    // on-chip levels only.
                    Level::Dram => unreachable!(),
                };
                let allowed =
                    (m.buffer_alloc[lv][ti] * cap as f64 + ALLOC_EPS_WORDS).floor() as u64;
                if fp > allowed {
                    return Err(format!(
                        "tensor {} footprint {fp} exceeds allocation {allowed} at {level}",
                        p.tensors[ti].name
                    ));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sampling (getMapping)
    // ------------------------------------------------------------------

    /// `getMapping` — draw a uniformly random *valid* mapping (Section 4.1.1,
    /// question 2). Sampling is log-uniform over tile sizes and parallelism
    /// followed by a deterministic capacity repair, so every call returns a
    /// valid mapping.
    pub fn random_mapping<R: Rng + ?Sized>(&self, rng: &mut R) -> Mapping {
        let mut m = Mapping::minimal(&self.problem);
        self.sample_into(&mut m, rng);
        m
    }

    /// In-place form of [`random_mapping`](Self::random_mapping): rewrites
    /// `out` to a fresh random valid mapping, reusing its allocations. Draws
    /// the same RNG stream and produces the same mapping as `random_mapping`.
    pub fn random_mapping_into<R: Rng + ?Sized>(&self, out: &mut Mapping, rng: &mut R) {
        out.reset_minimal(&self.problem);
        self.sample_into(out, rng);
    }

    /// Shared sampling body: `m` must be in the [`Mapping::minimal`] state.
    fn sample_into<R: Rng + ?Sized>(&self, m: &mut Mapping, rng: &mut R) {
        let p = &self.problem;
        let d = p.num_dims();
        let t = p.num_tensors();

        // Parallelism: repeatedly assign a random factor to a random dim
        // while staying under the PE budget.
        let mut pe_budget = self.constraints.num_pes;
        for _ in 0..d * 2 {
            if pe_budget <= 1 {
                break;
            }
            let dim = DimId(rng.gen_range(0..d));
            let max_par = p.dim_size(dim).min(pe_budget);
            if max_par <= 1 {
                continue;
            }
            let f = log_uniform(rng, 1, max_par);
            let newp = (m.parallel[dim.0] * f).min(p.dim_size(dim));
            m.parallel[dim.0] = newp.max(1);
            pe_budget = self.constraints.num_pes / m.active_pes().max(1);
        }

        // Tile sizes: log-uniform L1 tile, then L2 tile between the spatial
        // tile and the full dimension.
        for dim in p.dims() {
            let size = p.dim_size(dim);
            let par = m.parallel[dim.0].max(1);
            let t1 = log_uniform(rng, 1, (size / par).max(1));
            let spatial = (t1 * par).min(size);
            let t2 = log_uniform(rng, spatial.max(1), size);
            m.tiles[0][dim.0] = t1;
            m.tiles[1][dim.0] = t2.max(spatial).max(t1);
        }

        // Loop orders: independent random permutations per level. The shuffle
        // draws depend only on the length, so rebuilding the identity
        // permutation in place keeps the RNG stream identical to the old
        // collect-then-shuffle form.
        for lv in 0..ORDER_LEVELS {
            let order = &mut m.loop_orders[lv];
            order.clear();
            order.extend(0..d);
            order.shuffle(rng);
        }

        // Buffer allocation: random positive fractions normalized to sum <= 1.
        for lv in 0..ONCHIP_LEVELS {
            let row = &mut m.buffer_alloc[lv];
            row.clear();
            row.resize(t, 0.0);
            for r in row.iter_mut() {
                *r = rng.gen_range(0.05..1.0);
            }
            let total: f64 = row.iter().sum();
            let scale = rng.gen_range(0.85..1.0) / total;
            for r in row.iter_mut() {
                *r = (*r * scale).clamp(1e-3, 1.0);
            }
        }

        self.repair(m);
        debug_assert!(self.is_member(m), "{:?}", self.validate(m));
    }

    /// Deterministically repair a structurally well-formed mapping so that it
    /// satisfies tile-ordering, parallelism, and capacity constraints. Used
    /// by both sampling and projection.
    pub fn repair(&self, m: &mut Mapping) {
        let p = &self.problem;
        let d = p.num_dims();
        let t = p.num_tensors();

        // Clamp basic ranges.
        for dim in p.dims() {
            let size = p.dim_size(dim);
            m.parallel[dim.0] = m.parallel[dim.0].clamp(1, size);
            m.tiles[0][dim.0] = m.tiles[0][dim.0].clamp(1, size);
            m.tiles[1][dim.0] = m.tiles[1][dim.0].clamp(1, size);
        }

        // Enforce the PE budget by shrinking the largest parallelism factors.
        while m.active_pes() > self.constraints.num_pes {
            let Some(worst) = (0..d).max_by_key(|&i| m.parallel[i]) else {
                break; // zero-dimensional problems have nothing to shrink
            };
            m.parallel[worst] = (m.parallel[worst] / 2).max(1);
            if m.parallel.iter().all(|&x| x == 1) {
                break;
            }
        }

        // Spatial tile must fit within the dimension; L2 tile must cover the
        // spatial tile and dominate the L1 tile.
        for dim in p.dims() {
            let size = p.dim_size(dim);
            while m.tiles[0][dim.0].saturating_mul(m.parallel[dim.0]) > size {
                if m.parallel[dim.0] > 1 {
                    m.parallel[dim.0] = (m.parallel[dim.0] / 2).max(1);
                } else {
                    m.tiles[0][dim.0] = (m.tiles[0][dim.0] / 2).max(1);
                }
            }
            let spatial = (m.tiles[0][dim.0] * m.parallel[dim.0]).min(size);
            if m.tiles[1][dim.0] < spatial {
                m.tiles[1][dim.0] = spatial;
            }
            m.tiles[1][dim.0] = m.tiles[1][dim.0].clamp(m.tiles[0][dim.0], size);
        }

        // Normalize buffer fractions.
        for lv in 0..ONCHIP_LEVELS {
            for f in &mut m.buffer_alloc[lv] {
                if !f.is_finite() || *f <= 0.0 {
                    *f = 1e-3;
                }
                *f = f.min(1.0);
            }
            let sum: f64 = m.buffer_alloc[lv].iter().sum();
            if sum > 1.0 {
                for f in &mut m.buffer_alloc[lv] {
                    *f /= sum;
                }
            }
        }

        // Capacity repair: grow allocations toward the free budget first,
        // then shrink tiles until everything fits.
        for (lv, level) in [Level::L1, Level::L2].into_iter().enumerate() {
            let Some(cap) = self.constraints.capacity_words(level) else {
                continue; // only on-chip levels carry a capacity bound
            };
            // Footprints are recomputed on demand instead of collected into a
            // Vec: `footprint` is a short fold and this loop sits on the
            // proposal hot path, which must stay allocation-free.
            let fp_of = |m: &Mapping, ti: usize| match level {
                Level::L1 => m.l1_footprint(p, ti),
                Level::L2 => m.l2_footprint(p, ti),
                // mm-lint: allow(panic): the enclosing loop iterates
                // on-chip levels only.
                Level::Dram => unreachable!(),
            };
            for _iter in 0..256 {
                // One pass: total footprint plus the largest tensor, keeping
                // `max_by_key`'s last-max tie-breaking (`>=`).
                let mut total_fp: u64 = 0;
                let mut worst: Option<usize> = None;
                let mut worst_fp: u64 = 0;
                for ti in 0..t {
                    let f = fp_of(m, ti);
                    total_fp += f;
                    if worst.is_none() || f >= worst_fp {
                        worst = Some(ti);
                        worst_fp = f;
                    }
                }
                // Feasible when the combined working set fits in the level.
                if total_fp <= cap {
                    let insufficient = (0..t).any(|ti| {
                        (m.buffer_alloc[lv][ti] * cap as f64 + ALLOC_EPS_WORDS).floor()
                            < fp_of(m, ti) as f64
                    });
                    if insufficient {
                        // Redistribute: each tensor gets exactly what it needs
                        // plus a proportional share of the remaining capacity.
                        let slack = (cap - total_fp) as f64;
                        for ti in 0..t {
                            let fp = fp_of(m, ti);
                            let share = if total_fp > 0 {
                                slack * fp as f64 / total_fp as f64
                            } else {
                                slack / t as f64
                            };
                            m.buffer_alloc[lv][ti] =
                                ((fp as f64 + share) / cap as f64).clamp(1e-6, 1.0);
                        }
                    }
                    break;
                }
                // Does not fit at all: shrink the tile dimension contributing
                // the most to the largest tensor.
                let Some(worst_tensor) = worst else {
                    break; // no tensors: nothing occupies the buffer
                };
                let mut dims_stack = [DimId(0); DIM_STACK];
                let dims_overflow;
                let dims: &[DimId] = if d <= DIM_STACK {
                    let n = p.tensors[worst_tensor].relevant_dims_into(&mut dims_stack);
                    &dims_stack[..n]
                } else {
                    // Cold fallback for pathological dimension counts.
                    dims_overflow = p.tensors[worst_tensor].relevant_dims();
                    &dims_overflow
                };
                let target_dim = dims
                    .iter()
                    .copied()
                    .max_by_key(|&dd| match level {
                        Level::L1 => m.tiles[0][dd.0],
                        _ => m.tiles[1][dd.0],
                    })
                    .unwrap_or(DimId(0));
                match level {
                    Level::L1 => {
                        let cur = m.tiles[0][target_dim.0];
                        if cur > 1 {
                            m.tiles[0][target_dim.0] = cur / 2;
                        } else if m.parallel[target_dim.0] > 1 {
                            m.parallel[target_dim.0] /= 2;
                        } else {
                            // Shrink some other dim of this tensor.
                            let mut shrunk = false;
                            for &dd in dims {
                                if m.tiles[0][dd.0] > 1 {
                                    m.tiles[0][dd.0] /= 2;
                                    shrunk = true;
                                    break;
                                }
                            }
                            if !shrunk {
                                break;
                            }
                        }
                        // Keep L2 >= spatial invariant.
                        let size = p.dim_size(target_dim);
                        let spatial =
                            (m.tiles[0][target_dim.0] * m.parallel[target_dim.0]).min(size);
                        if m.tiles[1][target_dim.0] < spatial {
                            m.tiles[1][target_dim.0] = spatial;
                        }
                    }
                    Level::L2 => {
                        // Prefer shrinking whichever L2 tile (of any
                        // dimension) has slack over its spatial tile: that
                        // never touches the (already-valid) L1 tiling or
                        // parallelism, which keeps projection idempotent on
                        // valid mappings.
                        let slack_dim = p
                            .dims()
                            .filter(|&dd| {
                                let sp = m.tiles[0][dd.0] * m.parallel[dd.0];
                                m.tiles[1][dd.0] > sp.max(1)
                            })
                            .max_by_key(|&dd| {
                                let sp = m.tiles[0][dd.0] * m.parallel[dd.0];
                                m.tiles[1][dd.0] - sp.max(1)
                            });
                        if let Some(dd) = slack_dim {
                            let sp = m.tiles[0][dd.0] * m.parallel[dd.0];
                            m.tiles[1][dd.0] = (m.tiles[1][dd.0] / 2).max(sp).max(1);
                        } else if m.tiles[0][target_dim.0] > 1 {
                            m.tiles[0][target_dim.0] /= 2;
                            let sp = m.tiles[0][target_dim.0] * m.parallel[target_dim.0];
                            m.tiles[1][target_dim.0] =
                                m.tiles[1][target_dim.0].min(sp.max(1)).max(1);
                        } else if m.parallel[target_dim.0] > 1 {
                            m.parallel[target_dim.0] /= 2;
                        } else {
                            let mut shrunk = false;
                            for &dd in dims {
                                if m.tiles[0][dd.0] > 1 {
                                    m.tiles[0][dd.0] /= 2;
                                    shrunk = true;
                                    break;
                                } else if m.parallel[dd.0] > 1 {
                                    m.parallel[dd.0] /= 2;
                                    shrunk = true;
                                    break;
                                }
                            }
                            if !shrunk {
                                break;
                            }
                        }
                    }
                    // mm-lint: allow(panic): the enclosing loop iterates
                    // on-chip levels only.
                    Level::Dram => unreachable!(),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Local-move operators for black-box searchers
    // ------------------------------------------------------------------

    /// Produce a neighbouring mapping by perturbing one randomly chosen
    /// programmable attribute (used by Simulated Annealing and as GA's
    /// mutation kernel). The result is always valid.
    pub fn neighbor<R: Rng + ?Sized>(&self, m: &Mapping, rng: &mut R) -> Mapping {
        let mut out = m.clone();
        self.mutate_in_place(&mut out, rng);
        self.repair(&mut out);
        out
    }

    /// In-place form of [`neighbor`](Self::neighbor): rewrites `out` to a
    /// valid neighbour of `current`, reusing `out`'s allocations. Draws the
    /// same RNG stream and produces the same mapping as `neighbor`.
    pub fn neighbor_into<R: Rng + ?Sized>(
        &self,
        current: &Mapping,
        out: &mut Mapping,
        rng: &mut R,
    ) {
        out.clone_from(current);
        self.mutate_in_place(out, rng);
        self.repair(out);
    }

    /// Mutate one attribute in place (may leave the mapping invalid until
    /// [`repair`](Self::repair) is called).
    pub fn mutate_in_place<R: Rng + ?Sized>(&self, m: &mut Mapping, rng: &mut R) {
        let p = &self.problem;
        let d = p.num_dims();
        let t = p.num_tensors();
        match rng.gen_range(0..5) {
            0 => {
                // Perturb an L1 tile size: multiply or divide by 2, or resample.
                let dim = rng.gen_range(0..d);
                let size = p.dim_sizes[dim];
                m.tiles[0][dim] = perturb_extent(rng, m.tiles[0][dim], size);
            }
            1 => {
                // Perturb an L2 tile size.
                let dim = rng.gen_range(0..d);
                let size = p.dim_sizes[dim];
                m.tiles[1][dim] = perturb_extent(rng, m.tiles[1][dim], size);
            }
            2 => {
                // Perturb parallelism.
                let dim = rng.gen_range(0..d);
                let size = p.dim_sizes[dim];
                m.parallel[dim] =
                    perturb_extent(rng, m.parallel[dim], size.min(self.constraints.num_pes));
            }
            3 => {
                // Swap two loops in a random level's order.
                let lv = rng.gen_range(0..ORDER_LEVELS);
                if d >= 2 {
                    let a = rng.gen_range(0..d);
                    let b = rng.gen_range(0..d);
                    m.loop_orders[lv].swap(a, b);
                }
            }
            _ => {
                // Perturb a buffer allocation fraction.
                let lv = rng.gen_range(0..ONCHIP_LEVELS);
                let ti = rng.gen_range(0..t);
                let delta = rng.gen_range(-0.2..0.2);
                m.buffer_alloc[lv][ti] = (m.buffer_alloc[lv][ti] + delta).clamp(1e-3, 1.0);
            }
        }
    }

    /// Uniform crossover of two parent mappings (used by the Genetic
    /// Algorithm baseline): each programmable attribute is inherited from a
    /// randomly chosen parent. The child is repaired to validity.
    pub fn crossover<R: Rng + ?Sized>(&self, a: &Mapping, b: &Mapping, rng: &mut R) -> Mapping {
        let p = &self.problem;
        let d = p.num_dims();
        let t = p.num_tensors();
        let mut child = a.clone();
        for dim in 0..d {
            if rng.gen_bool(0.5) {
                child.tiles[0][dim] = b.tiles[0][dim];
            }
            if rng.gen_bool(0.5) {
                child.tiles[1][dim] = b.tiles[1][dim];
            }
            if rng.gen_bool(0.5) {
                child.parallel[dim] = b.parallel[dim];
            }
        }
        for lv in 0..ORDER_LEVELS {
            if rng.gen_bool(0.5) {
                child.loop_orders[lv] = b.loop_orders[lv].clone();
            }
        }
        for lv in 0..ONCHIP_LEVELS {
            for ti in 0..t {
                if rng.gen_bool(0.5) {
                    child.buffer_alloc[lv][ti] = b.buffer_alloc[lv][ti];
                }
            }
        }
        self.repair(&mut child);
        child
    }

    /// In-place form of [`crossover`](Self::crossover): writes the child into
    /// `out`, reusing its existing allocations. Draws from `rng` in exactly
    /// the same order, so with equal RNG state the child is identical.
    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    pub fn crossover_into<R: Rng + ?Sized>(
        &self,
        a: &Mapping,
        b: &Mapping,
        out: &mut Mapping,
        rng: &mut R,
    ) {
        let p = &self.problem;
        let d = p.num_dims();
        let t = p.num_tensors();
        out.clone_from(a);
        for dim in 0..d {
            if rng.gen_bool(0.5) {
                out.tiles[0][dim] = b.tiles[0][dim];
            }
            if rng.gen_bool(0.5) {
                out.tiles[1][dim] = b.tiles[1][dim];
            }
            if rng.gen_bool(0.5) {
                out.parallel[dim] = b.parallel[dim];
            }
        }
        for lv in 0..ORDER_LEVELS {
            if rng.gen_bool(0.5) {
                out.loop_orders[lv].clone_from(&b.loop_orders[lv]);
            }
        }
        for lv in 0..ONCHIP_LEVELS {
            for ti in 0..t {
                if rng.gen_bool(0.5) {
                    out.buffer_alloc[lv][ti] = b.buffer_alloc[lv][ti];
                }
            }
        }
        self.repair(out);
    }

    /// Order-of-magnitude estimate of `log10 |M|`, the size of the mapping
    /// space (Section 3.1 quotes ≈ 10^25 for ResNet Conv_4).
    pub fn log10_size_estimate(&self) -> f64 {
        let p = &self.problem;
        let mut log = 0.0f64;
        for dim in p.dims() {
            let s = p.dim_size(dim) as f64;
            // Two tile levels plus a parallelism factor per dimension.
            log += 3.0 * s.log10();
        }
        // Loop orders: (d!)^3.
        let d = p.num_dims() as f64;
        let mut logfact = 0.0;
        for i in 2..=(p.num_dims()) {
            logfact += (i as f64).log10();
        }
        log += ORDER_LEVELS as f64 * logfact;
        // Buffer allocations at bank granularity.
        log += p.num_tensors() as f64
            * ((self.constraints.l1_banks as f64).log10()
                + (self.constraints.l2_banks as f64).log10());
        let _ = d;
        log
    }
}

/// Sample an integer in `[lo, hi]` approximately log-uniformly.
fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    let lo = lo.max(1);
    if hi <= lo {
        return lo;
    }
    let llo = (lo as f64).ln();
    let lhi = (hi as f64).ln();
    let v = rng.gen_range(llo..=lhi).exp().round() as u64;
    v.clamp(lo, hi)
}

/// Perturb an extent: multiply/divide by 2 or resample log-uniformly, staying
/// within `[1, max]`.
fn perturb_extent<R: Rng + ?Sized>(rng: &mut R, cur: u64, max: u64) -> u64 {
    match rng.gen_range(0..3) {
        0 => (cur.saturating_mul(2)).clamp(1, max.max(1)),
        1 => (cur / 2).clamp(1, max.max(1)),
        _ => log_uniform(rng, 1, max.max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> MapSpace {
        MapSpace::new(ProblemSpec::conv1d(128, 7), MappingConstraints::example())
    }

    #[test]
    fn minimal_mapping_is_member() {
        let s = space();
        let m = Mapping::minimal(s.problem());
        assert!(s.is_member(&m), "{:?}", s.validate(&m));
    }

    #[test]
    fn random_mappings_are_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let m = s.random_mapping(&mut rng);
            assert!(s.is_member(&m), "{:?}", s.validate(&m));
        }
    }

    #[test]
    fn random_mappings_are_diverse() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        let a = s.random_mapping(&mut rng);
        let b = s.random_mapping(&mut rng);
        assert_ne!(a, b, "two random mappings should almost surely differ");
    }

    #[test]
    fn neighbor_stays_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = s.random_mapping(&mut rng);
        for _ in 0..100 {
            m = s.neighbor(&m, &mut rng);
            assert!(s.is_member(&m), "{:?}", s.validate(&m));
        }
    }

    #[test]
    fn crossover_stays_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let a = s.random_mapping(&mut rng);
        let b = s.random_mapping(&mut rng);
        for _ in 0..50 {
            let c = s.crossover(&a, &b, &mut rng);
            assert!(s.is_member(&c), "{:?}", s.validate(&c));
        }
    }

    #[test]
    fn into_forms_match_allocating_forms() {
        let s = space();
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let mut sample_buf = Mapping::default();
        let mut neigh_buf = Mapping::default();
        for _ in 0..50 {
            let a = s.random_mapping(&mut rng_a);
            s.random_mapping_into(&mut sample_buf, &mut rng_b);
            assert_eq!(a, sample_buf, "random_mapping_into diverged");
            let n = s.neighbor(&a, &mut rng_a);
            s.neighbor_into(&a, &mut neigh_buf, &mut rng_b);
            assert_eq!(n, neigh_buf, "neighbor_into diverged");
            let c = s.crossover(&a, &n, &mut rng_a);
            let mut cross_buf = Mapping::default();
            s.crossover_into(&a, &n, &mut cross_buf, &mut rng_b);
            assert_eq!(c, cross_buf, "crossover_into diverged");
        }
    }

    #[test]
    fn validity_rejects_oversized_tiles() {
        let s = space();
        let mut m = Mapping::minimal(s.problem());
        m.tiles[0][0] = 10_000;
        assert!(!s.is_member(&m));
    }

    #[test]
    fn validity_rejects_excess_parallelism() {
        let s = space();
        let mut m = Mapping::minimal(s.problem());
        m.parallel[0] = 64; // > 16 PEs in the example config
        m.tiles[1][0] = 64;
        assert!(!s.is_member(&m));
    }

    #[test]
    fn validity_rejects_bad_loop_order() {
        let s = space();
        let mut m = Mapping::minimal(s.problem());
        m.loop_orders[0] = vec![0, 0];
        assert!(!s.is_member(&m));
    }

    #[test]
    fn validity_rejects_overfull_buffer_fractions() {
        let s = space();
        let mut m = Mapping::minimal(s.problem());
        m.buffer_alloc[0] = vec![0.9, 0.9, 0.9];
        assert!(!s.is_member(&m));
    }

    #[test]
    fn validity_rejects_capacity_overflow() {
        let s = space();
        let mut m = Mapping::minimal(s.problem());
        // L1 has 1024 words; a 1000-wide output tile with a tiny allocation
        // cannot fit.
        m.tiles[0][0] = 120;
        m.tiles[1][0] = 122;
        m.buffer_alloc[0] = vec![0.01, 0.01, 0.01];
        assert!(!s.is_member(&m));
    }

    #[test]
    fn repair_fixes_capacity_overflow() {
        let s = space();
        let mut m = Mapping::minimal(s.problem());
        m.tiles[0] = vec![122, 7];
        m.tiles[1] = vec![122, 7];
        m.buffer_alloc[0] = vec![0.001, 0.001, 0.001];
        s.repair(&mut m);
        assert!(s.is_member(&m), "{:?}", s.validate(&m));
    }

    #[test]
    fn repair_respects_pe_budget() {
        let s = space();
        let mut m = Mapping::minimal(s.problem());
        m.parallel = vec![16, 7];
        s.repair(&mut m);
        assert!(m.active_pes() <= s.constraints().num_pes);
        assert!(s.is_member(&m), "{:?}", s.validate(&m));
    }

    #[test]
    fn paper_accelerator_dimensions() {
        let c = MappingConstraints::paper_accelerator();
        assert_eq!(c.num_pes, 256);
        assert_eq!(c.l1_capacity_words, 16 * 1024);
        assert_eq!(c.l2_capacity_words, 128 * 1024);
    }

    #[test]
    fn size_estimate_is_positive_and_monotone() {
        let small = MapSpace::new(ProblemSpec::conv1d(32, 3), MappingConstraints::example());
        let big = MapSpace::new(ProblemSpec::conv1d(4096, 9), MappingConstraints::example());
        assert!(small.log10_size_estimate() > 0.0);
        assert!(big.log10_size_estimate() > small.log10_size_estimate());
    }

    #[test]
    fn log_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = log_uniform(&mut rng, 1, 100);
            assert!((1..=100).contains(&v));
        }
        assert_eq!(log_uniform(&mut rng, 5, 5), 5);
        assert_eq!(log_uniform(&mut rng, 9, 3), 9);
    }
}
