//! Projection of arbitrary real vectors onto the valid map space
//! (`getProjection`, Appendix B).
//!
//! Projected Gradient Descent (Section 4.2) repeatedly nudges a continuous
//! mapping vector along the surrogate's gradient; after each step the vector
//! generally no longer corresponds to a valid mapping (tile sizes are
//! fractional, the parallelism product exceeds the PE count, tensor tiles no
//! longer fit in their buffer allocation, …). [`MapSpace::project`] rounds
//! every value to its attribute domain and then applies the deterministic
//! capacity repair, yielding the nearest valid mapping in the same sense used
//! by the reference implementation.

use crate::encode::Encoding;
use crate::mapping::Mapping;
use crate::space::MapSpace;
use crate::MapSpaceError;

impl MapSpace {
    /// Project the *mapping portion* of a flat vector (see
    /// [`Encoding::mapping_len`]) onto the valid map space, returning a valid
    /// [`Mapping`].
    ///
    /// This is `getProjection` from the Mind Mappings API: decode with
    /// rounding/clamping, then repair tile ordering, the PE budget, and buffer
    /// capacity violations.
    ///
    /// # Errors
    ///
    /// Returns [`MapSpaceError::BadVectorLength`] if the vector length does
    /// not match the encoding for this problem.
    pub fn project(&self, mapping_values: &[f32]) -> Result<Mapping, MapSpaceError> {
        let enc = Encoding::for_problem(self.problem());
        let mut m = enc.decode_mapping(self.problem(), mapping_values)?;
        self.repair(&mut m);
        debug_assert!(self.is_member(&m), "{:?}", self.validate(&m));
        Ok(m)
    }

    /// Project an existing (possibly invalid) mapping onto the valid space.
    pub fn project_mapping(&self, m: &Mapping) -> Mapping {
        let mut out = m.clone();
        self.repair(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemSpec;
    use crate::space::MappingConstraints;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn space() -> MapSpace {
        MapSpace::new(ProblemSpec::conv1d(256, 9), MappingConstraints::example())
    }

    #[test]
    fn projection_of_random_noise_is_valid() {
        let s = space();
        let enc = Encoding::for_problem(s.problem());
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let v: Vec<f32> = (0..enc.mapping_len())
                .map(|_| rng.gen_range(-50.0..500.0))
                .collect();
            let m = s.project(&v).unwrap();
            assert!(s.is_member(&m), "{:?}", s.validate(&m));
        }
    }

    #[test]
    fn projection_is_idempotent_on_valid_mappings() {
        let s = space();
        let enc = Encoding::for_problem(s.problem());
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let m = s.random_mapping(&mut rng);
            let v = enc.encode_mapping(s.problem(), &m);
            let m2 = s.project(&v).unwrap();
            // A valid mapping re-projected must stay valid and keep its
            // discrete structure (tiles / parallelism / orders).
            assert!(s.is_member(&m2));
            assert_eq!(m.tiles[0], m2.tiles[0]);
            assert_eq!(m.parallel, m2.parallel);
            assert_eq!(m.loop_orders, m2.loop_orders);
        }
    }

    #[test]
    fn projection_rejects_wrong_length() {
        let s = space();
        assert!(s.project(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn project_mapping_repairs_invalid_input() {
        let s = space();
        let mut m = Mapping::minimal(s.problem());
        m.tiles[0][0] = 10_000;
        m.parallel[0] = 10_000;
        let fixed = s.project_mapping(&m);
        assert!(s.is_member(&fixed), "{:?}", s.validate(&fixed));
    }
}
