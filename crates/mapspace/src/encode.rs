// mm-lint: identity — this file feeds canonical output; the determinism rule applies.
//! Flat-vector encoding of mappings (Section 4.1.2 / 5.5).
//!
//! The surrogate model consumes a fixed-length vector of floats per mapping:
//! a problem-id prefix (the dimension sizes) followed by the flattened
//! programmable attributes. For the CNN-Layer problems this yields 62 values
//! and for MTTKRP 40 values, exactly as reported in Section 5.5:
//!
//! | segment | CNN (7 dims, 3 tensors) | MTTKRP (4 dims, 4 tensors) |
//! |---|---|---|
//! | problem id | 7 | 4 |
//! | tile factors (3 levels × dims) | 21 | 12 |
//! | parallelism (dims) | 7 | 4 |
//! | loop order (3 levels × dims) | 21 | 12 |
//! | buffer allocation (2 levels × tensors) | 6 | 8 |
//! | **total** | **62** | **40** |

use serde::{Deserialize, Serialize};

use crate::mapping::{Level, Mapping, ONCHIP_LEVELS, ORDER_LEVELS};
use crate::problem::ProblemSpec;
use crate::MapSpaceError;

/// Describes the layout of the flat mapping vector for a problem family with
/// a fixed number of dimensions and tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encoding {
    /// Number of problem dimensions.
    pub num_dims: usize,
    /// Number of tensors.
    pub num_tensors: usize,
}

impl Encoding {
    /// Encoding for the given problem.
    pub fn for_problem(problem: &ProblemSpec) -> Self {
        Encoding {
            num_dims: problem.num_dims(),
            num_tensors: problem.num_tensors(),
        }
    }

    /// Length of the problem-id prefix.
    #[inline]
    pub fn pid_len(&self) -> usize {
        self.num_dims
    }

    /// Length of the mapping portion (everything after the problem id).
    pub fn mapping_len(&self) -> usize {
        // tiles (3 levels) + parallelism + loop orders (3 levels) + alloc (2 levels)
        ORDER_LEVELS * self.num_dims
            + self.num_dims
            + ORDER_LEVELS * self.num_dims
            + ONCHIP_LEVELS * self.num_tensors
    }

    /// Total vector length (problem id + mapping).
    pub fn total_len(&self) -> usize {
        self.pid_len() + self.mapping_len()
    }

    /// Offset of the mapping portion within the full vector.
    #[inline]
    pub fn mapping_offset(&self) -> usize {
        self.pid_len()
    }

    /// Encode a mapping (together with its problem id) into a flat vector of
    /// length [`total_len`](Self::total_len).
    ///
    /// Tile values are encoded as the per-level *factors* of the paper: the
    /// L1 tile, the L2-over-spatial factor, and the DRAM-over-L2 factor.
    /// Loop orders are encoded as each dimension's position within the level's
    /// order; buffer allocations as fractions in `(0, 1]`.
    pub fn encode(&self, problem: &ProblemSpec, m: &Mapping) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.total_len());
        v.extend(problem.problem_id());
        self.encode_mapping_into(problem, m, &mut v);
        v
    }

    /// Encode only the mapping portion (no problem-id prefix).
    pub fn encode_mapping(&self, problem: &ProblemSpec, m: &Mapping) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.mapping_len());
        self.encode_mapping_into(problem, m, &mut v);
        v
    }

    fn encode_mapping_into(&self, problem: &ProblemSpec, m: &Mapping, v: &mut Vec<f32>) {
        // Tile factors for L1, L2, DRAM.
        for level in Level::ALL {
            for d in problem.dims() {
                v.push(m.trip_count(problem, level, d) as f32);
            }
        }
        // Parallelism.
        for d in problem.dims() {
            v.push(m.parallelism(d) as f32);
        }
        // Loop orders: position of each dimension within the level's order.
        for level in Level::ALL {
            let order = m.order(level);
            for d in 0..self.num_dims {
                let pos = order.iter().position(|&x| x == d).unwrap_or(d);
                v.push(pos as f32);
            }
        }
        // Buffer allocation fractions.
        for lv in 0..ONCHIP_LEVELS {
            for t in 0..self.num_tensors {
                v.push(m.buffer_alloc[lv][t] as f32);
            }
        }
    }

    /// Decode the mapping portion of a flat vector back into a (possibly
    /// invalid) [`Mapping`]. Values are rounded/clamped to their attribute
    /// domains but capacity constraints are **not** enforced; follow with
    /// [`MapSpace::repair`](crate::space::MapSpace::repair) or
    /// [`MapSpace::project`](crate::space::MapSpace::project) for a valid
    /// mapping.
    ///
    /// # Errors
    ///
    /// Returns [`MapSpaceError::BadVectorLength`] if `mapping_values` does not
    /// have exactly [`mapping_len`](Self::mapping_len) entries.
    pub fn decode_mapping(
        &self,
        problem: &ProblemSpec,
        mapping_values: &[f32],
    ) -> Result<Mapping, MapSpaceError> {
        if mapping_values.len() != self.mapping_len() {
            return Err(MapSpaceError::BadVectorLength {
                expected: self.mapping_len(),
                actual: mapping_values.len(),
            });
        }
        let d = self.num_dims;
        let t = self.num_tensors;
        let mut m = Mapping::minimal(problem);
        let mut idx = 0;

        // Tile factors.
        let mut factors = vec![vec![1u64; d]; ORDER_LEVELS];
        for lvl in factors.iter_mut() {
            for item in lvl.iter_mut() {
                let f = mapping_values[idx];
                idx += 1;
                *item = round_positive(f);
            }
        }
        // Parallelism.
        let mut par = vec![1u64; d];
        for item in par.iter_mut() {
            *item = round_positive(mapping_values[idx]);
            idx += 1;
        }
        // Reconstruct absolute tiles: t1 = f1, spatial = t1*par,
        // t2 = spatial * f2 (clamped later by repair).
        for dim in 0..d {
            let size = problem.dim_sizes[dim];
            let t1 = factors[0][dim].clamp(1, size);
            let p = par[dim].clamp(1, size);
            let t2 = (t1 * p).saturating_mul(factors[1][dim]).clamp(t1, size);
            m.tiles[0][dim] = t1;
            m.tiles[1][dim] = t2;
            m.parallel[dim] = p;
        }

        // Loop orders: argsort of the position values.
        for lv in 0..ORDER_LEVELS {
            let keys: Vec<f32> = (0..d).map(|i| mapping_values[idx + i]).collect();
            idx += d;
            let mut dims: Vec<usize> = (0..d).collect();
            dims.sort_by(|&a, &b| {
                keys[a]
                    .partial_cmp(&keys[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            m.loop_orders[lv] = dims;
        }

        // Buffer allocation fractions.
        for lv in 0..ONCHIP_LEVELS {
            for ti in 0..t {
                let f = mapping_values[idx] as f64;
                idx += 1;
                m.buffer_alloc[lv][ti] = if f.is_finite() {
                    f.clamp(1e-3, 1.0)
                } else {
                    1e-3
                };
            }
        }
        debug_assert_eq!(idx, self.mapping_len());
        Ok(m)
    }
}

fn round_positive(f: f32) -> u64 {
    if !f.is_finite() || f < 1.0 {
        1
    } else {
        f.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{MapSpace, MappingConstraints};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> MapSpace {
        MapSpace::new(ProblemSpec::conv1d(128, 7), MappingConstraints::example())
    }

    #[test]
    fn encoding_lengths_match_paper_for_cnn_and_mttkrp_shapes() {
        // CNN-Layer: 7 dims, 3 tensors -> 62 values.
        let cnn = Encoding {
            num_dims: 7,
            num_tensors: 3,
        };
        assert_eq!(cnn.total_len(), 62);
        // MTTKRP: 4 dims, 4 tensors -> 40 values.
        let mttkrp = Encoding {
            num_dims: 4,
            num_tensors: 4,
        };
        assert_eq!(mttkrp.total_len(), 40);
    }

    #[test]
    fn encode_has_declared_length() {
        let s = space();
        let enc = Encoding::for_problem(s.problem());
        let mut rng = StdRng::seed_from_u64(2);
        let m = s.random_mapping(&mut rng);
        let v = enc.encode(s.problem(), &m);
        assert_eq!(v.len(), enc.total_len());
        let vm = enc.encode_mapping(s.problem(), &m);
        assert_eq!(vm.len(), enc.mapping_len());
        assert_eq!(&v[enc.mapping_offset()..], &vm[..]);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_structure() {
        let s = space();
        let enc = Encoding::for_problem(s.problem());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let m = s.random_mapping(&mut rng);
            let v = enc.encode_mapping(s.problem(), &m);
            let m2 = enc.decode_mapping(s.problem(), &v).unwrap();
            // Loop orders and parallelism round-trip exactly.
            assert_eq!(m.loop_orders, m2.loop_orders);
            assert_eq!(m.parallel, m2.parallel);
            assert_eq!(m.tiles[0], m2.tiles[0]);
            // Buffer allocations round-trip within f32 precision.
            for lv in 0..2 {
                for t in 0..3 {
                    assert!((m.buffer_alloc[lv][t] - m2.buffer_alloc[lv][t]).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let s = space();
        let enc = Encoding::for_problem(s.problem());
        let err = enc.decode_mapping(s.problem(), &[0.0; 3]).unwrap_err();
        assert_eq!(
            err,
            MapSpaceError::BadVectorLength {
                expected: enc.mapping_len(),
                actual: 3
            }
        );
    }

    #[test]
    fn decode_clamps_garbage_values() {
        let s = space();
        let enc = Encoding::for_problem(s.problem());
        let v = vec![f32::NAN; enc.mapping_len()];
        let m = enc.decode_mapping(s.problem(), &v).unwrap();
        // Everything collapses to the minimal valid-ish structure.
        assert!(m.tiles[0].iter().all(|&t| t >= 1));
        assert!(m.buffer_alloc[0].iter().all(|&f| f > 0.0));
    }

    #[test]
    fn problem_id_prefix_matches_problem() {
        let s = space();
        let enc = Encoding::for_problem(s.problem());
        let m = Mapping::minimal(s.problem());
        let v = enc.encode(s.problem(), &m);
        assert_eq!(v[0], 122.0); // X = 128 - 7 + 1
        assert_eq!(v[1], 7.0); // R
    }
}
