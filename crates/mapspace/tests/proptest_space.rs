//! Property-based tests of the map-space invariants on randomly generated
//! problems and constraints (not just the paper's workloads).

use mm_mapspace::problem::{DimId, ProblemSpec, TensorDim, TensorKind, TensorSpec};
use mm_mapspace::{Encoding, MapSpace, Mapping, MappingConstraints, ShardAxisKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every non-empty subset of the shard-axis kinds (15 combinations), so the
/// partition invariants are proven for each axis alone *and* for every way
/// the mixed-radix product can be composed.
fn axis_subsets() -> Vec<Vec<ShardAxisKind>> {
    let all = ShardAxisKind::ALL;
    (1u32..(1 << all.len()))
        .map(|mask| {
            all.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, k)| *k)
                .collect()
        })
        .collect()
}

/// Build a random matrix-multiply-like problem: O[i,j] = Σ_k A[i,k] · B[k,j].
fn matmul_problem(i: u64, j: u64, k: u64) -> ProblemSpec {
    ProblemSpec::new(
        "prop-matmul",
        vec![("I", i), ("J", j), ("K", k)],
        vec![
            TensorSpec::new(
                "A",
                TensorKind::Input,
                vec![TensorDim::Single(DimId(0)), TensorDim::Single(DimId(2))],
            ),
            TensorSpec::new(
                "B",
                TensorKind::Input,
                vec![TensorDim::Single(DimId(2)), TensorDim::Single(DimId(1))],
            ),
            TensorSpec::new(
                "O",
                TensorKind::Output,
                vec![TensorDim::Single(DimId(0)), TensorDim::Single(DimId(1))],
            ),
        ],
    )
}

fn constraints(pes: u64, l1: u64, l2: u64) -> MappingConstraints {
    MappingConstraints {
        num_pes: pes,
        l1_capacity_words: l1,
        l2_capacity_words: l2,
        l1_banks: 8,
        l2_banks: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    /// Sampling always returns a valid member of the map space, for any
    /// problem shape and any (sane) accelerator constraints.
    #[test]
    fn random_mapping_is_always_valid(
        seed in 0u64..u64::MAX,
        i in 1u64..512,
        j in 1u64..512,
        k in 1u64..512,
        pes in 1u64..128,
        l1 in 64u64..4096,
        l2 in prop::sample::select(vec![1024u64, 8192, 65536]),
    ) {
        let problem = matmul_problem(i, j, k);
        let space = MapSpace::new(problem, constraints(pes, l1, l2));
        let mut rng = StdRng::seed_from_u64(seed);
        let m = space.random_mapping(&mut rng);
        prop_assert!(space.is_member(&m), "{:?}", space.validate(&m));
        prop_assert!(m.active_pes() <= pes);
    }

    /// Projection of arbitrary vectors always lands inside the map space,
    /// and projecting an already-valid mapping's encoding is idempotent on
    /// the discrete attributes.
    #[test]
    fn projection_is_total_and_idempotent(
        seed in 0u64..u64::MAX,
        i in 1u64..300,
        j in 1u64..300,
        k in 1u64..300,
        noise_scale in 1.0f32..500.0,
    ) {
        let problem = matmul_problem(i, j, k);
        let space = MapSpace::new(problem.clone(), MappingConstraints::example());
        let enc = Encoding::for_problem(&problem);
        let mut rng = StdRng::seed_from_u64(seed);

        use rand::Rng;
        let noise: Vec<f32> = (0..enc.mapping_len())
            .map(|_| rng.gen_range(-noise_scale..noise_scale))
            .collect();
        let projected = space.project(&noise).unwrap();
        prop_assert!(space.is_member(&projected));

        let valid = space.random_mapping(&mut rng);
        let reprojected = space.project(&enc.encode_mapping(&problem, &valid)).unwrap();
        prop_assert_eq!(&reprojected.tiles[0], &valid.tiles[0]);
        prop_assert_eq!(&reprojected.parallel, &valid.parallel);
        prop_assert_eq!(&reprojected.loop_orders, &valid.loop_orders);
    }

    /// The minimal mapping is valid for every problem/constraint pair whose
    /// L1 can hold at least one word per tensor.
    #[test]
    fn minimal_mapping_is_always_valid(
        i in 1u64..1000,
        j in 1u64..1000,
        k in 1u64..1000,
        pes in 1u64..512,
    ) {
        let problem = matmul_problem(i, j, k);
        let space = MapSpace::new(problem.clone(), constraints(pes, 256, 4096));
        let m = Mapping::minimal(&problem);
        prop_assert!(space.is_member(&m), "{:?}", space.validate(&m));
    }

    /// Encoding lengths follow the closed-form layout for any problem shape.
    #[test]
    fn encoding_length_formula(dims in 1usize..10, tensors in 1usize..6) {
        let enc = Encoding { num_dims: dims, num_tensors: tensors };
        prop_assert_eq!(enc.mapping_len(), 7 * dims + 2 * tensors);
        prop_assert_eq!(enc.total_len(), 8 * dims + 2 * tensors);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(48))]

    /// `MapSpace::shard(i, n)` shards are pairwise disjoint and jointly
    /// covering: every random mapping of the full space is a member of
    /// exactly one shard, and every shard's own random mappings are members
    /// of that shard (and the base space) and of no other shard — including
    /// shard counts beyond the permutation count (3! = 6 here), which
    /// exercise the largest-tiling-axis fallback.
    #[test]
    fn shards_partition_the_map_space(
        seed in 0u64..u64::MAX,
        i in 1u64..256,
        j in 1u64..256,
        k in 1u64..256,
        n in 1usize..=8,
    ) {
        use mm_mapspace::MapSpaceView;

        let problem = matmul_problem(i, j, k);
        let space = MapSpace::new(problem, MappingConstraints::example());
        let n = (n as u128).min(space.shard_capacity()) as usize;
        let shards: Vec<_> = (0..n).map(|s| space.shard(s, n)).collect();
        let mut rng = StdRng::seed_from_u64(seed);

        // Jointly covering + pairwise disjoint over full-space samples.
        for _ in 0..8 {
            let m = space.random_mapping(&mut rng);
            let owners: Vec<usize> = shards
                .iter()
                .enumerate()
                .filter(|(_, sh)| sh.is_member(&m))
                .map(|(s, _)| s)
                .collect();
            prop_assert_eq!(owners.len(), 1, "full-space mapping must land in exactly one shard");
        }

        // Shard sampling stays inside its own shard and the base space.
        for (s, shard) in shards.iter().enumerate() {
            for _ in 0..4 {
                let m = shard.random_mapping(&mut rng);
                prop_assert!(shard.is_member(&m), "shard {} rejects its own sample: {:?}", s, shard.validate(&m));
                prop_assert!(space.is_member(&m), "shard sample invalid in base space: {:?}", space.validate(&m));
                for (o, other) in shards.iter().enumerate() {
                    if o != s {
                        prop_assert!(!other.is_member(&m), "shard {} sample also claimed by shard {}", s, o);
                    }
                }
            }
        }
    }

    /// Shard-local moves (neighbor, crossover, projection) never escape the
    /// shard or the base space.
    #[test]
    fn shard_moves_never_escape(
        seed in 0u64..u64::MAX,
        i in 1u64..256,
        j in 1u64..256,
        k in 1u64..256,
        n in 2usize..=8,
        index in 0usize..8,
    ) {
        use mm_mapspace::MapSpaceView;

        let problem = matmul_problem(i, j, k);
        let space = MapSpace::new(problem.clone(), MappingConstraints::example());
        let n = (n as u128).min(space.shard_capacity()) as usize;
        let index = index % n;
        let shard = space.shard(index, n);
        let mut rng = StdRng::seed_from_u64(seed);

        let mut m = shard.random_mapping(&mut rng);
        for _ in 0..12 {
            m = shard.neighbor(&m, &mut rng);
            prop_assert!(shard.is_member(&m), "{:?}", shard.validate(&m));
        }
        let a = shard.random_mapping(&mut rng);
        let child = shard.crossover(&a, &m, &mut rng);
        prop_assert!(shard.is_member(&child), "{:?}", shard.validate(&child));

        use rand::Rng;
        let enc = Encoding::for_problem(&problem);
        let noise: Vec<f32> = (0..enc.mapping_len()).map(|_| rng.gen_range(-40.0..400.0)).collect();
        let projected = MapSpaceView::project(&shard, &noise).unwrap();
        prop_assert!(shard.is_member(&projected), "{:?}", shard.validate(&projected));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(12))]

    /// Disjointness and coverage hold for **every** axis combination of the
    /// mixed-radix product, not just the full default: for each of the 15
    /// non-empty [`ShardAxisKind`] subsets, every full-space sample lands in
    /// exactly one shard, and every shard's own samples (and local moves)
    /// stay inside that shard and the base space.
    #[test]
    fn every_axis_combination_partitions_the_space(
        seed in 0u64..u64::MAX,
        i in 1u64..256,
        j in 1u64..256,
        k in 1u64..256,
        n in 1usize..=6,
    ) {
        use mm_mapspace::MapSpaceView;

        let problem = matmul_problem(i, j, k);
        let space = MapSpace::new(problem, MappingConstraints::example());
        let mut rng = StdRng::seed_from_u64(seed);

        for kinds in axis_subsets() {
            let n = (n as u128).min(space.shard_capacity_for(&kinds)).max(1) as usize;
            let shards: Vec<_> = (0..n).map(|s| space.shard_with(&kinds, s, n)).collect();

            // Jointly covering + pairwise disjoint over full-space samples.
            for _ in 0..3 {
                let m = space.random_mapping(&mut rng);
                let owners = shards.iter().filter(|sh| sh.is_member(&m)).count();
                prop_assert_eq!(
                    owners, 1,
                    "axes {:?}: full-space mapping must land in exactly one of {} shards",
                    kinds, n
                );
            }

            // Shard ops never escape their slice.
            for (s, shard) in shards.iter().enumerate() {
                let m = shard.random_mapping(&mut rng);
                prop_assert!(shard.is_member(&m), "axes {:?} shard {}: {:?}", kinds, s, shard.validate(&m));
                prop_assert!(space.is_member(&m), "axes {:?} shard {}: sample invalid in base", kinds, s);
                for (o, other) in shards.iter().enumerate() {
                    if o != s {
                        prop_assert!(!other.is_member(&m), "axes {:?}: shard {} sample claimed by {}", kinds, s, o);
                    }
                }
                let nb = shard.neighbor(&m, &mut rng);
                prop_assert!(shard.is_member(&nb), "axes {:?} shard {}: neighbor escaped: {:?}", kinds, s, shard.validate(&nb));
                let child = shard.crossover(&m, &nb, &mut rng);
                prop_assert!(shard.is_member(&child), "axes {:?} shard {}: crossover escaped", kinds, s);
            }
        }
    }

    /// `shard_capacity_for` is monotone in the axis product: adding any
    /// axis kind to any subset never decreases capacity, every subset's
    /// capacity divides into the full product's, and the full product's
    /// capacity is the elementwise product of the single-axis capacities.
    #[test]
    fn shard_capacity_is_monotone_in_the_axis_product(
        i in 1u64..400,
        j in 1u64..400,
        k in 1u64..400,
        pes in 1u64..64,
    ) {
        let problem = matmul_problem(i, j, k);
        let space = MapSpace::new(problem, constraints(pes, 1024, 16 * 1024));
        for kinds in axis_subsets() {
            let cap = space.shard_capacity_for(&kinds);
            prop_assert!(cap >= 1);
            prop_assert!(cap <= space.shard_capacity(), "subset {:?} exceeds the full product", kinds);
            for extra in ShardAxisKind::ALL {
                if kinds.contains(&extra) {
                    continue;
                }
                let mut bigger = kinds.clone();
                bigger.push(extra);
                prop_assert!(
                    space.shard_capacity_for(&bigger) >= cap,
                    "adding {:?} to {:?} shrank capacity",
                    extra, kinds
                );
            }
        }
        // The full product is exactly the product of its single axes.
        let product: u128 = ShardAxisKind::ALL
            .iter()
            .map(|k| space.shard_capacity_for(&[*k]))
            .product();
        prop_assert_eq!(space.shard_capacity(), product);
    }
}
