//! Criterion bench: reference cost-model evaluation throughput (the
//! per-query cost the black-box baselines pay on every step — experiment
//! E11's denominator).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mm_accel::CostModel;
use mm_mapspace::MapSpace;
use mm_workloads::evaluated_accelerator;
use mm_workloads::table1;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    for name in ["ResNet Conv_4", "MTTKRP_0"] {
        let target = table1::by_name(name).expect("table1 problem");
        let arch = evaluated_accelerator();
        let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, target.problem.clone());
        let mut rng = StdRng::seed_from_u64(0);
        group.bench_function(format!("evaluate/{name}"), |b| {
            b.iter_batched(
                || space.random_mapping(&mut rng),
                |m| model.evaluate(&m),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_lower_bound(c: &mut Criterion) {
    let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
    let arch = evaluated_accelerator();
    c.bench_function("algorithmic_minimum/ResNet Conv_4", |b| {
        b.iter(|| mm_accel::AlgorithmicMinimum::compute(&arch, &target.problem))
    });
}

criterion_group!(benches, bench_cost_model, bench_lower_bound);
criterion_main!(benches);
