//! Criterion bench: per-step cost of each search method (experiment E11).
//!
//! Measures the wall-clock cost of a fixed small number of search steps for
//! SA, GA, RL, random search, and the Mind Mappings gradient search; the
//! paper reports MM to be 153.7x / 286.8x / 425.5x faster per step than
//! SA / GA / RL because the baselines must query the (expensive) reference
//! cost model while MM queries its surrogate.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_accel::CostModel;
use mm_bench::{train_surrogate, ExperimentScale};
use mm_core::{CostModelObjective, GradientSearch, Phase2Config};
use mm_mapspace::MapSpace;
use mm_search::{
    AnnealingConfig, Budget, DdpgAgent, DdpgConfig, GeneticAlgorithm, GeneticConfig, RandomSearch,
    Searcher, SimulatedAnnealing,
};
use mm_workloads::evaluated_accelerator;
use mm_workloads::table1::{self, Algorithm};
use rand::rngs::StdRng;
use rand::SeedableRng;

const STEPS: u64 = 64;

fn bench_search_steps(c: &mut Criterion) {
    let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
    let problem = target.problem;
    let arch = evaluated_accelerator();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, problem.clone());

    let mut rng = StdRng::seed_from_u64(11);
    let scale = ExperimentScale::quick();
    let (surrogate, _) = train_surrogate(Algorithm::CnnLayer, &scale, &mut rng).expect("surrogate");

    let mut group = c.benchmark_group("search_steps_64");
    group.sample_size(10);

    group.bench_function("Random", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut obj = CostModelObjective::new(model.clone());
            RandomSearch::new().search(&space, &mut obj, Budget::iterations(STEPS), &mut rng)
        })
    });
    group.bench_function("SA", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut obj = CostModelObjective::new(model.clone());
            SimulatedAnnealing::new(AnnealingConfig::default()).search(
                &space,
                &mut obj,
                Budget::iterations(STEPS),
                &mut rng,
            )
        })
    });
    group.bench_function("GA", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut obj = CostModelObjective::new(model.clone());
            GeneticAlgorithm::new(GeneticConfig {
                population: 16,
                ..GeneticConfig::default()
            })
            .search(&space, &mut obj, Budget::iterations(STEPS), &mut rng)
        })
    });
    group.bench_function("RL", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut obj = CostModelObjective::new(model.clone());
            DdpgAgent::new(DdpgConfig {
                warmup: 16,
                batch_size: 8,
                ..DdpgConfig::default()
            })
            .search(&space, &mut obj, Budget::iterations(STEPS), &mut rng)
        })
    });
    group.bench_function("MM", |b| {
        let gs = GradientSearch::new(&surrogate, problem.clone(), Phase2Config::default())
            .expect("family match");
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            gs.best_mapping(Budget::iterations(STEPS), &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search_steps);
criterion_main!(benches);
