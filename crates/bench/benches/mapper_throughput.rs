//! Mapper throughput bench: evaluations/second of the parallel [`Mapper`]
//! at 1/2/4/8 threads vs the classic single-threaded `Searcher` loop, on
//! the ResNet Conv_4 workload, plus criterion micro-benchmarks of the
//! per-evaluation orchestration overhead.
//!
//! Writes a `BENCH_mapper.json` summary under the results directory
//! (override with `MM_RESULTS_DIR`). Tune the sweep with
//! `MM_MAPPER_BENCH_EVALS` (per-thread evaluations; falls back to
//! `MM_CI_BENCH_EVALS`, default 2000).
//!
//! The acceptance question — 4 threads ≥ 2× the single-threaded loop — is
//! only answerable on ≥ 2 usable cores; `available_parallelism` is recorded
//! in the JSON so single-core CI numbers aren't misread as a regression.

use std::sync::Arc;

use criterion::{criterion_group, Criterion};
use mm_accel::CostModel;
use mm_bench::{
    measure_telemetry_overhead, measure_telemetry_overhead_at, report, run_mapper_scaling,
};
use mm_mapper::{Mapper, MapperConfig, ModelEvaluator, TerminationPolicy};
use mm_mapspace::MapSpace;
use mm_search::RandomSearch;
use mm_workloads::{evaluated_accelerator, table1};

fn resnet_conv4() -> (CostModel, MapSpace) {
    let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
    let arch = evaluated_accelerator();
    let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
    (CostModel::new(arch, target.problem.clone()), space)
}

/// Criterion view: wall-clock of a fixed mapper run at each thread count.
fn bench_mapper_threads(c: &mut Criterion) {
    let (model, space) = resnet_conv4();
    let evaluator: Arc<dyn mm_mapper::CostEvaluator> = Arc::new(ModelEvaluator::edp(model));
    let mut group = c.benchmark_group("mapper_throughput");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let evaluator = Arc::clone(&evaluator);
        let space = space.clone();
        group.bench_function(format!("random/{threads}threads/512evals"), move |b| {
            b.iter(|| {
                let mapper = Mapper::new(MapperConfig {
                    threads,
                    seed: 7,
                    termination: TerminationPolicy::search_size(512),
                    ..MapperConfig::default()
                });
                mapper.run(&space, Arc::clone(&evaluator), |_| {
                    Box::new(RandomSearch::new())
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapper_threads);

fn main() {
    benches();

    let evals_per_thread = report::env_evals("MM_MAPPER_BENCH_EVALS", 2000);
    let (model, space) = resnet_conv4();

    // The telemetry-layer A/Bs: journal-level and spans-level vs. off
    // throughput, gated by bench_gate at MM_GATE_TELEMETRY_TOL (default
    // 2 %) and MM_GATE_TELEMETRY_SPANS_TOL (default 3 %). Measured before
    // the headline sweep because they reset the telemetry registry — this
    // way the TELEMETRY_mapper.json sibling describes the sweep itself.
    //
    // The A/B gets its own eval floor: resolving a 2 % throughput delta
    // needs runs long enough that scheduler jitter averages out, so a small
    // CI-wide `MM_CI_BENCH_EVALS` must not starve the measurement. (The
    // zero-alloc hot path roughly doubled evals/sec, halving the wall time
    // a given budget buys — the floor keeps the A/B meaningful.)
    let ab_evals = evals_per_thread.max(5_000);
    let rel = measure_telemetry_overhead(&model, &space, ab_evals, 7, 15);
    let rel_spans =
        measure_telemetry_overhead_at(&model, &space, ab_evals, 7, 15, mm_telemetry::Level::Spans);

    // The headline sweep: iso-per-thread budgets, JSON summary.
    let mut result = run_mapper_scaling(&model, &space, &[1, 2, 4, 8], evals_per_thread, 7);
    result.telemetry_rel_throughput = Some(rel);
    result.telemetry_spans_rel_throughput = Some(rel_spans);

    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                p.total_evaluations.to_string(),
                report::fmt(p.wall_time_s),
                report::fmt(p.evals_per_sec),
                report::fmt(p.speedup_vs_baseline),
                report::fmt(p.best_cost),
            ]
        })
        .collect();
    println!();
    println!(
        "mapper scaling on {} (baseline single-threaded Searcher loop: {} evals/s; {} core(s) available)",
        result.problem,
        report::fmt(result.baseline_evals_per_sec),
        result.available_parallelism
    );
    println!(
        "telemetry overhead: journal-level throughput at {:.1}% of telemetry-off, \
         spans-level at {:.1}%",
        rel * 100.0,
        rel_spans * 100.0
    );
    println!(
        "{}",
        report::format_table(
            &["threads", "evals", "wall_s", "evals/s", "speedup", "best_edp"],
            &rows
        )
    );
    match result.write_json() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_mapper.json: {e}"),
    }
}
