//! Sync-policy bench: mapper quality under every global-best sync policy
//! (off / anchor / restart / annealed) at 1/2/4 disjoint shards, over
//! conv1d + the Table 1 set; plus a criterion micro-benchmark of a small
//! policy-synced mapper run.
//!
//! Writes a `BENCH_sync.json` summary under the results directory
//! (override with `MM_RESULTS_DIR`). Tune with `MM_SYNC_BENCH_EVALS`
//! (evaluations per problem per point; falls back to `MM_CI_BENCH_EVALS`,
//! default 2000) and `MM_SYNC_BENCH_THREADS` (worker threads, default 2).
//!
//! Quality numbers are iso-budget and deterministic per configuration
//! (barrier-round sync under the deterministic schedule), so they are
//! machine-independent; only the wall-clock columns vary by host.

use std::sync::Arc;

use criterion::{criterion_group, Criterion};
use mm_accel::CostModel;
use mm_bench::{report, run_sync_bench};
use mm_mapper::{
    CostEvaluator, Mapper, MapperConfig, ModelEvaluator, SyncPolicy, TerminationPolicy,
};
use mm_mapspace::{MapSpace, ProblemSpec};
use mm_search::SimulatedAnnealing;
use mm_workloads::evaluated_accelerator;

/// Criterion view: wall-clock of a small fixed policy-synced mapper run.
fn bench_synced_mapper(c: &mut Criterion) {
    let arch = evaluated_accelerator();
    let problem = ProblemSpec::conv1d(1024, 7);
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let evaluator: Arc<dyn CostEvaluator> =
        Arc::new(ModelEvaluator::edp(CostModel::new(arch, problem)));
    let mut group = c.benchmark_group("sync_policy");
    group.sample_size(10);
    for (label, sync) in [
        ("off", SyncPolicy::Off),
        ("anchor", SyncPolicy::Anchor),
        ("restart", SyncPolicy::Restart { patience: 2 }),
    ] {
        group.bench_function(format!("conv1d/4shards/{label}/512evals"), |b| {
            b.iter(|| {
                Mapper::new(MapperConfig {
                    threads: 2,
                    shards: Some(4),
                    shard_space: true,
                    sync_interval: 16,
                    sync,
                    termination: TerminationPolicy::search_size(512),
                    ..MapperConfig::default()
                })
                .run(&space, Arc::clone(&evaluator), |_| {
                    Box::new(SimulatedAnnealing::default())
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synced_mapper);

fn main() {
    benches();

    let evals = report::env_evals("MM_SYNC_BENCH_EVALS", 2000);
    let threads = report::env_u64("MM_SYNC_BENCH_THREADS", 2) as usize;
    let result = run_sync_bench(evals, threads, 7);

    println!();
    println!(
        "sync-policy sweep over {} problems x {} evals, {} worker thread(s) ({} core(s) available)",
        result.problems.len(),
        result.evals_per_problem,
        result.threads,
        result.available_parallelism
    );
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.policy.clone(),
                p.shards.to_string(),
                format!("{:.4e}", p.geomean_best_edp),
                p.total_evaluations.to_string(),
                report::fmt(p.evals_per_sec),
                report::fmt(p.wall_s),
            ]
        })
        .collect();
    println!(
        "{}",
        report::format_table(
            &[
                "policy",
                "shards",
                "geomean_best_edp",
                "evals",
                "evals/s",
                "wall_s"
            ],
            &rows
        )
    );
    let path = result.write_json().expect("write BENCH_sync.json");
    println!("wrote {}", path.display());
}
