//! Serve throughput bench: the Table 1 network through one shared
//! [`MappingService`] vs. per-layer cold starts, the cached replay, and
//! batched vs. single pool dispatch; plus a criterion micro-benchmark of a
//! small end-to-end serve call.
//!
//! Writes a `BENCH_serve.json` summary under the results directory
//! (override with `MM_RESULTS_DIR`). Tune with `MM_SERVE_BENCH_EVALS`
//! (per-layer evaluations; falls back to `MM_CI_BENCH_EVALS`, default
//! 1000) and `MM_SERVE_BENCH_WORKERS` (pool workers, default 4).
//!
//! The amortization questions — shared pool vs. cold starts, batch vs.
//! single dispatch — only show real wins on ≥ 2 usable cores;
//! `available_parallelism` is recorded in the JSON so single-core CI
//! numbers aren't misread (see EXPERIMENTS.md).

use criterion::{criterion_group, Criterion};
use mm_bench::{report, run_serve_bench};
use mm_serve::{MappingService, RequestConfig, ServiceConfig};
use mm_workloads::{evaluated_accelerator, table1_network};

/// Criterion view: wall-clock of a small fixed serve call.
fn bench_serve_network(c: &mut Criterion) {
    let net = table1_network();
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let net = net.clone();
        group.bench_function(
            format!("table1/{workers}workers/64evals_per_layer"),
            move |b| {
                b.iter(|| {
                    let mut service = MappingService::new(
                        evaluated_accelerator(),
                        (
                            ServiceConfig::default().with_workers(workers),
                            RequestConfig::default().with_search_size(64),
                        ),
                    );
                    service.map_network(&net)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve_network);

fn main() {
    benches();

    let evals_per_layer = report::env_evals("MM_SERVE_BENCH_EVALS", 1000);
    let workers = report::env_u64("MM_SERVE_BENCH_WORKERS", 4) as usize;
    let result = run_serve_bench(evals_per_layer, workers, 7);

    println!();
    println!(
        "serving {} ({} layers × {} evals) over {} pool workers ({} core(s) available)",
        result.network,
        result.layers,
        result.evals_per_layer,
        result.workers,
        result.available_parallelism
    );
    println!(
        "{}",
        report::format_table(
            &["path", "wall_s", "evals", "evals/s"],
            &[
                vec![
                    "cold (fresh service per layer)".into(),
                    report::fmt(result.cold_wall_s),
                    result.serve_evaluations.to_string(),
                    report::fmt(result.serve_evaluations as f64 / result.cold_wall_s.max(1e-12)),
                ],
                vec![
                    "shared service".into(),
                    report::fmt(result.serve_wall_s),
                    result.serve_evaluations.to_string(),
                    report::fmt(result.serve_evals_per_sec),
                ],
                vec![
                    "cached replay".into(),
                    report::fmt(result.cached_wall_s),
                    "0".into(),
                    "-".into(),
                ],
            ],
        )
    );
    println!(
        "pool dispatch: {} evals/s single-job-per-mapping vs {} evals/s one-chunk-job-per-worker",
        report::fmt(result.single_dispatch_evals_per_sec),
        report::fmt(result.batch_dispatch_evals_per_sec),
    );
    match result.write_json() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}
