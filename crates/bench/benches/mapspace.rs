//! Criterion bench: map-space operations — random sampling (`getMapping`),
//! validity checking (`isMember`), projection (`getProjection`), and the
//! flat-vector encoding used by the surrogate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mm_mapspace::{Encoding, MapSpace};
use mm_workloads::evaluated_accelerator;
use mm_workloads::table1;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_mapspace_ops(c: &mut Criterion) {
    let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
    let arch = evaluated_accelerator();
    let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
    let enc = Encoding::for_problem(space.problem());
    let mut rng = StdRng::seed_from_u64(1);

    let mut group = c.benchmark_group("mapspace");
    group.bench_function("random_mapping", |b| {
        b.iter(|| space.random_mapping(&mut rng))
    });

    let sample = space.random_mapping(&mut rng);
    group.bench_function("is_member", |b| b.iter(|| space.is_member(&sample)));
    group.bench_function("encode", |b| {
        b.iter(|| enc.encode(space.problem(), &sample))
    });
    group.bench_function("project_noise", |b| {
        b.iter_batched(
            || {
                (0..enc.mapping_len())
                    .map(|_| rng.gen_range(-10.0f32..300.0))
                    .collect::<Vec<_>>()
            },
            |v| space.project(&v).expect("projection"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("neighbor", |b| {
        b.iter_batched(
            || sample.clone(),
            |m| space.neighbor(&m, &mut StdRng::seed_from_u64(7)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_mapspace_ops);
criterion_main!(benches);
