//! Criterion bench: surrogate query cost vs. reference cost-model query cost
//! (experiment E11). The per-step advantage of Mind Mappings comes from the
//! surrogate forward/backward pass being much cheaper than a full
//! cost-model/simulator query at paper scale; this bench reports both so the
//! ratio can be computed for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mm_accel::CostModel;
use mm_bench::{train_surrogate, ExperimentScale};
use mm_mapspace::MapSpace;
use mm_workloads::evaluated_accelerator;
use mm_workloads::table1::{self, Algorithm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_surrogate_vs_cost_model(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let scale = ExperimentScale::quick();
    let (surrogate, _) = train_surrogate(Algorithm::CnnLayer, &scale, &mut rng).expect("surrogate");

    let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
    let problem = target.problem;
    let arch = evaluated_accelerator();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, problem.clone());
    let mapping = space.random_mapping(&mut rng);
    let x = surrogate.encode_normalized(&problem, &mapping);

    let mut group = c.benchmark_group("surrogate");
    group.bench_function("predict_normalized_edp", |b| {
        b.iter(|| surrogate.predict_normalized_edp_from_input(&x))
    });
    group.bench_function("edp_gradient", |b| {
        b.iter(|| surrogate.normalized_edp_gradient(&x))
    });
    group.bench_function("reference_cost_model_edp", |b| {
        b.iter_batched(
            || space.random_mapping(&mut rng),
            |m| model.edp(&m),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_surrogate_vs_cost_model);
criterion_main!(benches);
