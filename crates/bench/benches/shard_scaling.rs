//! Shard-scaling bench: sharded mapper quality/coverage across 1/2/4/8
//! pairwise-disjoint map-space shards, deterministic split vs work stealing,
//! over conv1d + the Table 1 set; plus a criterion micro-benchmark of a
//! small sharded mapper run.
//!
//! Writes a `BENCH_shard.json` summary under the results directory
//! (override with `MM_RESULTS_DIR`). Tune with `MM_SHARD_BENCH_EVALS`
//! (evaluations per problem per point; falls back to `MM_CI_BENCH_EVALS`,
//! default 2000) and `MM_SHARD_BENCH_THREADS` (worker threads, default 2).
//!
//! Quality numbers are iso-budget and deterministic per configuration; the
//! wall-clock columns only show parallel speedups on ≥ 2 usable cores
//! (`available_parallelism` is recorded in the JSON — see EXPERIMENTS.md).

use std::sync::Arc;

use criterion::{criterion_group, Criterion};
use mm_accel::CostModel;
use mm_bench::{report, run_shard_bench};
use mm_mapper::{
    CostEvaluator, Mapper, MapperConfig, MapperSchedule, ModelEvaluator, TerminationPolicy,
};
use mm_mapspace::{MapSpace, ProblemSpec};
use mm_search::RandomSearch;
use mm_workloads::evaluated_accelerator;

/// Criterion view: wall-clock of a small fixed sharded mapper run.
fn bench_sharded_mapper(c: &mut Criterion) {
    let arch = evaluated_accelerator();
    let problem = ProblemSpec::conv1d(1024, 7);
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let evaluator: Arc<dyn CostEvaluator> =
        Arc::new(ModelEvaluator::edp(CostModel::new(arch, problem)));
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for (shards, schedule) in [
        (1usize, MapperSchedule::Deterministic),
        (4, MapperSchedule::Deterministic),
        (4, MapperSchedule::WorkStealing),
    ] {
        group.bench_function(
            format!("conv1d/{shards}shards/{schedule:?}/512evals"),
            |b| {
                b.iter(|| {
                    Mapper::new(MapperConfig {
                        threads: 2,
                        shards: Some(shards),
                        shard_space: shards > 1,
                        schedule,
                        termination: TerminationPolicy::search_size(512),
                        ..MapperConfig::default()
                    })
                    .run(&space, Arc::clone(&evaluator), |_| {
                        Box::new(RandomSearch::new())
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_mapper);

fn main() {
    benches();

    let evals = report::env_evals("MM_SHARD_BENCH_EVALS", 2000);
    let threads = report::env_u64("MM_SHARD_BENCH_THREADS", 2) as usize;
    let result = run_shard_bench(evals, threads, 7);

    println!();
    println!(
        "sharded mapper over {} problems x {} evals, {} worker thread(s) ({} core(s) available)",
        result.problems.len(),
        result.evals_per_problem,
        result.threads,
        result.available_parallelism
    );
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.shards.to_string(),
                p.schedule.clone(),
                format!("{:.4e}", p.geomean_best_edp),
                p.distinct_best_l2_orders.to_string(),
                p.total_evaluations.to_string(),
                report::fmt(p.wall_s),
            ]
        })
        .collect();
    println!(
        "{}",
        report::format_table(
            &[
                "shards",
                "schedule",
                "geomean_best_edp",
                "distinct_L2_orders",
                "evals",
                "wall_s"
            ],
            &rows
        )
    );
    let path = result.write_json().expect("write BENCH_shard.json");
    println!("wrote {}", path.display());
}
