//! Concurrent-serving bench: N simultaneous table1-class requests over one
//! multi-tenant [`mm_serve::MappingService`] vs. a single request on an idle
//! service, plus the in-flight sharing path for byte-identical requests.
//!
//! Writes a `BENCH_serve_concurrent.json` summary under the results
//! directory (override with `MM_RESULTS_DIR`). Tune with
//! `MM_CONCURRENT_BENCH_EVALS` (per-layer evaluations; falls back to
//! `MM_CI_BENCH_EVALS`, default 1000), `MM_CONCURRENT_BENCH_WORKERS` (pool
//! workers, default 4) and `MM_CONCURRENT_BENCH_REQUESTS` (simultaneous
//! requests, default 4).
//!
//! The headline number is `concurrent_rel_throughput`: aggregate
//! evaluations/second with N distinct-seed requests in flight, relative to
//! one request on an idle service. The bench gate holds it at ≥ 0.8× by
//! default (`MM_GATE_CONCURRENT_TOL`). Run with `MM_TELEMETRY=spans` to get
//! the request-lifecycle trace (`request.admit`/`request.queue`/
//! `request.run`) written as a Chrome-trace sibling.

use mm_bench::{report, run_concurrent_bench};

fn main() {
    let evals_per_layer = report::env_evals("MM_CONCURRENT_BENCH_EVALS", 1000);
    let workers = report::env_u64("MM_CONCURRENT_BENCH_WORKERS", 4) as usize;
    let requests = report::env_u64("MM_CONCURRENT_BENCH_REQUESTS", 4) as usize;
    let result = run_concurrent_bench(evals_per_layer, workers, requests, 17);

    println!(
        "{} concurrent requests for {} ({} layers × {} evals) over {} pool workers ({} core(s) available)",
        result.requests,
        result.network,
        result.layers,
        result.evals_per_layer,
        result.workers,
        result.available_parallelism
    );
    println!(
        "{}",
        report::format_table(
            &["phase", "wall_s", "evals", "evals/s"],
            &[
                vec![
                    "single request (idle service)".into(),
                    report::fmt(result.single_wall_s),
                    (result.layers as u64 * result.evals_per_layer).to_string(),
                    report::fmt(result.single_request_evals_per_sec),
                ],
                vec![
                    format!("{} concurrent (distinct seeds)", result.requests),
                    report::fmt(result.concurrent_wall_s),
                    result.concurrent_evaluations.to_string(),
                    report::fmt(result.concurrent_evals_per_sec),
                ],
                vec![
                    format!("{} concurrent (identical, shared)", result.requests),
                    report::fmt(result.shared_wall_s),
                    result.shared_evaluations.to_string(),
                    "-".into(),
                ],
            ],
        )
    );
    println!(
        "relative throughput under contention: {:.2}x  (gate: >= 0.8x)",
        result.concurrent_rel_throughput
    );
    println!(
        "request latency p50 {}s / p99 {}s; shared phase attached {} in-flight searches",
        report::fmt(result.latency_p50_s),
        report::fmt(result.latency_p99_s),
        result.shared_searches
    );
    match result.write_json() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve_concurrent.json: {e}"),
    }
}
