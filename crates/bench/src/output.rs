//! Shared output vocabulary for the bench binaries and harnesses.
//!
//! Column headers, progress lines, and JSON scaffolding that several
//! binaries emit live here once, so the copies cannot drift apart (the
//! `dup-literal` rule in mm-lint enforces this).

/// CSV column name for the best normalized EDP a search found.
pub const BEST_NORMALIZED_EDP_COLUMN: &str = "search_best_normalized_edp";

/// The concurrent-serving bench summary: written by
/// [`crate::concurrent_bench`], gated by [`crate::gate`].
pub const SERVE_CONCURRENT_BENCH_FILE: &str = "BENCH_serve_concurrent.json";

/// Human table header for the same quantity.
pub const BEST_NORMALIZED_EDP_LABEL: &str = "best EDP found (normalized)";

/// Summary-CSV header for the per-problem method roll-up.
pub const METHODS_SUMMARY_COLUMN: &str = "methods (best normalized EDP)";

/// Progress line printed before training the CNN-Layer surrogate.
pub const TRAINING_CNN_SURROGATE: &str = "training CNN-Layer surrogate…";

/// Progress line printed before training the MTTKRP surrogate.
pub const TRAINING_MTTKRP_SURROGATE: &str = "training MTTKRP surrogate…";

/// Print the headline Mind-Mappings-to-algorithmic-minimum distance next to
/// the paper's reported value (Table 3: 5.32x).
pub fn print_mm_distance_to_minimum(formatted_geomean: &str) {
    println!("  MM distance to algorithmic minimum: {formatted_geomean}x   (paper: 5.32x)");
}

/// The shared `{ "bench": ..., "problems": ..., ... "points": [` preamble
/// of the throughput-bench JSON summaries.
pub fn bench_json_header(
    bench: &str,
    problems: &[String],
    evals_per_problem: u64,
    threads: usize,
    available_parallelism: usize,
) -> String {
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"problems\": {problems:?},\n  \
         \"evals_per_problem\": {evals_per_problem},\n  \"threads\": {threads},\n  \
         \"available_parallelism\": {available_parallelism},\n  \"points\": [\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_header_is_valid_json_when_closed() {
        let header = bench_json_header("x", &["a".to_string()], 5, 2, 8);
        let doc = format!("{header}  ]\n}}\n");
        let parsed = crate::json::parse_json(&doc).expect("header parses");
        assert_eq!(parsed.get("bench").and_then(|v| v.as_str()), Some("x"));
        assert_eq!(parsed.get("threads").and_then(|v| v.as_f64()), Some(2.0));
    }
}
