//! The SA / GA / RL / Random / MM comparison machinery behind Figures 5
//! and 6: run every search method on one target problem under a common
//! budget, average over several runs, and report normalized-EDP traces.

use mm_accel::CostModel;
use mm_core::{CostModelObjective, GradientSearch, Phase2Config, Surrogate};
use mm_mapspace::{MapSpace, ProblemSpec};
use mm_search::{
    AnnealingConfig, Budget, DdpgAgent, DdpgConfig, GeneticAlgorithm, GeneticConfig, RandomSearch,
    SearchTrace, Searcher, SimulatedAnnealing,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The averaged result of one search method on one problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRun {
    /// Method name (`SA`, `GA`, `RL`, `Random`, `MM`).
    pub method: String,
    /// Run-averaged trace with costs normalized to the algorithmic minimum.
    pub trace: SearchTrace,
    /// Best normalized EDP, averaged across runs.
    pub best_normalized_edp: f64,
    /// Mean wall-clock seconds per cost-function (or surrogate) query.
    pub seconds_per_query: f64,
}

/// Results for all methods on one target problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// Problem name.
    pub problem: String,
    /// log10 of the estimated map-space size (Section 5.1.3 context).
    pub log10_space_size: f64,
    /// One entry per method.
    pub methods: Vec<MethodRun>,
}

impl ComparisonResult {
    /// Best normalized EDP of a method, if present.
    pub fn best_of(&self, method: &str) -> Option<f64> {
        self.methods
            .iter()
            .find(|m| m.method == method)
            .map(|m| m.best_normalized_edp)
    }

    /// Ratio `best(method) / best(MM)` — how much worse a baseline is than
    /// Mind Mappings (the headline numbers of the abstract).
    pub fn ratio_vs_mm(&self, method: &str) -> Option<f64> {
        let mm = self.best_of("MM")?;
        Some(self.best_of(method)? / mm)
    }
}

/// Which baselines to include in a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSelection {
    /// Include Simulated Annealing.
    pub sa: bool,
    /// Include the Genetic Algorithm.
    pub ga: bool,
    /// Include the RL (DDPG) agent.
    pub rl: bool,
    /// Include uniform random search.
    pub random: bool,
    /// Include Mind Mappings (requires a surrogate).
    pub mm: bool,
}

impl Default for MethodSelection {
    fn default() -> Self {
        MethodSelection {
            sa: true,
            ga: true,
            rl: true,
            random: true,
            mm: true,
        }
    }
}

/// Run every selected method on `problem` for the given budget, averaging
/// `runs` independent repetitions. Costs in the returned traces are EDPs
/// normalized to the problem's algorithmic minimum (the `y`-axis of Figures 5
/// and 6).
pub fn run_comparison(
    problem: &ProblemSpec,
    surrogate: Option<&Surrogate>,
    budget: Budget,
    runs: usize,
    selection: MethodSelection,
    seed: u64,
) -> ComparisonResult {
    let arch = mm_workloads::evaluated_accelerator();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch.clone(), problem.clone());
    let lb_edp = model.lower_bound().edp;
    let runs = runs.max(1);

    let mut methods: Vec<MethodRun> = Vec::new();

    let mut run_baseline = |name: &str, make: &dyn Fn() -> Box<dyn Searcher>| {
        let mut traces = Vec::with_capacity(runs);
        for r in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed ^ (r as u64) << 16 ^ hash_name(name));
            let mut searcher = make();
            let mut objective = CostModelObjective::new(model.clone());
            let mut trace = searcher.search(&space, &mut objective, budget, &mut rng);
            normalize_trace(&mut trace, lb_edp);
            traces.push(trace);
        }
        let avg = SearchTrace::average(&traces);
        methods.push(MethodRun {
            method: name.to_string(),
            best_normalized_edp: avg.best_cost,
            seconds_per_query: avg.seconds_per_query(),
            trace: avg,
        });
    };

    if selection.random {
        run_baseline("Random", &|| Box::new(RandomSearch::new()));
    }
    if selection.sa {
        run_baseline("SA", &|| {
            Box::new(SimulatedAnnealing::new(AnnealingConfig::default()))
        });
    }
    if selection.ga {
        run_baseline("GA", &|| {
            Box::new(GeneticAlgorithm::new(GeneticConfig::default()))
        });
    }
    if selection.rl {
        run_baseline("RL", &|| Box::new(DdpgAgent::new(DdpgConfig::default())));
    }

    if selection.mm {
        if let Some(surrogate) = surrogate {
            let gs = GradientSearch::new(surrogate, problem.clone(), Phase2Config::default())
                .expect("surrogate family must match the problem");
            let mut traces = Vec::with_capacity(runs);
            for r in 0..runs {
                let mut rng = StdRng::seed_from_u64(seed ^ (r as u64) << 16 ^ hash_name("MM"));
                let mut trace = gs.run(budget, &model, &mut rng);
                normalize_trace(&mut trace, lb_edp);
                traces.push(trace);
            }
            let avg = SearchTrace::average(&traces);
            methods.push(MethodRun {
                method: "MM".to_string(),
                best_normalized_edp: avg.best_cost,
                seconds_per_query: avg.seconds_per_query(),
                trace: avg,
            });
        }
    }

    ComparisonResult {
        problem: problem.name.clone(),
        log10_space_size: space.log10_size_estimate(),
        methods,
    }
}

/// Mean normalized EDP of uniformly random valid mappings — the
/// characterization statistic of Section 5.1.3 (reported there as energy;
/// we report both energy and EDP in the Table 1 binary).
pub fn random_sampling_statistics(
    problem: &ProblemSpec,
    samples: usize,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let arch = mm_workloads::evaluated_accelerator();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, problem.clone());
    let lb = model.lower_bound();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut energy = Vec::with_capacity(samples);
    let mut edp = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let m = space.random_mapping(&mut rng);
        let cost = model.evaluate(&m);
        energy.push(cost.total_energy_pj / lb.energy_pj);
        edp.push(cost.edp / lb.edp);
    }
    (mean(&energy), std_dev(&energy), mean(&edp), std_dev(&edp))
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn std_dev(v: &[f64]) -> f64 {
    let m = mean(v);
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len().max(1) as f64).sqrt()
}

fn normalize_trace(trace: &mut SearchTrace, lb_edp: f64) {
    for p in &mut trace.points {
        p.cost /= lb_edp;
        p.best_cost /= lb_edp;
    }
    trace.best_cost /= lb_edp;
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Convenience wrapper: a quick comparison with every method and a fresh RNG,
/// used by tests and the examples.
pub fn quick_comparison(
    problem: &ProblemSpec,
    surrogate: Option<&Surrogate>,
    iterations: u64,
    seed: u64,
) -> ComparisonResult {
    run_comparison(
        problem,
        surrogate,
        Budget::iterations(iterations),
        1,
        MethodSelection::default(),
        seed,
    )
}

/// Deterministically seeded RNG helper for the binaries.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Sample `n` random mappings and return their normalized EDPs (used by the
/// Figure 3 cost-surface binary for context lines).
pub fn sample_normalized_edps(problem: &ProblemSpec, n: usize, rng: &mut impl Rng) -> Vec<f64> {
    let arch = mm_workloads::evaluated_accelerator();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, problem.clone());
    (0..n)
        .map(|_| model.normalized_edp(&space.random_mapping(rng)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_workloads::mttkrp::MttkrpShape;

    #[test]
    fn comparison_without_surrogate_runs_baselines() {
        let problem = MttkrpShape {
            name: "tiny",
            i: 64,
            j: 64,
            k: 64,
            l: 64,
        }
        .into_problem();
        let result = run_comparison(
            &problem,
            None,
            Budget::iterations(60),
            1,
            MethodSelection {
                mm: false,
                rl: false,
                ..MethodSelection::default()
            },
            7,
        );
        assert_eq!(result.methods.len(), 3); // Random, SA, GA
        for m in &result.methods {
            assert!(m.best_normalized_edp >= 0.99, "{}", m.best_normalized_edp);
            assert!(!m.trace.is_empty());
        }
        assert!(result.best_of("SA").is_some());
        assert!(result.best_of("MM").is_none());
        assert!(result.ratio_vs_mm("SA").is_none());
        assert!(result.log10_space_size > 0.0);
    }

    #[test]
    fn random_statistics_are_positive() {
        let problem = MttkrpShape {
            name: "tiny2",
            i: 64,
            j: 128,
            k: 64,
            l: 64,
        }
        .into_problem();
        let (e_mean, e_std, edp_mean, edp_std) = random_sampling_statistics(&problem, 50, 3);
        assert!(e_mean >= 1.0);
        assert!(e_std >= 0.0);
        assert!(edp_mean >= 1.0);
        assert!(edp_std >= 0.0);
    }
}
