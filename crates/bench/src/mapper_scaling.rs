//! Threads-vs-throughput comparison for the parallel mapper: measure
//! evaluations/second of the classic single-threaded `Searcher` loop, then
//! of [`Mapper`] runs at increasing thread counts, under iso-per-thread
//! evaluation budgets.
//!
//! The headline question — "does a 4-thread `Mapper` evaluate ≥ 2× as many
//! mappings per second as the single-threaded loop?" — only has a chance of
//! a *yes* on hardware with ≥ 2 usable cores; the result records
//! `available_parallelism` so consumers can interpret the numbers honestly.

use std::sync::Arc;

use mm_accel::CostModel;
use mm_mapper::{EvaluatorObjective, Mapper, MapperConfig, ModelEvaluator, TerminationPolicy};
use mm_mapspace::MapSpace;
use mm_search::{Budget, RandomSearch, Searcher};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::{write_bench_json, Stopwatch};

/// Throughput of one mapper configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Mapper thread count.
    pub threads: usize,
    /// Evaluations performed (threads × per-thread budget).
    pub total_evaluations: u64,
    /// Wall-clock seconds.
    pub wall_time_s: f64,
    /// Aggregate evaluations per second.
    pub evals_per_sec: f64,
    /// Best primary-metric cost found.
    pub best_cost: f64,
    /// Throughput relative to the single-threaded `Searcher` baseline.
    pub speedup_vs_baseline: f64,
}

/// The full threads-vs-throughput sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapperScalingResult {
    /// Problem name.
    pub problem: String,
    /// Evaluations given to each thread at every point (iso-per-thread).
    pub evals_per_thread: u64,
    /// Evaluations/second of the classic single-threaded `Searcher` loop.
    pub baseline_evals_per_sec: f64,
    /// `std::thread::available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    /// Mapper throughput with journal-level telemetry relative to telemetry
    /// off — 1.0 = free, 0.98 = 2 % overhead (see
    /// [`measure_telemetry_overhead`]). `None` when not measured.
    pub telemetry_rel_throughput: Option<f64>,
    /// Mapper throughput with span tracing (`spans` level) relative to
    /// telemetry off — the cost of the full tracing pillar. `None` when not
    /// measured.
    pub telemetry_spans_rel_throughput: Option<f64>,
    /// One entry per measured thread count.
    pub points: Vec<ScalingPoint>,
}

impl MapperScalingResult {
    /// The point measured at `threads`, if any.
    pub fn at_threads(&self, threads: usize) -> Option<&ScalingPoint> {
        self.points.iter().find(|p| p.threads == threads)
    }

    /// Serialize as the `BENCH_mapper.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"mapper_throughput\",\n");
        out.push_str(&format!("  \"problem\": {:?},\n", self.problem));
        out.push_str(&format!(
            "  \"evals_per_thread\": {},\n",
            self.evals_per_thread
        ));
        out.push_str(&format!(
            "  \"baseline_single_thread_searcher_evals_per_sec\": {:.3},\n",
            self.baseline_evals_per_sec
        ));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        if let Some(rel) = self.telemetry_rel_throughput {
            out.push_str(&format!("  \"telemetry_rel_throughput\": {rel:.4},\n"));
        }
        if let Some(rel) = self.telemetry_spans_rel_throughput {
            out.push_str(&format!(
                "  \"telemetry_spans_rel_throughput\": {rel:.4},\n"
            ));
        }
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"total_evaluations\": {}, \"wall_time_s\": {:.6}, \
                 \"evals_per_sec\": {:.3}, \"best_cost\": {:.6e}, \"speedup_vs_baseline\": {:.3}}}{}\n",
                p.threads,
                p.total_evaluations,
                p.wall_time_s,
                p.evals_per_sec,
                p.best_cost,
                p.speedup_vs_baseline,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_mapper.json` under the results directory (plus a
    /// telemetry sibling when collection is on), returning the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        write_bench_json("BENCH_mapper.json", &self.to_json())
    }
}

/// Run the sweep: random search over `problem`'s map space, measuring the
/// single-threaded `Searcher` loop first and then a [`Mapper`] at each of
/// `thread_counts`, giving every thread `evals_per_thread` evaluations.
pub fn run_mapper_scaling(
    model: &CostModel,
    space: &MapSpace,
    thread_counts: &[usize],
    evals_per_thread: u64,
    seed: u64,
) -> MapperScalingResult {
    let evaluator: Arc<dyn mm_mapper::CostEvaluator> = Arc::new(ModelEvaluator::edp(model.clone()));

    // Baseline: the classic monolithic single-threaded Searcher loop.
    let mut objective = EvaluatorObjective::new(Arc::clone(&evaluator));
    let mut rng = StdRng::seed_from_u64(seed);
    let watch = Stopwatch::start();
    let trace = RandomSearch::new().search(
        space,
        &mut objective,
        Budget::iterations(evals_per_thread),
        &mut rng,
    );
    let baseline_evals_per_sec = watch.rate(trace.len() as u64);

    let points = thread_counts
        .iter()
        .map(|&threads| {
            let mapper = Mapper::new(MapperConfig {
                threads,
                seed,
                termination: TerminationPolicy::search_size(evals_per_thread * threads as u64),
                ..MapperConfig::default()
            });
            let report = mapper.run(space, Arc::clone(&evaluator), |_| {
                Box::new(RandomSearch::new())
            });
            ScalingPoint {
                threads,
                total_evaluations: report.total_evaluations,
                wall_time_s: report.wall_time_s,
                evals_per_sec: report.evals_per_sec,
                best_cost: report.best_cost(),
                speedup_vs_baseline: if baseline_evals_per_sec > 0.0 {
                    report.evals_per_sec / baseline_evals_per_sec
                } else {
                    0.0
                },
            }
        })
        .collect();

    MapperScalingResult {
        problem: space.problem().name.clone(),
        evals_per_thread,
        baseline_evals_per_sec,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        telemetry_rel_throughput: None,
        telemetry_spans_rel_throughput: None,
        points,
    }
}

/// A/B overhead of the telemetry layer: mapper evaluations/second with
/// collection at `level` relative to telemetry off, as the median of
/// per-pair on/off ratios over `reps` alternating off→on pairs. Pairing
/// adjacent runs makes each ratio see the same machine-load conditions, so
/// slow drift (a sibling process, frequency scaling) cancels instead of
/// landing on one side — the estimator a 2 % tolerance needs on shared
/// runners. 1.0 means free; the CI gate requires
/// ≥ `1 − MM_GATE_TELEMETRY_TOL` for the journal level (default 0.98) and
/// ≥ `1 − MM_GATE_TELEMETRY_SPANS_TOL` for the spans level (default 0.97).
///
/// Toggles the process-global telemetry level while measuring and restores
/// the previous level before returning, so call it from a bench binary —
/// not concurrently with other telemetry consumers.
pub fn measure_telemetry_overhead_at(
    model: &CostModel,
    space: &MapSpace,
    evals_per_thread: u64,
    seed: u64,
    reps: usize,
    level: mm_telemetry::Level,
) -> f64 {
    let evaluator: Arc<dyn mm_mapper::CostEvaluator> = Arc::new(ModelEvaluator::edp(model.clone()));
    let previous = mm_telemetry::level();
    let run_once = |level: mm_telemetry::Level| -> f64 {
        mm_telemetry::set_level(level);
        mm_telemetry::global().reset();
        let mapper = Mapper::new(MapperConfig {
            threads: 2,
            seed,
            termination: TerminationPolicy::search_size(evals_per_thread * 2),
            ..MapperConfig::default()
        });
        let watch = Stopwatch::start();
        let report = mapper.run(space, Arc::clone(&evaluator), |_| {
            Box::new(RandomSearch::new())
        });
        watch.rate(report.total_evaluations)
    };
    // Alternate off/on runs and ratio each adjacent pair, so machine-load
    // drift hits both sides of every ratio it lands in.
    let reps = reps.max(1);
    let mut ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let off = run_once(mm_telemetry::Level::Off);
        let on = run_once(level);
        if off > 0.0 {
            ratios.push(on / off);
        }
    }
    mm_telemetry::set_level(previous);
    mm_telemetry::global().reset();
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// [`measure_telemetry_overhead_at`] at the journal level (the PR-6 A/B).
pub fn measure_telemetry_overhead(
    model: &CostModel,
    space: &MapSpace,
    evals_per_thread: u64,
    seed: u64,
    reps: usize,
) -> f64 {
    measure_telemetry_overhead_at(
        model,
        space,
        evals_per_thread,
        seed,
        reps,
        mm_telemetry::Level::Journal,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_workloads::{evaluated_accelerator, table1};

    #[test]
    fn sweep_measures_and_serializes() {
        let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
        let arch = evaluated_accelerator();
        let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, target.problem.clone());
        let result = run_mapper_scaling(&model, &space, &[1, 2], 50, 7);

        assert_eq!(result.points.len(), 2);
        assert_eq!(result.at_threads(1).unwrap().total_evaluations, 50);
        assert_eq!(result.at_threads(2).unwrap().total_evaluations, 100);
        assert!(result.baseline_evals_per_sec > 0.0);
        assert!(result.points.iter().all(|p| p.evals_per_sec > 0.0));
        assert!(result.points.iter().all(|p| p.best_cost.is_finite()));

        let json = result.to_json();
        assert!(json.contains("\"bench\": \"mapper_throughput\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("available_parallelism"));
        assert!(
            !json.contains("telemetry_rel_throughput"),
            "unmeasured overhead must not emit a gateable key"
        );
    }

    #[test]
    fn telemetry_overhead_measures_and_serializes() {
        let _guard = crate::report::test_env_guard();
        let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
        let arch = evaluated_accelerator();
        let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, target.problem.clone());
        let previous = mm_telemetry::level();
        let rel = measure_telemetry_overhead(&model, &space, 60, 7, 1);
        assert!(rel > 0.0 && rel.is_finite());
        assert_eq!(mm_telemetry::level(), previous, "previous level restored");
        let rel_spans =
            measure_telemetry_overhead_at(&model, &space, 60, 7, 1, mm_telemetry::Level::Spans);
        assert!(rel_spans > 0.0 && rel_spans.is_finite());
        assert_eq!(mm_telemetry::level(), previous, "previous level restored");

        let mut result = run_mapper_scaling(&model, &space, &[1], 30, 7);
        result.telemetry_rel_throughput = Some(rel);
        result.telemetry_spans_rel_throughput = Some(rel_spans);
        let json = result.to_json();
        assert!(json.contains("\"telemetry_rel_throughput\": "));
        assert!(json.contains("\"telemetry_spans_rel_throughput\": "));
    }
}
