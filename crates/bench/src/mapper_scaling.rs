//! Threads-vs-throughput comparison for the parallel mapper: measure
//! evaluations/second of the classic single-threaded `Searcher` loop, then
//! of [`Mapper`] runs at increasing thread counts, under iso-per-thread
//! evaluation budgets.
//!
//! The headline question — "does a 4-thread `Mapper` evaluate ≥ 2× as many
//! mappings per second as the single-threaded loop?" — only has a chance of
//! a *yes* on hardware with ≥ 2 usable cores; the result records
//! `available_parallelism` so consumers can interpret the numbers honestly.

use std::sync::Arc;

use mm_accel::CostModel;
use mm_mapper::{EvaluatorObjective, Mapper, MapperConfig, ModelEvaluator, TerminationPolicy};
use mm_mapspace::MapSpace;
use mm_search::{Budget, RandomSearch, Searcher};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::results_dir;

/// Throughput of one mapper configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Mapper thread count.
    pub threads: usize,
    /// Evaluations performed (threads × per-thread budget).
    pub total_evaluations: u64,
    /// Wall-clock seconds.
    pub wall_time_s: f64,
    /// Aggregate evaluations per second.
    pub evals_per_sec: f64,
    /// Best primary-metric cost found.
    pub best_cost: f64,
    /// Throughput relative to the single-threaded `Searcher` baseline.
    pub speedup_vs_baseline: f64,
}

/// The full threads-vs-throughput sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapperScalingResult {
    /// Problem name.
    pub problem: String,
    /// Evaluations given to each thread at every point (iso-per-thread).
    pub evals_per_thread: u64,
    /// Evaluations/second of the classic single-threaded `Searcher` loop.
    pub baseline_evals_per_sec: f64,
    /// `std::thread::available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    /// One entry per measured thread count.
    pub points: Vec<ScalingPoint>,
}

impl MapperScalingResult {
    /// The point measured at `threads`, if any.
    pub fn at_threads(&self, threads: usize) -> Option<&ScalingPoint> {
        self.points.iter().find(|p| p.threads == threads)
    }

    /// Serialize as the `BENCH_mapper.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"mapper_throughput\",\n");
        out.push_str(&format!("  \"problem\": {:?},\n", self.problem));
        out.push_str(&format!(
            "  \"evals_per_thread\": {},\n",
            self.evals_per_thread
        ));
        out.push_str(&format!(
            "  \"baseline_single_thread_searcher_evals_per_sec\": {:.3},\n",
            self.baseline_evals_per_sec
        ));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"total_evaluations\": {}, \"wall_time_s\": {:.6}, \
                 \"evals_per_sec\": {:.3}, \"best_cost\": {:.6e}, \"speedup_vs_baseline\": {:.3}}}{}\n",
                p.threads,
                p.total_evaluations,
                p.wall_time_s,
                p.evals_per_sec,
                p.best_cost,
                p.speedup_vs_baseline,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_mapper.json` under the results directory, returning the
    /// path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("BENCH_mapper.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Run the sweep: random search over `problem`'s map space, measuring the
/// single-threaded `Searcher` loop first and then a [`Mapper`] at each of
/// `thread_counts`, giving every thread `evals_per_thread` evaluations.
pub fn run_mapper_scaling(
    model: &CostModel,
    space: &MapSpace,
    thread_counts: &[usize],
    evals_per_thread: u64,
    seed: u64,
) -> MapperScalingResult {
    let evaluator: Arc<dyn mm_mapper::CostEvaluator> = Arc::new(ModelEvaluator::edp(model.clone()));

    // Baseline: the classic monolithic single-threaded Searcher loop.
    let mut objective = EvaluatorObjective::new(Arc::clone(&evaluator));
    let mut rng = StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let trace = RandomSearch::new().search(
        space,
        &mut objective,
        Budget::iterations(evals_per_thread),
        &mut rng,
    );
    let baseline_secs = start.elapsed().as_secs_f64();
    let baseline_evals_per_sec = if baseline_secs > 0.0 {
        trace.len() as f64 / baseline_secs
    } else {
        0.0
    };

    let points = thread_counts
        .iter()
        .map(|&threads| {
            let mapper = Mapper::new(MapperConfig {
                threads,
                seed,
                termination: TerminationPolicy::search_size(evals_per_thread * threads as u64),
                ..MapperConfig::default()
            });
            let report = mapper.run(space, Arc::clone(&evaluator), |_| {
                Box::new(RandomSearch::new())
            });
            ScalingPoint {
                threads,
                total_evaluations: report.total_evaluations,
                wall_time_s: report.wall_time_s,
                evals_per_sec: report.evals_per_sec,
                best_cost: report.best_cost(),
                speedup_vs_baseline: if baseline_evals_per_sec > 0.0 {
                    report.evals_per_sec / baseline_evals_per_sec
                } else {
                    0.0
                },
            }
        })
        .collect();

    MapperScalingResult {
        problem: space.problem().name.clone(),
        evals_per_thread,
        baseline_evals_per_sec,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_workloads::{evaluated_accelerator, table1};

    #[test]
    fn sweep_measures_and_serializes() {
        let target = table1::by_name("ResNet Conv_4").expect("table1 problem");
        let arch = evaluated_accelerator();
        let space = MapSpace::new(target.problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, target.problem.clone());
        let result = run_mapper_scaling(&model, &space, &[1, 2], 50, 7);

        assert_eq!(result.points.len(), 2);
        assert_eq!(result.at_threads(1).unwrap().total_evaluations, 50);
        assert_eq!(result.at_threads(2).unwrap().total_evaluations, 100);
        assert!(result.baseline_evals_per_sec > 0.0);
        assert!(result.points.iter().all(|p| p.evals_per_sec > 0.0));
        assert!(result.points.iter().all(|p| p.best_cost.is_finite()));

        let json = result.to_json();
        assert!(json.contains("\"bench\": \"mapper_throughput\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("available_parallelism"));
    }
}
