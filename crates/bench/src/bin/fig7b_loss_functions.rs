//! Experiment E7 — Figure 7b: choosing the surrogate loss function.
//!
//! Trains three surrogates (MSE, MAE, Huber) on identical data and compares
//! (a) their regression quality and (b) the quality of Phase-2 search using
//! each surrogate on a held-out target problem. The paper finds Huber best:
//! MSE over-punishes outliers in the heavy-tailed cost distribution, MAE
//! under-punishes small errors. Writes `results/fig7b_loss_functions.csv`.

use mm_accel::CostModel;
use mm_bench::output;
use mm_bench::report::{self, fmt, format_table};
use mm_bench::{train_surrogate_with_config, ExperimentScale};
use mm_core::{GradientSearch, Phase2Config};
use mm_nn::Loss;
use mm_search::Budget;
use mm_workloads::evaluated_accelerator;
use mm_workloads::table1::{self, Algorithm};
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Figure 7b (loss-function choice), scale '{}'", scale.name);
    let target = table1::by_name("ResNet Conv_4")
        .expect("target problem")
        .problem;
    let model = CostModel::new(evaluated_accelerator(), target.clone());

    let losses = [
        ("MSE", Loss::Mse),
        ("MAE", Loss::Mae),
        ("Huber", Loss::Huber { delta: 1.0 }),
    ];
    let mut rows = Vec::new();
    for (name, loss) in losses {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF17B);
        let mut config = scale.phase1_config();
        config.loss = loss;
        println!("training CNN surrogate with {name} loss…");
        let (surrogate, history) =
            train_surrogate_with_config(Algorithm::CnnLayer, &config, &mut rng)
                .expect("surrogate training");
        let gs = GradientSearch::new(&surrogate, target.clone(), Phase2Config::default())
            .expect("family match");
        let mut search_rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
        let trace = gs.run(
            Budget::iterations(scale.search_iterations),
            &model,
            &mut search_rng,
        );
        let normalized = trace.best_cost / model.lower_bound().edp;
        rows.push(vec![
            name.to_string(),
            fmt(history.final_train_loss() as f64),
            fmt(history.final_test_loss() as f64),
            fmt(normalized),
        ]);
    }

    let path = report::write_csv(
        "fig7b_loss_functions.csv",
        &[
            "loss",
            "final_train_loss",
            "final_test_loss",
            output::BEST_NORMALIZED_EDP_COLUMN,
        ],
        &rows,
    )
    .expect("write results");
    println!(
        "{}",
        format_table(
            &[
                "loss",
                "train loss",
                "test loss",
                output::BEST_NORMALIZED_EDP_LABEL
            ],
            &rows
        )
    );
    println!("(the paper selects Huber; lower search EDP is better)");
    println!("wrote {}", path.display());
}
