//! Experiment E6 — Figure 7a: surrogate train/test loss over epochs.
//!
//! Trains the CNN-Layer surrogate and reports the per-epoch training and
//! held-out test loss; the paper's Figure 7a shows both converging together
//! (no overfitting). Writes `results/fig7a_loss.csv`.

use mm_bench::report::{self, fmt, format_table};
use mm_bench::{train_surrogate, ExperimentScale};
use mm_workloads::table1::Algorithm;
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Figure 7a (training/test loss), scale '{}': {} samples, {} epochs",
        scale.name, scale.surrogate_samples, scale.surrogate_epochs
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let (_surrogate, history) =
        train_surrogate(Algorithm::CnnLayer, &scale, &mut rng).expect("surrogate training");

    let rows: Vec<Vec<String>> = history
        .train_loss
        .iter()
        .zip(&history.test_loss)
        .enumerate()
        .map(|(epoch, (tr, te))| vec![epoch.to_string(), fmt(*tr as f64), fmt(*te as f64)])
        .collect();
    let path = report::write_csv(
        "fig7a_loss.csv",
        &["epoch", "train_loss", "test_loss"],
        &rows,
    )
    .expect("write results");

    println!("{}", format_table(&["epoch", "train", "test"], &rows));
    println!(
        "final train loss {} / test loss {} (test tracks train => no overfitting)",
        fmt(history.final_train_loss() as f64),
        fmt(history.final_test_loss() as f64)
    );
    println!("wrote {}", path.display());
}
