//! Experiment E8 — Figure 7c: sensitivity to training-set size.
//!
//! Trains surrogates on nested subsets of one large training set (the paper
//! uses 1 M / 2 M / 5 M / 10 M samples; we scale the absolute counts down but
//! keep the 1:2:5:10 ratios) and compares the Phase-2 search quality obtained
//! with each. The paper's observation — search quality is not very sensitive
//! to dataset size beyond a modest threshold — should be visible as a
//! flattening curve. Writes `results/fig7c_dataset_size.csv`.

use mm_accel::CostModel;
use mm_bench::output;
use mm_bench::report::{self, fmt, format_table};
use mm_bench::ExperimentScale;
use mm_core::{generate_training_set, GradientSearch, Phase2Config, Surrogate};
use mm_search::Budget;
use mm_workloads::cnn::CnnFamily;
use mm_workloads::evaluated_accelerator;
use mm_workloads::table1;
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    let target = table1::by_name("ResNet Conv_3")
        .expect("target problem")
        .problem;
    let arch = evaluated_accelerator();
    let model = CostModel::new(arch.clone(), target.clone());

    // The paper's 1M/2M/5M/10M ladder, scaled down to the harness size.
    let full = scale.surrogate_samples;
    let sizes = [full / 10, full / 5, full / 2, full];
    println!(
        "Figure 7c (dataset-size sensitivity), scale '{}': sizes {:?}",
        scale.name, sizes
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF17C);
    println!("generating the full training set ({full} samples)…");
    let full_dataset = generate_training_set(
        &arch,
        &CnnFamily::default(),
        full,
        scale.mappings_per_problem,
        &mut rng,
    )
    .expect("dataset generation");

    let mut rows = Vec::new();
    for &n in &sizes {
        let subset = full_dataset.truncated(n.max(64));
        let mut train_rng = rand::rngs::StdRng::seed_from_u64(0x7C);
        let (surrogate, history) = Surrogate::train(
            arch.clone(),
            &subset,
            &scale.phase1_config(),
            &mut train_rng,
        )
        .expect("surrogate training");
        let gs = GradientSearch::new(&surrogate, target.clone(), Phase2Config::default())
            .expect("family match");
        let mut search_rng = rand::rngs::StdRng::seed_from_u64(0x5EED7C);
        let trace = gs.run(
            Budget::iterations(scale.search_iterations),
            &model,
            &mut search_rng,
        );
        rows.push(vec![
            subset.len().to_string(),
            fmt(history.final_test_loss() as f64),
            fmt(trace.best_cost / model.lower_bound().edp),
        ]);
        println!("  {} samples done", subset.len());
    }

    let path = report::write_csv(
        "fig7c_dataset_size.csv",
        &[
            "train_samples",
            "final_test_loss",
            output::BEST_NORMALIZED_EDP_COLUMN,
        ],
        &rows,
    )
    .expect("write results");
    println!(
        "{}",
        format_table(
            &["samples", "test loss", output::BEST_NORMALIZED_EDP_LABEL],
            &rows
        )
    );
    println!("(search quality should flatten once the dataset is 'large enough')");
    println!("wrote {}", path.display());
}
