//! CI bench-regression gate (`cargo run -p mm-bench --bin bench_gate`).
//!
//! Diffs fresh `BENCH_*.json` results against the checked-in baselines and
//! exits non-zero when any quality metric (`best_cost`,
//! `geomean_best_edp`) regresses more than `MM_GATE_EDP_TOL` (default
//! 25 %) or any throughput metric (`*evals_per_sec`) drops more than
//! `MM_GATE_THROUGHPUT_TOL` (default 25 %; CI loosens this, since hosted
//! runners are not the machine that produced the baselines — quality
//! metrics are seed-deterministic and stay tight).
//!
//! Directories:
//!
//! * baselines — `MM_GATE_BASELINE_DIR`, default `crates/bench/results`
//!   (the checked-in files);
//! * fresh — `MM_GATE_FRESH_DIR`, else the usual results dir
//!   (`MM_RESULTS_DIR`, default `results`), where the bench mains just
//!   wrote their JSON.

use std::path::PathBuf;

use mm_bench::gate::{run_gate, GateTolerances};
use mm_bench::report::results_dir;

fn main() {
    let baseline_dir = std::env::var("MM_GATE_BASELINE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("crates/bench/results"));
    let fresh_dir = std::env::var("MM_GATE_FRESH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| results_dir());
    let tolerances = GateTolerances::from_env();

    println!(
        "bench gate: baselines {} vs fresh {} (quality tol {:.0}%, throughput tol {:.0}%)",
        baseline_dir.display(),
        fresh_dir.display(),
        tolerances.quality * 100.0,
        tolerances.throughput * 100.0,
    );
    let report = run_gate(&baseline_dir, &fresh_dir, tolerances);
    for note in &report.notes {
        println!("note: {note}");
    }
    for check in &report.checks {
        println!("{check}");
    }
    for error in &report.errors {
        eprintln!("error: {error}");
    }

    let failures = report.failures();
    if report.passed() {
        println!(
            "bench gate passed: {} metrics within tolerance",
            report.checks.len()
        );
    } else {
        eprintln!(
            "bench gate FAILED: {} of {} metrics regressed, {} hard errors",
            failures.len(),
            report.checks.len(),
            report.errors.len()
        );
        std::process::exit(1);
    }
}
