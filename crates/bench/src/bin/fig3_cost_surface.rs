//! Experiment E1 — Figure 3: the non-smooth, non-convex cost surface.
//!
//! Sweeps two tile-size attributes (the L2 tiles of the `C` and `K`
//! dimensions) of a mapping for ResNet Conv_4 on the evaluated accelerator
//! and reports the EDP at every grid point, normalized to the algorithmic
//! minimum. The paper's Figure 3 plots the same kind of 2-D slice as a heat
//! map; `results/fig3_cost_surface.csv` contains `(tile_c, tile_k, edp)`
//! triples ready for plotting.

use mm_accel::CostModel;
use mm_bench::report::{self, fmt};
use mm_mapspace::{MapSpace, Mapping};
use mm_workloads::{evaluated_accelerator, table1};

fn main() {
    let target = table1::by_name("ResNet Conv_4").expect("table 1 problem");
    let problem = target.problem;
    let arch = evaluated_accelerator();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch, problem.clone());

    // Base mapping: a reasonable hand-rolled starting point; the sweep
    // varies the L2 tile sizes of the K and C dimensions.
    let k = problem.dim_by_name("K").expect("K dim");
    let c = problem.dim_by_name("C").expect("C dim");
    let mut base = Mapping::minimal(&problem);
    base.parallel[k.index()] = 16;
    base.parallel[c.index()] = 16;
    for d in problem.dims() {
        base.tiles[0][d.index()] = 1;
        base.tiles[1][d.index()] = problem.dim_size(d).min(4);
    }

    let k_size = problem.dim_size(k);
    let c_size = problem.dim_size(c);
    let steps = 24usize;
    let mut rows = Vec::new();
    let mut min_edp = f64::INFINITY;
    let mut max_edp = 0.0f64;

    for i in 1..=steps {
        for j in 1..=steps {
            let tile_k = (k_size * i as u64 / steps as u64).max(1);
            let tile_c = (c_size * j as u64 / steps as u64).max(1);
            let mut m = base.clone();
            m.tiles[1][k.index()] = tile_k;
            m.tiles[1][c.index()] = tile_c;
            space.repair(&mut m);
            let edp = model.normalized_edp(&m);
            min_edp = min_edp.min(edp);
            max_edp = max_edp.max(edp);
            rows.push(vec![tile_k.to_string(), tile_c.to_string(), fmt(edp)]);
        }
    }

    let path = report::write_csv(
        "fig3_cost_surface.csv",
        &["tile_k_l2", "tile_c_l2", "normalized_edp"],
        &rows,
    )
    .expect("write results");
    println!("Figure 3 (cost surface) — problem: {problem}");
    println!("  grid: {steps} x {steps} L2 tile sizes of K and C");
    println!(
        "  normalized EDP range: {} .. {}",
        fmt(min_edp),
        fmt(max_edp)
    );
    println!(
        "  surface roughness (max/min ratio): {}",
        fmt(max_edp / min_edp)
    );
    println!("  wrote {}", path.display());
}
