//! Experiment E4 — Figure 5: iso-iteration comparison.
//!
//! Every search method (Simulated Annealing, Genetic Algorithm, RL, random
//! sampling, and Mind Mappings) is run for the same number of cost-function
//! evaluations on every Table 1 target problem; for the baselines those are
//! queries of the reference cost model, for Mind Mappings they are surrogate
//! queries (Section 5.2). Results are averaged over `MM_RUNS` runs and
//! reported as EDP normalized to the algorithmic minimum.
//!
//! Outputs `results/fig5_traces.csv` (per-iteration best-so-far curves) and
//! `results/fig5_summary.csv` (final best per method per problem).

use mm_bench::comparison::{run_comparison, MethodSelection};
use mm_bench::output;
use mm_bench::report::{self, fmt, format_table};
use mm_bench::{geometric_mean, train_surrogate, ExperimentScale};
use mm_search::Budget;
use mm_workloads::table1::{self, Algorithm};
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Figure 5 (iso-iteration), scale '{}': {} iterations, {} runs/method",
        scale.name, scale.search_iterations, scale.runs
    );

    // Phase 1: one surrogate per target algorithm (Section 5.3).
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    println!(
        "training CNN-Layer surrogate ({} samples)…",
        scale.surrogate_samples
    );
    let (cnn_surrogate, _) =
        train_surrogate(Algorithm::CnnLayer, &scale, &mut rng).expect("CNN surrogate");
    println!(
        "training MTTKRP surrogate ({} samples)…",
        scale.surrogate_samples
    );
    let (mttkrp_surrogate, _) =
        train_surrogate(Algorithm::Mttkrp, &scale, &mut rng).expect("MTTKRP surrogate");

    let mut trace_rows = Vec::new();
    let mut summary_rows = Vec::new();
    let mut ratios_sa = Vec::new();
    let mut ratios_ga = Vec::new();
    let mut ratios_rl = Vec::new();
    let mut mm_norm = Vec::new();

    for target in table1::all_problems() {
        let surrogate = match target.algorithm {
            Algorithm::CnnLayer => &cnn_surrogate,
            Algorithm::Mttkrp => &mttkrp_surrogate,
        };
        println!("searching {} …", target.problem.name);
        let result = run_comparison(
            &target.problem,
            Some(surrogate),
            Budget::iterations(scale.search_iterations),
            scale.runs,
            MethodSelection::default(),
            0xF1605 ^ target.problem.name.len() as u64,
        );

        let mut row = vec![target.problem.name.clone()];
        for m in &result.methods {
            row.push(format!("{}={}", m.method, fmt(m.best_normalized_edp)));
            // Down-sample the per-iteration trace for the CSV.
            for p in m
                .trace
                .points
                .iter()
                .step_by(10.max(m.trace.points.len() / 200))
            {
                trace_rows.push(vec![
                    target.problem.name.clone(),
                    m.method.clone(),
                    p.queries.to_string(),
                    fmt(p.best_cost),
                ]);
            }
        }
        summary_rows.push(row);

        if let Some(r) = result.ratio_vs_mm("SA") {
            ratios_sa.push(r);
        }
        if let Some(r) = result.ratio_vs_mm("GA") {
            ratios_ga.push(r);
        }
        if let Some(r) = result.ratio_vs_mm("RL") {
            ratios_rl.push(r);
        }
        if let Some(v) = result.best_of("MM") {
            mm_norm.push(v);
        }
    }

    let traces_path = report::write_csv(
        "fig5_traces.csv",
        &["problem", "method", "iteration", "best_normalized_edp"],
        &trace_rows,
    )
    .expect("write traces");
    let summary_path = report::write_csv(
        "fig5_summary.csv",
        &["problem", output::METHODS_SUMMARY_COLUMN],
        &summary_rows
            .iter()
            .map(|r| vec![r[0].clone(), r[1..].join(" ")])
            .collect::<Vec<_>>(),
    )
    .expect("write summary");

    println!("\nFinal best normalized EDP per method:");
    println!(
        "{}",
        format_table(
            &["problem", "results"],
            &summary_rows
                .iter()
                .map(|r| vec![r[0].clone(), r[1..].join("  ")])
                .collect::<Vec<_>>()
        )
    );
    println!("Average EDP improvement of Mind Mappings (geometric mean across problems):");
    println!(
        "  vs SA: {}x   (paper: 1.40x)",
        fmt(geometric_mean(&ratios_sa))
    );
    println!(
        "  vs GA: {}x   (paper: 1.76x)",
        fmt(geometric_mean(&ratios_ga))
    );
    println!(
        "  vs RL: {}x   (paper: 1.29x)",
        fmt(geometric_mean(&ratios_rl))
    );
    output::print_mm_distance_to_minimum(&fmt(geometric_mean(&mm_norm)));
    println!(
        "wrote {} and {}",
        traces_path.display(),
        summary_path.display()
    );
}
