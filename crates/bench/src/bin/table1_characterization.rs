//! Experiments E2 + E3 — Table 1 and the map-space characterization of
//! Section 5.1.3.
//!
//! Prints the eight target problems (dimensions, MAC counts, map-space size
//! estimates) and, for each, the mean and standard deviation of
//! lower-bound-normalized energy and EDP over uniformly sampled valid
//! mappings (the paper reports (44.2, 231.4) for CNN-Layer and (48.0, 51.2)
//! for MTTKRP over 1 M samples). Writes `results/table1_characterization.csv`.

use mm_bench::comparison::random_sampling_statistics;
use mm_bench::report::{self, fmt, format_table};
use mm_bench::ExperimentScale;
use mm_workloads::table1::{self, Algorithm};

fn main() {
    let scale = ExperimentScale::from_env();
    let samples_per_problem = (scale.characterization_samples / 8).max(100);
    println!(
        "Table 1 + Section 5.1.3 characterization, scale '{}': {} samples per problem",
        scale.name, samples_per_problem
    );

    let mut rows = Vec::new();
    let mut per_algo: std::collections::HashMap<Algorithm, Vec<f64>> = Default::default();
    for (i, target) in table1::all_problems().into_iter().enumerate() {
        let p = &target.problem;
        let arch = mm_workloads::evaluated_accelerator();
        let space = mm_mapspace::MapSpace::new(p.clone(), arch.mapping_constraints());
        let (e_mean, e_std, edp_mean, edp_std) =
            random_sampling_statistics(p, samples_per_problem, 0xCAFE + i as u64);
        per_algo
            .entry(target.algorithm)
            .or_default()
            .extend([e_mean, e_std]);
        rows.push(vec![
            p.name.clone(),
            target.algorithm.to_string(),
            p.dim_names
                .iter()
                .zip(&p.dim_sizes)
                .map(|(n, s)| format!("{n}={s}"))
                .collect::<Vec<_>>()
                .join(" "),
            format!("{:.1e}", p.total_macs() as f64),
            format!("1e{:.1}", space.log10_size_estimate()),
            fmt(e_mean),
            fmt(e_std),
            fmt(edp_mean),
            fmt(edp_std),
        ]);
        println!("  {} characterized", p.name);
    }

    let header = [
        "problem",
        "algorithm",
        "dimensions",
        "MACs",
        "map-space size",
        "energy/LB mean",
        "energy/LB std",
        "EDP/LB mean",
        "EDP/LB std",
    ];
    let path =
        report::write_csv("table1_characterization.csv", &header, &rows).expect("write results");
    println!("{}", format_table(&header, &rows));
    println!(
        "paper reference (1 M samples): CNN-Layer energy/LB (mean, std) = (44.2, 231.4); \
         MTTKRP = (48.0, 51.2)"
    );
    println!("wrote {}", path.display());
}
