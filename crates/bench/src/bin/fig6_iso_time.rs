//! Experiment E5 — Figure 6: iso-time comparison.
//!
//! Every method is given the same wall-clock budget per problem. The
//! baselines must pay for a reference cost-model evaluation on every step,
//! while Mind Mappings only queries its surrogate, so it completes far more
//! steps per unit time (Section 5.4.2). Also reports seconds-per-step for
//! every method (the paper's 153.7x / 286.8x / 425.5x per-step speedups).
//!
//! Outputs `results/fig6_traces.csv` and `results/fig6_summary.csv`.

use mm_bench::output;
use std::time::Duration;

use mm_bench::comparison::{run_comparison, MethodSelection};
use mm_bench::report::{self, fmt, format_table};
use mm_bench::{geometric_mean, train_surrogate, ExperimentScale};
use mm_search::Budget;
use mm_workloads::table1::{self, Algorithm};
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    let budget = Duration::from_millis(scale.time_budget_ms);
    println!(
        "Figure 6 (iso-time), scale '{}': {} ms wall-clock per method, {} runs",
        scale.name, scale.time_budget_ms, scale.runs
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(43);
    println!("{}", output::TRAINING_CNN_SURROGATE);
    let (cnn_surrogate, _) =
        train_surrogate(Algorithm::CnnLayer, &scale, &mut rng).expect("CNN surrogate");
    println!("{}", output::TRAINING_MTTKRP_SURROGATE);
    let (mttkrp_surrogate, _) =
        train_surrogate(Algorithm::Mttkrp, &scale, &mut rng).expect("MTTKRP surrogate");

    let mut trace_rows = Vec::new();
    let mut summary_rows = Vec::new();
    let mut ratios = [Vec::new(), Vec::new(), Vec::new()]; // SA, GA, RL
    let mut step_cost_rows = Vec::new();

    for target in table1::all_problems() {
        let surrogate = match target.algorithm {
            Algorithm::CnnLayer => &cnn_surrogate,
            Algorithm::Mttkrp => &mttkrp_surrogate,
        };
        println!("searching {} …", target.problem.name);
        let result = run_comparison(
            &target.problem,
            Some(surrogate),
            Budget::queries_and_time(u64::MAX / 2, budget),
            scale.runs,
            MethodSelection::default(),
            0xF1606 ^ target.problem.name.len() as u64,
        );

        let mm_step = result
            .methods
            .iter()
            .find(|m| m.method == "MM")
            .map(|m| m.seconds_per_query)
            .unwrap_or(f64::NAN);

        let mut row = vec![target.problem.name.clone()];
        for m in &result.methods {
            row.push(format!("{}={}", m.method, fmt(m.best_normalized_edp)));
            for p in m
                .trace
                .points
                .iter()
                .step_by(10.max(m.trace.points.len() / 200))
            {
                trace_rows.push(vec![
                    target.problem.name.clone(),
                    m.method.clone(),
                    fmt(p.elapsed_s),
                    fmt(p.best_cost),
                ]);
            }
            step_cost_rows.push(vec![
                target.problem.name.clone(),
                m.method.clone(),
                fmt(m.seconds_per_query),
                fmt(m.seconds_per_query / mm_step.max(1e-12)),
            ]);
        }
        summary_rows.push(row);
        for (i, name) in ["SA", "GA", "RL"].iter().enumerate() {
            if let Some(r) = result.ratio_vs_mm(name) {
                ratios[i].push(r);
            }
        }
    }

    report::write_csv(
        "fig6_traces.csv",
        &["problem", "method", "elapsed_s", "best_normalized_edp"],
        &trace_rows,
    )
    .expect("write traces");
    report::write_csv(
        "fig6_step_cost.csv",
        &["problem", "method", "seconds_per_step", "slowdown_vs_mm"],
        &step_cost_rows,
    )
    .expect("write step costs");
    let summary_path = report::write_csv(
        "fig6_summary.csv",
        &["problem", output::METHODS_SUMMARY_COLUMN],
        &summary_rows
            .iter()
            .map(|r| vec![r[0].clone(), r[1..].join(" ")])
            .collect::<Vec<_>>(),
    )
    .expect("write summary");

    println!("\nFinal best normalized EDP per method (iso-time):");
    println!(
        "{}",
        format_table(
            &["problem", "results"],
            &summary_rows
                .iter()
                .map(|r| vec![r[0].clone(), r[1..].join("  ")])
                .collect::<Vec<_>>()
        )
    );
    println!("Average iso-time EDP improvement of Mind Mappings (geometric mean):");
    println!(
        "  vs SA: {}x   (paper: 3.16x)",
        fmt(geometric_mean(&ratios[0]))
    );
    println!(
        "  vs GA: {}x   (paper: 4.19x)",
        fmt(geometric_mean(&ratios[1]))
    );
    println!(
        "  vs RL: {}x   (paper: 2.90x)",
        fmt(geometric_mean(&ratios[2]))
    );
    println!("wrote {}", summary_path.display());
}
