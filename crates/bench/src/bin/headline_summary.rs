//! Experiment E9 — headline numbers (abstract / Section 5.4.3).
//!
//! Runs the iso-iteration and iso-time comparisons on a subset of Table 1
//! problems and reports the geometric-mean EDP improvement of Mind Mappings
//! over SA, GA, and RL, its distance from the algorithmic minimum, and its
//! per-step speedup — the numbers quoted in the abstract
//! (1.40× / 1.76× / 1.29× iso-iteration, 3.16× / 4.19× / 2.90× iso-time,
//! 5.32× from the lower bound, 153.7× / 286.8× / 425.5× faster per step).
//!
//! Writes `results/headline_summary.csv`.

use mm_bench::output;
use std::time::Duration;

use mm_bench::comparison::{run_comparison, MethodSelection};
use mm_bench::report::{self, fmt, format_table};
use mm_bench::{geometric_mean, train_surrogate, ExperimentScale};
use mm_search::Budget;
use mm_workloads::table1::{self, Algorithm};
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Headline summary, scale '{}'", scale.name);

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0EAD);
    println!("{}", output::TRAINING_CNN_SURROGATE);
    let (cnn, _) = train_surrogate(Algorithm::CnnLayer, &scale, &mut rng).expect("CNN surrogate");
    println!("{}", output::TRAINING_MTTKRP_SURROGATE);
    let (mttkrp, _) =
        train_surrogate(Algorithm::Mttkrp, &scale, &mut rng).expect("MTTKRP surrogate");

    // A representative subset keeps the default run short; MM_SCALE=large
    // covers all eight problems.
    let problems: Vec<_> = if scale.name == "large" {
        table1::all_problems()
    } else {
        ["ResNet Conv_4", "AlexNet Conv_2", "MTTKRP_0"]
            .iter()
            .map(|n| table1::by_name(n).expect("table1 problem"))
            .collect()
    };

    let mut iso_iter = [Vec::new(), Vec::new(), Vec::new()];
    let mut iso_time = [Vec::new(), Vec::new(), Vec::new()];
    let mut mm_gap = Vec::new();
    let mut step_speedups = [Vec::new(), Vec::new(), Vec::new()];
    let mut rows = Vec::new();

    for target in &problems {
        let surrogate = match target.algorithm {
            Algorithm::CnnLayer => &cnn,
            Algorithm::Mttkrp => &mttkrp,
        };
        println!("iso-iteration: {}", target.problem.name);
        let iter_result = run_comparison(
            &target.problem,
            Some(surrogate),
            Budget::iterations(scale.search_iterations),
            scale.runs,
            MethodSelection::default(),
            0xAB ^ target.problem.name.len() as u64,
        );
        println!("iso-time: {}", target.problem.name);
        let time_result = run_comparison(
            &target.problem,
            Some(surrogate),
            Budget::queries_and_time(u64::MAX / 2, Duration::from_millis(scale.time_budget_ms)),
            scale.runs,
            MethodSelection::default(),
            0xCD ^ target.problem.name.len() as u64,
        );

        for (i, name) in ["SA", "GA", "RL"].iter().enumerate() {
            if let Some(r) = iter_result.ratio_vs_mm(name) {
                iso_iter[i].push(r);
            }
            if let Some(r) = time_result.ratio_vs_mm(name) {
                iso_time[i].push(r);
            }
            let mm_step = time_result
                .methods
                .iter()
                .find(|m| m.method == "MM")
                .map(|m| m.seconds_per_query)
                .unwrap_or(f64::NAN);
            if let Some(b) = time_result.methods.iter().find(|m| m.method == *name) {
                step_speedups[i].push(b.seconds_per_query / mm_step.max(1e-12));
            }
        }
        if let Some(v) = iter_result.best_of("MM") {
            mm_gap.push(v);
        }
        rows.push(vec![
            target.problem.name.clone(),
            fmt(iter_result.best_of("MM").unwrap_or(f64::NAN)),
            fmt(iter_result.ratio_vs_mm("SA").unwrap_or(f64::NAN)),
            fmt(iter_result.ratio_vs_mm("GA").unwrap_or(f64::NAN)),
            fmt(iter_result.ratio_vs_mm("RL").unwrap_or(f64::NAN)),
            fmt(time_result.ratio_vs_mm("SA").unwrap_or(f64::NAN)),
            fmt(time_result.ratio_vs_mm("GA").unwrap_or(f64::NAN)),
            fmt(time_result.ratio_vs_mm("RL").unwrap_or(f64::NAN)),
        ]);
    }

    let header = [
        "problem",
        "MM EDP/LB",
        "iso-iter SA/MM",
        "iso-iter GA/MM",
        "iso-iter RL/MM",
        "iso-time SA/MM",
        "iso-time GA/MM",
        "iso-time RL/MM",
    ];
    let path = report::write_csv("headline_summary.csv", &header, &rows).expect("write results");
    println!("{}", format_table(&header, &rows));

    println!("Geometric means (this reproduction vs. paper):");
    println!(
        "  iso-iteration improvement vs SA/GA/RL: {} / {} / {}   (paper: 1.40 / 1.76 / 1.29)",
        fmt(geometric_mean(&iso_iter[0])),
        fmt(geometric_mean(&iso_iter[1])),
        fmt(geometric_mean(&iso_iter[2]))
    );
    println!(
        "  iso-time improvement vs SA/GA/RL:     {} / {} / {}   (paper: 3.16 / 4.19 / 2.90)",
        fmt(geometric_mean(&iso_time[0])),
        fmt(geometric_mean(&iso_time[1])),
        fmt(geometric_mean(&iso_time[2]))
    );
    output::print_mm_distance_to_minimum(&fmt(geometric_mean(&mm_gap)));
    println!(
        "  per-step speedup of MM vs SA/GA/RL: {} / {} / {}   (paper: 153.7 / 286.8 / 425.5)",
        fmt(geometric_mean(&step_speedups[0])),
        fmt(geometric_mean(&step_speedups[1])),
        fmt(geometric_mean(&step_speedups[2]))
    );
    println!("wrote {}", path.display());
}
