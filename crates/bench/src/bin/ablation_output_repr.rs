//! Experiment E10 — output-representation ablation (Section 4.1.3).
//!
//! The paper reports that predicting a rich vector of meta-statistics (and
//! deriving EDP from it) gives a surrogate with 32.8× lower EDP
//! mean-squared error than a surrogate trained to predict EDP directly.
//! This binary trains both variants on identical data and compares their EDP
//! MSE on held-out mappings. Writes `results/ablation_output_repr.csv`.

use mm_accel::CostModel;
use mm_bench::report::{self, fmt, format_table};
use mm_bench::ExperimentScale;
use mm_core::dataset::lower_bound_reference;
use mm_core::{generate_training_set, Surrogate, SurrogateDataset};
use mm_mapspace::MapSpace;
use mm_workloads::cnn::{CnnFamily, CnnLayer};
use mm_workloads::evaluated_accelerator;
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    let arch = evaluated_accelerator();
    println!("Output-representation ablation, scale '{}'", scale.name);

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xAB1A);
    println!(
        "generating training data ({} samples)…",
        scale.surrogate_samples
    );
    let meta_dataset = generate_training_set(
        &arch,
        &CnnFamily::default(),
        scale.surrogate_samples,
        scale.mappings_per_problem,
        &mut rng,
    )
    .expect("dataset generation");

    // Scalar-output variant: same inputs, but the target is just the
    // normalized EDP (relative energy x relative cycles), stored under the
    // same ln(1 + x) transform the meta-statistics targets use.
    let t_len = meta_dataset.target_len();
    let scalar_targets: Vec<Vec<f32>> = meta_dataset
        .targets
        .iter()
        .map(|t| {
            let energy = mm_core::dataset::denormalize_meta_element(t[t_len - 1] as f64);
            let cycles = mm_core::dataset::denormalize_meta_element(t[t_len - 2] as f64);
            vec![(energy * cycles).ln_1p() as f32]
        })
        .collect();
    let scalar_dataset = SurrogateDataset {
        inputs: meta_dataset.inputs.clone(),
        targets: scalar_targets,
        num_dims: meta_dataset.num_dims,
        num_tensors: meta_dataset.num_tensors,
    };

    let config = scale.phase1_config();
    println!("training meta-statistics surrogate…");
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(1);
    let (meta_surrogate, _) =
        Surrogate::train(arch.clone(), &meta_dataset, &config, &mut rng_a).expect("training");
    println!("training direct-EDP surrogate…");
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(1);
    let (edp_surrogate, _) =
        Surrogate::train(arch.clone(), &scalar_dataset, &config, &mut rng_b).expect("training");

    // Held-out evaluation on an unseen Table 1 layer.
    let problem = CnnLayer::vgg_conv2().into_problem();
    let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
    let model = CostModel::new(arch.clone(), problem.clone());
    let reference = lower_bound_reference(&arch, &problem);
    let mut eval_rng = rand::rngs::StdRng::seed_from_u64(0xE7A1);
    let n_eval = 400;
    let mut meta_sq = 0.0;
    let mut scalar_sq = 0.0;
    for _ in 0..n_eval {
        let m = space.random_mapping(&mut eval_rng);
        let cost = model.evaluate(&m);
        let true_norm_edp = (cost.total_energy_pj / reference[reference.len() - 1])
            * (cost.cycles / reference[reference.len() - 2]);
        let meta_pred = meta_surrogate.predict_normalized_edp(&problem, &m);
        // The scalar surrogate's single output *is* the normalized EDP; its
        // "cycles" neuron does not exist, so read the raw prediction.
        let scalar_pred = edp_surrogate.predict_meta(&problem, &m)[0];
        meta_sq += (meta_pred - true_norm_edp).powi(2);
        scalar_sq += (scalar_pred - true_norm_edp).powi(2);
    }
    let meta_mse = meta_sq / n_eval as f64;
    let scalar_mse = scalar_sq / n_eval as f64;

    let rows = vec![
        vec!["meta-statistics (12 outputs)".to_string(), fmt(meta_mse)],
        vec!["direct EDP (1 output)".to_string(), fmt(scalar_mse)],
        vec![
            "MSE ratio (direct / meta)".to_string(),
            fmt(scalar_mse / meta_mse.max(1e-12)),
        ],
    ];
    let path = report::write_csv(
        "ablation_output_repr.csv",
        &["surrogate output representation", "EDP MSE (normalized)"],
        &rows,
    )
    .expect("write results");
    println!(
        "{}",
        format_table(&["output representation", "EDP MSE"], &rows)
    );
    println!("(paper: meta-statistics representation gives 32.8x lower EDP MSE)");
    println!("wrote {}", path.display());
}
