//! Pretty-print a `TELEMETRY_*.json` snapshot (and optionally its
//! `TRACE_*.json` sibling) as console tables: the phase-attribution profile
//! ("where does the time go"), the histogram percentiles, and the counters.
//!
//! ```text
//! telemetry_report results/TELEMETRY_mapper.json [results/TRACE_mapper.json]
//! ```
//!
//! The snapshot's `phases` array is the span profile the `spans` telemetry
//! level computed (total vs. self time per span name); histograms render
//! p50/p99 interpolated within their log2 buckets — the resolution the
//! recorder actually has.

use mm_bench::json::{parse_json, Json};
use mm_bench::report::{fmt, format_table};
use mm_telemetry::HistogramSnapshot;

fn u64_field(obj: &Json, key: &str) -> u64 {
    obj.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64
}

/// The phase-attribution table from the snapshot's `phases` array.
fn phase_table(doc: &Json) -> Option<String> {
    let Some(Json::Arr(phases)) = doc.get("phases") else {
        return None;
    };
    if phases.is_empty() {
        return None;
    }
    let total_self: u64 = phases.iter().map(|p| u64_field(p, "self_us")).sum();
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            let self_us = u64_field(p, "self_us");
            let share = if total_self > 0 {
                format!("{:.1}%", self_us as f64 / total_self as f64 * 100.0)
            } else {
                "-".to_string()
            };
            vec![
                p.get("phase")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                u64_field(p, "spans").to_string(),
                u64_field(p, "count").to_string(),
                fmt(u64_field(p, "total_us") as f64 / 1000.0),
                fmt(self_us as f64 / 1000.0),
                share,
            ]
        })
        .collect();
    Some(format_table(
        &["phase", "spans", "count", "total_ms", "self_ms", "self%"],
        &rows,
    ))
}

/// Rebuild a [`HistogramSnapshot`] from its snapshot-JSON rendering
/// (`{"count": N, "sum": N, "buckets": [[i, n], ...]}`).
fn histogram_from_json(h: &Json) -> HistogramSnapshot {
    let buckets = match h.get("buckets") {
        Some(Json::Arr(pairs)) => pairs
            .iter()
            .filter_map(|pair| match pair {
                Json::Arr(kv) if kv.len() == 2 => Some((
                    kv[0].as_f64().unwrap_or(0.0) as u8,
                    kv[1].as_f64().unwrap_or(0.0) as u64,
                )),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    };
    HistogramSnapshot {
        count: u64_field(h, "count"),
        sum: u64_field(h, "sum"),
        buckets,
    }
}

/// The histogram table: count, mean, and interpolated p50/p99 per name.
fn histogram_table(doc: &Json) -> Option<String> {
    let Some(Json::Obj(hists)) = doc.get("histograms") else {
        return None;
    };
    if hists.is_empty() {
        return None;
    }
    let rows: Vec<Vec<String>> = hists
        .iter()
        .map(|(name, h)| {
            let snap = histogram_from_json(h);
            vec![
                name.clone(),
                snap.count.to_string(),
                fmt(snap.mean()),
                fmt(snap.percentile(50.0)),
                fmt(snap.percentile(99.0)),
            ]
        })
        .collect();
    Some(format_table(
        &["histogram", "count", "mean", "p50", "p99"],
        &rows,
    ))
}

/// The counter table.
fn counter_table(doc: &Json) -> Option<String> {
    let Some(Json::Obj(counters)) = doc.get("counters") else {
        return None;
    };
    if counters.is_empty() {
        return None;
    }
    let rows: Vec<Vec<String>> = counters
        .iter()
        .map(|(name, v)| vec![name.clone(), fmt(v.as_f64().unwrap_or(0.0))])
        .collect();
    Some(format_table(&["counter", "value"], &rows))
}

/// Validate a Chrome trace file and summarize its contents.
fn trace_summary(text: &str) -> Result<String, String> {
    let doc = parse_json(text)?;
    let Json::Arr(events) = &doc else {
        return Err("trace is not a JSON array".to_string());
    };
    let mut tracks = 0usize;
    let mut spans = 0usize;
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => tracks += 1,
            Some("X") => spans += 1,
            _ => return Err("event without a recognized \"ph\" kind".to_string()),
        }
    }
    Ok(format!(
        "trace: valid Chrome trace-event JSON ({tracks} track(s), {spans} span(s))"
    ))
}

/// Render the full report for a parsed snapshot.
fn render(doc: &Json) -> String {
    let mut out = String::new();
    let level = doc.get("level").and_then(Json::as_str).unwrap_or("?");
    out.push_str(&format!("telemetry level: {level}\n"));
    let dropped_events = u64_field(doc, "dropped_events");
    let dropped_spans = u64_field(doc, "dropped_spans");
    if dropped_events > 0 || dropped_spans > 0 {
        out.push_str(&format!(
            "WARNING: dropped {dropped_events} event(s), {dropped_spans} span(s) — \
             the profile below is incomplete\n"
        ));
    }
    match phase_table(doc) {
        Some(table) => {
            out.push_str("\nphase attribution (self time, descending):\n");
            out.push_str(&table);
        }
        None => out.push_str("\nno spans recorded (run with MM_TELEMETRY=spans for a profile)\n"),
    }
    if let Some(table) = histogram_table(doc) {
        out.push_str("\nhistograms (values in recorded units):\n");
        out.push_str(&table);
    }
    if let Some(table) = counter_table(doc) {
        out.push_str("\ncounters:\n");
        out.push_str(&table);
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: telemetry_report <TELEMETRY_*.json> [TRACE_*.json]");
        std::process::exit(2);
    }
    let text = match std::fs::read_to_string(&args[0]) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args[0]);
            std::process::exit(1);
        }
    };
    let doc = match parse_json(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("unparsable snapshot {}: {e}", args[0]);
            std::process::exit(1);
        }
    };
    print!("{}", render(&doc));
    if let Some(trace_path) = args.get(1) {
        let trace_text = match std::fs::read_to_string(trace_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {trace_path}: {e}");
                std::process::exit(1);
            }
        };
        match trace_summary(&trace_text) {
            Ok(summary) => println!("\n{summary}"),
            Err(e) => {
                eprintln!("invalid trace {trace_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A real snapshot round-trip: record through the telemetry crate,
    /// render to JSON, and report from the rendered document.
    #[test]
    fn reports_a_real_snapshot() {
        let registry = mm_telemetry::Registry::new();
        mm_telemetry::set_level(mm_telemetry::Level::Spans);
        registry.counter("serve.jobs").bump(3);
        for v in [2, 3, 4, 7] {
            registry.histogram("mapper.batch").record_unchecked(v);
        }
        {
            let track = registry.track("mapper");
            let _outer = track.span("mapper.run");
            let _inner = track.span("searcher.propose");
        }
        let snap = registry.snapshot();
        mm_telemetry::set_level(mm_telemetry::Level::Off);

        let doc = parse_json(&snap.to_json()).expect("snapshot JSON parses");
        let report = render(&doc);
        assert!(report.contains("phase attribution"));
        assert!(report.contains("mapper.run"));
        assert!(report.contains("searcher.propose"));
        assert!(report.contains("mapper.batch"));
        assert!(report.contains("serve.jobs"));
        // p50 of [2,3,4,7] interpolates to exactly 4 in log2 buckets.
        assert!(report.contains('4'));
        assert!(!report.contains("WARNING"));

        let trace = trace_summary(&snap.to_chrome_trace()).expect("trace is valid");
        assert!(trace.contains("1 track(s), 2 span(s)"));
    }

    #[test]
    fn missing_spans_degrade_to_a_note() {
        let doc = parse_json(
            r#"{"level": "counters", "counters": {"a": 1}, "histograms": {},
                "tracks": {}, "phases": [], "events": [], "dropped_events": 0,
                "dropped_spans": 0}"#,
        )
        .unwrap();
        let report = render(&doc);
        assert!(report.contains("no spans recorded"));
        assert!(report.contains("counters:"));
    }

    #[test]
    fn dropped_spans_are_flagged() {
        let doc =
            parse_json(r#"{"level": "spans", "dropped_spans": 5, "dropped_events": 0}"#).unwrap();
        assert!(render(&doc).contains("WARNING"));
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(trace_summary("{}").is_err());
        assert!(trace_summary("[{\"ph\": \"Q\"}]").is_err());
        assert!(trace_summary("not json").is_err());
    }
}
