//! Shard-scaling measurement: best-EDP and coverage of the sharded mapper
//! across shard counts, budget schedules, and shard-axis combinations, over
//! conv1d + the Table 1 set.
//!
//! For each shard count (1/2/4/8) and each schedule (deterministic split vs
//! work stealing), every target problem gets one `Mapper` run with the map
//! space partitioned into pairwise-disjoint shards (`MapSpace::shard`) and a
//! fixed total evaluation budget; an axis sweep then holds the shard count
//! at 8 and restricts the partition to growing subsets of the mixed-radix
//! product (L2 order → +L1 order → +parallelism split → full product, plus
//! the full product with shard-aware horizon hints). The JSON
//! (`BENCH_shard.json`) records per point:
//!
//! * **best EDP** (geometric mean over the problem set) — does disjoint
//!   coverage help or hurt solution quality at iso-budget?
//! * **coverage** — how many distinct L2 loop orders the per-shard best
//!   mappings span (one restricted axis; 1 shard explores orders freely but
//!   reports a single best, `n` disjoint shards are *guaranteed* `≥ 1`
//!   distinct best region each);
//! * wall time and total evaluations (work stealing must spend the whole
//!   budget even when shards exhaust unevenly).

use std::sync::Arc;

use mm_accel::CostModel;
use mm_mapper::{
    CostEvaluator, Mapper, MapperConfig, MapperSchedule, ModelEvaluator, TerminationPolicy,
};
use mm_mapspace::{MapSpace, ProblemSpec, ShardAxisKind};
use mm_search::SimulatedAnnealing;
use mm_workloads::{evaluated_accelerator, table1};

use crate::report::{write_bench_json, Stopwatch};

/// One measured (shard count, schedule, axis subset) configuration.
#[derive(Debug, Clone)]
pub struct ShardBenchPoint {
    /// Number of pairwise-disjoint map-space shards.
    pub shards: usize,
    /// `"deterministic"` or `"work_stealing"`.
    pub schedule: String,
    /// Which shard axes the partition restricted (`"full"` = the whole
    /// mixed-radix product; `"full+hint"` additionally enables shard-aware
    /// horizon hints).
    pub axes: String,
    /// Geometric-mean best EDP (J·s) over the problem set.
    pub geomean_best_edp: f64,
    /// Σ distinct L2 loop orders among per-shard best mappings, over the
    /// problem set (coverage of the sharded axis).
    pub distinct_best_l2_orders: usize,
    /// Σ evaluations across all runs of this configuration.
    pub total_evaluations: u64,
    /// Σ wall seconds across all runs of this configuration.
    pub wall_s: f64,
}

/// The shard-scaling measurement set.
#[derive(Debug, Clone)]
pub struct ShardBenchResult {
    /// Problems measured (conv1d + the Table 1 rows).
    pub problems: Vec<String>,
    /// Evaluation budget per problem per configuration.
    pub evals_per_problem: u64,
    /// Worker threads executing the shards.
    pub threads: usize,
    /// `std::thread::available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    /// One point per (shard count, schedule).
    pub points: Vec<ShardBenchPoint>,
}

impl ShardBenchResult {
    /// Serialize as the `BENCH_shard.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&crate::output::bench_json_header(
            "shard_scaling",
            &self.problems,
            self.evals_per_problem,
            self.threads,
            self.available_parallelism,
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shards\": {}, \"schedule\": {:?}, \"axes\": {:?}, \
                 \"geomean_best_edp\": {:.6e}, \
                 \"distinct_best_l2_orders\": {}, \"total_evaluations\": {}, \
                 \"wall_s\": {:.6}}}{}\n",
                p.shards,
                p.schedule,
                p.axes,
                p.geomean_best_edp,
                p.distinct_best_l2_orders,
                p.total_evaluations,
                p.wall_s,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_shard.json` under the results directory (plus a
    /// telemetry sibling when collection is on), returning the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        write_bench_json("BENCH_shard.json", &self.to_json())
    }
}

/// The measured problem set: the toy conv1d plus every Table 1 row.
fn problem_set() -> Vec<ProblemSpec> {
    let mut problems = vec![ProblemSpec::conv1d(1024, 7)];
    problems.extend(table1::all_problems().into_iter().map(|t| t.problem));
    problems
}

/// One configuration of the sweep.
struct SweepPoint {
    shards: usize,
    schedule: MapperSchedule,
    /// `None` = the full axis product.
    axes: Option<Vec<ShardAxisKind>>,
    shard_horizon: bool,
    label: &'static str,
}

/// Run the shard-scaling sweep: shard counts 1/2/4/8 × deterministic vs
/// work-stealing schedules over the full axis product, plus an axis sweep
/// (growing subsets of the product, and the full product with shard-aware
/// horizon hints) at 8 shards; `evals` evaluations per problem per point.
pub fn run_shard_bench(evals: u64, threads: usize, seed: u64) -> ShardBenchResult {
    let arch = evaluated_accelerator();
    let problems = problem_set();
    let mut sweep = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        for schedule in [MapperSchedule::Deterministic, MapperSchedule::WorkStealing] {
            sweep.push(SweepPoint {
                shards,
                schedule,
                axes: None,
                shard_horizon: false,
                label: "full",
            });
        }
    }
    for (label, kinds) in [
        ("l2", vec![ShardAxisKind::OrderL2]),
        (
            "l2+l1",
            vec![ShardAxisKind::OrderL2, ShardAxisKind::OrderL1],
        ),
        (
            "l2+l1+par",
            vec![
                ShardAxisKind::OrderL2,
                ShardAxisKind::OrderL1,
                ShardAxisKind::Parallel,
            ],
        ),
    ] {
        sweep.push(SweepPoint {
            shards: 8,
            schedule: MapperSchedule::Deterministic,
            axes: Some(kinds),
            shard_horizon: false,
            label,
        });
    }
    sweep.push(SweepPoint {
        shards: 8,
        schedule: MapperSchedule::Deterministic,
        axes: None,
        shard_horizon: true,
        label: "full+hint",
    });

    let mut points = Vec::new();
    for cfg in &sweep {
        let mut log_sum = 0.0f64;
        let mut counted = 0usize;
        let mut distinct_orders = 0usize;
        let mut total_evaluations = 0u64;
        let watch = Stopwatch::start();
        for problem in &problems {
            let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
            let evaluator: Arc<dyn CostEvaluator> = Arc::new(ModelEvaluator::edp(CostModel::new(
                arch.clone(),
                problem.clone(),
            )));
            let mapper = Mapper::new(MapperConfig {
                threads,
                shards: Some(cfg.shards),
                shard_space: cfg.shards > 1,
                shard_axes: cfg.axes.clone(),
                shard_horizon: cfg.shard_horizon,
                schedule: cfg.schedule,
                seed,
                termination: TerminationPolicy::search_size(evals),
                ..MapperConfig::default()
            });
            let report = mapper.run(&space, evaluator, |_| {
                Box::new(SimulatedAnnealing::default())
            });
            total_evaluations += report.total_evaluations;
            let best = report.best_cost();
            if best.is_finite() && best > 0.0 {
                log_sum += best.ln();
                counted += 1;
            }
            let mut orders: Vec<&Vec<usize>> = report
                .shards
                .iter()
                .filter_map(|s| s.best.as_ref().map(|(m, _)| &m.loop_orders[1]))
                .collect();
            orders.sort();
            orders.dedup();
            distinct_orders += orders.len();
        }
        points.push(ShardBenchPoint {
            shards: cfg.shards,
            schedule: match cfg.schedule {
                MapperSchedule::Deterministic => "deterministic".to_string(),
                MapperSchedule::WorkStealing => "work_stealing".to_string(),
            },
            axes: cfg.label.to_string(),
            geomean_best_edp: if counted > 0 {
                (log_sum / counted as f64).exp()
            } else {
                f64::INFINITY
            },
            distinct_best_l2_orders: distinct_orders,
            total_evaluations,
            wall_s: watch.elapsed_s(),
        });
    }

    ShardBenchResult {
        problems: problems.iter().map(|p| p.name.clone()).collect(),
        evals_per_problem: evals,
        threads,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_shard_bench_produces_all_points_and_valid_json() {
        let result = run_shard_bench(24, 2, 3);
        assert_eq!(
            result.points.len(),
            12,
            "4 shard counts x 2 schedules + 3 axis subsets + hinted full"
        );
        assert_eq!(result.problems.len(), 9, "conv1d + eight Table 1 rows");
        for p in &result.points {
            assert!(p.geomean_best_edp.is_finite() && p.geomean_best_edp > 0.0);
            assert_eq!(p.total_evaluations, 24 * 9);
            assert!(p.distinct_best_l2_orders >= result.problems.len());
        }
        let axes: Vec<&str> = result.points.iter().map(|p| p.axes.as_str()).collect();
        for label in ["full", "l2", "l2+l1", "l2+l1+par", "full+hint"] {
            assert!(axes.contains(&label), "missing axes sweep point {label}");
        }
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"shard_scaling\""));
        assert!(json.contains("work_stealing"));
        assert!(json.contains("\"axes\": \"l2+l1+par\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
