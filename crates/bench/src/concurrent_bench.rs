//! Multi-tenant serve measurement: N simultaneous table1-class requests
//! over one shared [`MappingService`] vs. a single request on an otherwise
//! idle service, plus the in-flight sharing path for identical shapes.
//!
//! Three questions, one JSON (`BENCH_serve_concurrent.json`):
//!
//! 1. **Fair-share throughput** — with N distinct-seed requests (distinct
//!    fingerprints, so N× real search work) interleaved over the one pool,
//!    what aggregate evaluations/second does the service sustain relative
//!    to a single request on an idle service? `concurrent_rel_throughput`
//!    is that ratio; the bench gate requires it ≥ `1 - tolerance`
//!    (`MM_GATE_CONCURRENT_TOL`, default 0.2 — i.e. the ISSUE's ≥ 0.8×
//!    acceptance bar).
//! 2. **Request latency** — what submit→completion wall time does each
//!    concurrent request see (p50/p99 over the batch), given that
//!    fair-share scheduling interleaves their per-layer jobs instead of
//!    running them to completion one at a time?
//! 3. **In-flight sharing** — when the N requests are byte-identical
//!    (same shapes, same `RequestConfig`), how much work does
//!    cross-request incumbent sharing save? The shared run should spend
//!    roughly one request's evaluations, not N×.
//!
//! Single-core containers mostly show scheduler overhead (ratio ≈ 1);
//! multi-core hardware shows the pool staying busy across request
//! boundaries — see EXPERIMENTS.md.

use mm_serve::{MappingService, RequestConfig, RequestHandle, ServiceConfig};
use mm_workloads::{evaluated_accelerator, table1_network, Network};
use serde::{Deserialize, Serialize};

use crate::report::{rate, write_bench_json, Stopwatch};

/// The concurrent-serving measurement set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrentBenchResult {
    /// Network served (the Table 1 set).
    pub network: String,
    /// Layers per request.
    pub layers: usize,
    /// Evaluations per layer search.
    pub evals_per_layer: u64,
    /// Pool workers of the shared service.
    pub workers: usize,
    /// Simultaneous requests in the concurrent and shared phases.
    pub requests: usize,
    /// `std::thread::available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    /// Wall seconds of one request on an otherwise idle service.
    pub single_wall_s: f64,
    /// Evaluations/second of that single request.
    pub single_request_evals_per_sec: f64,
    /// Wall seconds serving all concurrent requests (submit → last done).
    pub concurrent_wall_s: f64,
    /// Fresh evaluations across the concurrent requests (distinct seeds →
    /// no sharing, `requests ×` the single request's work).
    pub concurrent_evaluations: u64,
    /// Aggregate evaluations/second across the concurrent requests.
    pub concurrent_evals_per_sec: f64,
    /// `concurrent_evals_per_sec / single_request_evals_per_sec` — the
    /// gate's fresh-side invariant (≥ 0.8× by default).
    pub concurrent_rel_throughput: f64,
    /// Median submit→completion latency over the concurrent requests.
    pub latency_p50_s: f64,
    /// p99 submit→completion latency over the concurrent requests.
    pub latency_p99_s: f64,
    /// Wall seconds serving `requests` byte-identical requests at once.
    pub shared_wall_s: f64,
    /// Fresh evaluations the shared phase spent (≈ one request's worth:
    /// identical fingerprints attach to one in-flight search unit).
    pub shared_evaluations: u64,
    /// Total in-flight unit attachments reported across the shared
    /// requests (`Σ NetworkReport::shared_searches`).
    pub shared_searches: u64,
}

impl ConcurrentBenchResult {
    /// Serialize as the `BENCH_serve_concurrent.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"serve_concurrent\",\n  \"network\": {:?},\n  \
             \"layers\": {},\n  \"evals_per_layer\": {},\n  \"workers\": {},\n  \
             \"requests\": {},\n  \"available_parallelism\": {},\n  \
             \"single_wall_s\": {:.6},\n  \"single_request_evals_per_sec\": {:.3},\n  \
             \"concurrent_wall_s\": {:.6},\n  \"concurrent_evaluations\": {},\n  \
             \"concurrent_evals_per_sec\": {:.3},\n  \
             \"concurrent_rel_throughput\": {:.4},\n  \
             \"latency_p50_s\": {:.6},\n  \"latency_p99_s\": {:.6},\n  \
             \"shared_wall_s\": {:.6},\n  \"shared_evaluations\": {},\n  \
             \"shared_searches\": {}\n}}\n",
            self.network,
            self.layers,
            self.evals_per_layer,
            self.workers,
            self.requests,
            self.available_parallelism,
            self.single_wall_s,
            self.single_request_evals_per_sec,
            self.concurrent_wall_s,
            self.concurrent_evaluations,
            self.concurrent_evals_per_sec,
            self.concurrent_rel_throughput,
            self.latency_p50_s,
            self.latency_p99_s,
            self.shared_wall_s,
            self.shared_evaluations,
            self.shared_searches,
        )
    }

    /// Write `BENCH_serve_concurrent.json` under the results directory
    /// (plus a telemetry sibling when collection is on), returning the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        write_bench_json(crate::output::SERVE_CONCURRENT_BENCH_FILE, &self.to_json())
    }
}

/// Nearest-rank percentile (`q` in 0..=100) of submit→completion latencies.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn service(arch: &mm_accel::Architecture, workers: usize, queue_depth: usize) -> MappingService {
    MappingService::new(
        arch.clone(),
        ServiceConfig::default()
            .with_workers(workers)
            .with_max_active_jobs(workers.max(2))
            .with_queue_depth(queue_depth),
    )
}

/// Submit every request, then wait for all of them, returning the handles'
/// reports in submit order.
fn submit_all(
    service: &mut MappingService,
    net: &Network,
    configs: &[RequestConfig],
) -> Vec<mm_serve::NetworkReport> {
    let handles: Vec<RequestHandle> = configs
        .iter()
        .map(|cfg| {
            service
                .submit(net, cfg.clone())
                .expect("bench queue depth covers the batch")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| service.wait(h).expect("bench requests complete"))
        .collect()
}

/// Run the concurrent-serving sweep on the Table 1 network.
pub fn run_concurrent_bench(
    evals_per_layer: u64,
    workers: usize,
    requests: usize,
    seed: u64,
) -> ConcurrentBenchResult {
    let arch = evaluated_accelerator();
    let net = table1_network();
    let requests = requests.max(1);
    let base = RequestConfig::default().with_search_size(evals_per_layer);

    // Single request on an otherwise idle service: the per-layer-throughput
    // baseline the concurrent phase is held against.
    let mut solo = service(&arch, workers, requests);
    let watch = Stopwatch::start();
    let baseline = submit_all(&mut solo, &net, &[base.clone().with_seed(seed)])
        .pop()
        .expect("one baseline request");
    let single_wall_s = watch.elapsed_s();
    let single_rate = rate(baseline.total_evaluations, single_wall_s);

    // Concurrent: distinct seeds → distinct fingerprints → no cache or
    // in-flight sharing; the service really does `requests ×` the work.
    let mut shared_service = service(&arch, workers, requests);
    let distinct: Vec<RequestConfig> = (0..requests)
        .map(|i| {
            base.clone()
                .with_seed(seed + 1 + i as u64)
                .with_tenant(format!("tenant-{i}"))
        })
        .collect();
    let watch = Stopwatch::start();
    let reports = submit_all(&mut shared_service, &net, &distinct);
    let concurrent_wall_s = watch.elapsed_s();
    let concurrent_evaluations: u64 = reports.iter().map(|r| r.total_evaluations).sum();
    let concurrent_rate = rate(concurrent_evaluations, concurrent_wall_s);
    let mut latencies: Vec<f64> = reports.iter().map(|r| r.wall_time_s).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));

    // Shared: byte-identical requests attach to one in-flight search unit
    // per layer, so the whole batch costs about one request's evaluations.
    let mut sharing_service = service(&arch, workers, requests);
    let identical: Vec<RequestConfig> = (0..requests)
        .map(|i| {
            base.clone()
                .with_seed(seed)
                .with_tenant(format!("tenant-{i}"))
        })
        .collect();
    let watch = Stopwatch::start();
    let shared_reports = submit_all(&mut sharing_service, &net, &identical);
    let shared_wall_s = watch.elapsed_s();
    let shared_searches: u64 = shared_reports.iter().map(|r| r.shared_searches).sum();

    ConcurrentBenchResult {
        network: net.name.clone(),
        layers: net.len(),
        evals_per_layer,
        workers,
        requests,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        single_wall_s,
        single_request_evals_per_sec: single_rate,
        concurrent_wall_s,
        concurrent_evaluations,
        concurrent_evals_per_sec: concurrent_rate,
        concurrent_rel_throughput: if single_rate > 0.0 {
            concurrent_rate / single_rate
        } else {
            0.0
        },
        latency_p50_s: percentile(&latencies, 50.0),
        latency_p99_s: percentile(&latencies, 99.0),
        shared_wall_s,
        shared_evaluations: sharing_service.stats().total_evaluations,
        shared_searches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_serializes() {
        let result = run_concurrent_bench(30, 2, 3, 11);
        assert_eq!(result.layers, 8);
        assert_eq!(result.requests, 3);
        // Distinct seeds: every request searches fresh.
        assert_eq!(result.concurrent_evaluations, 3 * 8 * 30);
        assert!(result.single_request_evals_per_sec > 0.0);
        assert!(result.concurrent_rel_throughput > 0.0);
        assert!(result.latency_p99_s >= result.latency_p50_s);
        // Identical requests share in-flight units: one request's worth of
        // fresh work, and the two followers attach to all 8 layer units.
        assert_eq!(result.shared_evaluations, 8 * 30);
        assert_eq!(result.shared_searches, 2 * 8);

        let json = result.to_json();
        assert!(json.contains("\"bench\": \"serve_concurrent\""));
        assert!(json.contains("concurrent_rel_throughput"));
        assert!(json.contains("latency_p99_s"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
