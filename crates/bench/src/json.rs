//! A minimal JSON value parser shared by the bench gate and the
//! telemetry-report tooling.
//!
//! The workspace is fully offline (no serde_json), so this hand-rolled
//! ~200-line parser is the one source of truth for reading the flat JSON
//! documents the benches emit (`BENCH_*.json`, telemetry snapshots).

/// A parsed JSON value (number-centric: every number becomes `f64`, which
/// is lossless for the magnitudes the benches emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                out.push(match escaped {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    other => {
                        // \uXXXX and exotic escapes never occur in the
                        // bench output; keep them verbatim rather than
                        // failing the whole gate.
                        *other as char
                    }
                });
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Advance over one multi-byte UTF-8 scalar, validating at
                // most the next four bytes — validating the whole remaining
                // input here would make string parsing quadratic.
                let window = &bytes[*pos..(*pos + 4).min(bytes.len())];
                let s = match std::str::from_utf8(window) {
                    Ok(s) => s,
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&window[..e.valid_up_to()]).expect("validated prefix")
                    }
                    Err(_) => return Err("invalid UTF-8 in string".to_string()),
                };
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        // Unterminated strings and escapes.
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("\"abc\\").is_err());
        // Missing values / separators inside containers.
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1,,2]").is_err());
        assert!(parse_json("{1: 2}").is_err());
        // Bad literals and numbers.
        assert!(parse_json("tru").is_err());
        assert!(parse_json("nul").is_err());
        assert!(parse_json("nan").is_err());
        assert!(parse_json("Infinity").is_err());
        assert!(parse_json("1e+e3").is_err());
        assert!(parse_json("--5").is_err());
        // Trailing garbage after a valid value.
        assert!(parse_json("{}x").is_err());
    }
}
