//! Output helpers: CSV files under `results/` and aligned console tables.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Directory where experiment binaries write their CSV outputs.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MM_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Read a `u64` environment knob, falling back to `default`.
pub fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a per-bench evaluation budget: the bench-specific variable wins,
/// then the CI-wide `MM_CI_BENCH_EVALS` fallback, then `default`. This is
/// what lets `ci.yml` size *every* bench with one variable instead of one
/// `MM_*_BENCH_EVALS` per bench.
pub fn env_evals(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64("MM_CI_BENCH_EVALS", default))
}

/// Write a CSV file (header + rows) under the results directory, returning
/// the path written.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut file = fs::File::create(&path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Render an aligned text table (header + rows) for console output.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float with a fixed number of significant-ish decimals for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Check whether a path exists and is a file (helper for tests).
pub fn is_file(path: &Path) -> bool {
    path.is_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        std::env::set_var(
            "MM_RESULTS_DIR",
            std::env::temp_dir().join("mm_test_results"),
        );
        let path = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        assert!(is_file(&path));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n1,2\n3,4"));
        std::env::remove_var("MM_RESULTS_DIR");
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            &["method", "edp"],
            &[
                vec!["SA".into(), "12.5".into()],
                vec!["MindMappings".into(), "4.2".into()],
            ],
        );
        assert!(t.contains("method"));
        assert!(t.contains("MindMappings"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(1234567.0).contains('e'));
        assert!(fmt(0.0001).contains('e'));
        assert_eq!(fmt(12.3456), "12.346");
    }
}
