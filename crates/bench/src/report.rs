//! Output helpers: CSV files under `results/`, `BENCH_*.json` documents
//! (with telemetry-snapshot siblings when `MM_TELEMETRY` is on), aligned
//! console tables, and the shared wall-clock/throughput measurement used by
//! every bench.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Directory where experiment binaries write their CSV outputs.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MM_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Read a `u64` environment knob, falling back to `default`.
pub fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a per-bench evaluation budget: the bench-specific variable wins,
/// then the CI-wide `MM_CI_BENCH_EVALS` fallback, then `default`. This is
/// what lets `ci.yml` size *every* bench with one variable instead of one
/// `MM_*_BENCH_EVALS` per bench.
pub fn env_evals(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64("MM_CI_BENCH_EVALS", default))
}

/// The one wall-clock/throughput measurement every bench shares: start it,
/// do the work, read `elapsed_s`/`rate` — instead of each bench hand-rolling
/// its own `Instant`/`as_secs_f64`/guarded-division triple.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since `start`.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Units per second since `start` (`0.0` on a zero-length interval).
    pub fn rate(&self, units: u64) -> f64 {
        rate(units, self.elapsed_s())
    }
}

/// `units / secs`, yielding `0.0` instead of `inf`/`NaN` on a zero-length
/// interval — the convention every bench rate field uses.
pub fn rate(units: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        units as f64 / secs
    } else {
        0.0
    }
}

/// Write a `BENCH_*.json` document under the results directory, returning
/// the path written.
///
/// When telemetry is collecting (`MM_TELEMETRY` at `counters` or above), a
/// `TELEMETRY_*` sibling with the current snapshot is written next to it —
/// e.g. `BENCH_mapper.json` gets `TELEMETRY_mapper.json` — so every bench
/// run leaves its counters and journal beside its numbers for free. At the
/// `spans` level a `TRACE_*` sibling is also written: the snapshot's span
/// tracks rendered as a Chrome trace-event JSON array, loadable directly in
/// Perfetto or `chrome://tracing`. Sibling write errors are swallowed:
/// telemetry must never fail a bench.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the bench
/// document itself.
pub fn write_bench_json(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, json)?;
    if let Some(snapshot) = mm_telemetry::snapshot_if_enabled() {
        let rest = name.strip_prefix("BENCH_").unwrap_or(name);
        let _ = fs::write(dir.join(format!("TELEMETRY_{rest}")), snapshot.to_json());
        if snapshot.has_spans() {
            let _ = fs::write(
                dir.join(format!("TRACE_{rest}")),
                snapshot.to_chrome_trace(),
            );
        }
    }
    Ok(path)
}

/// Write a CSV file (header + rows) under the results directory, returning
/// the path written.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut file = fs::File::create(&path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Render an aligned text table (header + rows) for console output.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float with a fixed number of significant-ish decimals for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Check whether a path exists and is a file (helper for tests).
pub fn is_file(path: &Path) -> bool {
    path.is_file()
}

/// Serializes tests (crate-wide) that mutate process-global state — the
/// results-dir env var or the telemetry level — against each other.
#[cfg(test)]
pub(crate) fn test_env_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let _guard = test_env_guard();
        std::env::set_var(
            "MM_RESULTS_DIR",
            std::env::temp_dir().join("mm_test_results"),
        );
        let path = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        assert!(is_file(&path));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n1,2\n3,4"));
        std::env::remove_var("MM_RESULTS_DIR");
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            &["method", "edp"],
            &[
                vec!["SA".into(), "12.5".into()],
                vec!["MindMappings".into(), "4.2".into()],
            ],
        );
        assert!(t.contains("method"));
        assert!(t.contains("MindMappings"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn stopwatch_and_rate_conventions() {
        let sw = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(sw.elapsed_s() >= 0.0);
        assert!(sw.rate(100) >= 0.0);
        assert_eq!(rate(100, 0.0), 0.0, "zero interval must not divide");
        assert_eq!(rate(100, 2.0), 50.0);
    }

    #[test]
    fn bench_json_writes_telemetry_sibling_when_enabled() {
        let _guard = test_env_guard();
        let dir = std::env::temp_dir().join("mm_test_bench_json");
        let _ = std::fs::remove_dir_all(&dir); // stale siblings from prior runs
        std::env::set_var("MM_RESULTS_DIR", &dir);
        mm_telemetry::set_level(mm_telemetry::Level::Off);
        // Drop anything concurrent tests recorded while the ambient level
        // (MM_TELEMETRY) was on — stale spans would fake a trace sibling.
        mm_telemetry::global().reset();
        let path = write_bench_json("BENCH_unit.json", "{}\n").unwrap();
        assert!(is_file(&path));
        assert!(!dir.join("TELEMETRY_unit.json").exists());

        mm_telemetry::set_level(mm_telemetry::Level::Counters);
        mm_telemetry::counter("bench.unit_test").bump(3);
        write_bench_json("BENCH_unit.json", "{}\n").unwrap();
        let sibling = dir.join("TELEMETRY_unit.json");
        assert!(is_file(&sibling));
        let snapshot = std::fs::read_to_string(&sibling).unwrap();
        assert!(snapshot.contains("\"bench.unit_test\": 3"));
        assert!(
            !dir.join("TRACE_unit.json").exists(),
            "no trace sibling below the spans level"
        );

        mm_telemetry::set_level(mm_telemetry::Level::Spans);
        {
            let track = mm_telemetry::track("bench.unit");
            let _span = track.span("unit.work");
        }
        write_bench_json("BENCH_unit.json", "{}\n").unwrap();
        let trace = std::fs::read_to_string(dir.join("TRACE_unit.json")).unwrap();
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("unit.work"));
        mm_telemetry::set_level(mm_telemetry::Level::Off);
        mm_telemetry::global().reset();
        std::env::remove_var("MM_RESULTS_DIR");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(1234567.0).contains('e'));
        assert!(fmt(0.0001).contains('e'));
        assert_eq!(fmt(12.3456), "12.346");
    }
}
