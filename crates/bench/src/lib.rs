//! # mm-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! Mind Mappings evaluation (Section 5). Each figure/table has a dedicated
//! binary under `src/bin/`; see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results. Criterion micro-benchmarks
//! (cost-model throughput, surrogate step cost, per-step cost of each search
//! method, map-space operations) live under `benches/`.
//!
//! All experiments share:
//!
//! * [`ExperimentScale`] — laptop-scale defaults with environment-variable
//!   overrides (`MM_SCALE=quick|default|large`, plus per-knob overrides), so
//!   the same binaries can be pushed toward paper scale;
//! * [`train_surrogate`] — Phase-1 training for a given algorithm family;
//! * [`comparison`] — the SA/GA/RL/Random/MM comparison machinery behind
//!   Figures 5 and 6;
//! * [`report`] — CSV/table output helpers (results land in `results/`).

pub mod comparison;
pub mod concurrent_bench;
pub mod gate;
pub mod json;
pub mod mapper_scaling;
pub mod output;
pub mod report;
pub mod scale;
pub mod serve_bench;
pub mod shard_bench;
pub mod sync_bench;

pub use comparison::{run_comparison, ComparisonResult, MethodRun};
pub use concurrent_bench::{run_concurrent_bench, ConcurrentBenchResult};
pub use gate::{run_gate, GateCheck, GateReport, GateTolerances};
pub use mapper_scaling::{
    measure_telemetry_overhead, measure_telemetry_overhead_at, run_mapper_scaling,
    MapperScalingResult, ScalingPoint,
};
pub use scale::ExperimentScale;
pub use serve_bench::{run_serve_bench, ServeBenchResult};
pub use shard_bench::{run_shard_bench, ShardBenchPoint, ShardBenchResult};
pub use sync_bench::{run_sync_bench, SyncBenchPoint, SyncBenchResult};

use mm_core::{MindMappingsError, Phase1Config, Surrogate};
use mm_nn::TrainHistory;
use mm_workloads::cnn::CnnFamily;
use mm_workloads::mttkrp::MttkrpFamily;
use mm_workloads::table1::Algorithm;
use rand::rngs::StdRng;

/// Train a Phase-1 surrogate for the given algorithm on the evaluated
/// accelerator, at the given experiment scale.
///
/// # Errors
///
/// Propagates surrogate-training errors (e.g. an empty dataset).
pub fn train_surrogate(
    algorithm: Algorithm,
    scale: &ExperimentScale,
    rng: &mut StdRng,
) -> Result<(Surrogate, TrainHistory), MindMappingsError> {
    let arch = mm_workloads::evaluated_accelerator();
    let config = scale.phase1_config();
    train_surrogate_with_config(algorithm, &config, rng).map(|(s, h)| {
        let _ = &arch;
        (s, h)
    })
}

/// Train a surrogate with an explicit Phase-1 configuration (used by the
/// loss-function and dataset-size ablations).
///
/// # Errors
///
/// Propagates surrogate-training errors (e.g. an empty dataset).
pub fn train_surrogate_with_config(
    algorithm: Algorithm,
    config: &Phase1Config,
    rng: &mut StdRng,
) -> Result<(Surrogate, TrainHistory), MindMappingsError> {
    let arch = mm_workloads::evaluated_accelerator();
    let dataset = match algorithm {
        Algorithm::CnnLayer => mm_core::generate_training_set(
            &arch,
            &CnnFamily::default(),
            config.num_samples,
            config.mappings_per_problem,
            rng,
        )?,
        Algorithm::Mttkrp => mm_core::generate_training_set(
            &arch,
            &MttkrpFamily::default(),
            config.num_samples,
            config.mappings_per_problem,
            rng,
        )?,
    };
    Surrogate::train(arch, &dataset, config, rng)
}

/// Geometric mean of a slice of positive values (used for the headline
/// EDP-ratio summaries).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn quick_scale_surrogate_trains() {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(0);
        let scale = ExperimentScale::quick();
        let (surrogate, history) = train_surrogate(Algorithm::Mttkrp, &scale, &mut rng).unwrap();
        assert_eq!(surrogate.num_dims(), 4);
        assert!(history.final_train_loss().is_finite());
    }
}
