//! Experiment scaling: how big each experiment runs.
//!
//! The paper's full-scale evaluation (10 M training samples, a 9-layer MLP,
//! 100-run averages, 10 000+ search iterations) takes many CPU-hours; the
//! defaults here are sized so that the full harness completes on a laptop in
//! minutes while preserving the *shape* of every result. Every knob can be
//! overridden from the environment:
//!
//! | variable | effect |
//! |---|---|
//! | `MM_SCALE` | `quick`, `default`, or `large` preset |
//! | `MM_SAMPLES` | surrogate training-set size |
//! | `MM_EPOCHS` | surrogate training epochs |
//! | `MM_ITERATIONS` | search iterations per method |
//! | `MM_RUNS` | independent runs averaged per method |
//! | `MM_TIME_BUDGET_MS` | iso-time wall-clock budget per method (ms) |

use mm_core::Phase1Config;
use serde::{Deserialize, Serialize};

/// Knobs controlling how large each experiment runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Name of the preset (`quick` / `default` / `large`).
    pub name: String,
    /// Surrogate training-set size (paper: 10 M).
    pub surrogate_samples: usize,
    /// Mappings per representative problem during dataset generation.
    pub mappings_per_problem: usize,
    /// Surrogate training epochs (paper: 100).
    pub surrogate_epochs: usize,
    /// Hidden-layer widths of the surrogate MLP (paper: 9-layer, up to 2048).
    pub hidden_layers: Vec<usize>,
    /// Search iterations (cost-function queries) per method for
    /// iso-iteration experiments (paper: until convergence, ~10⁴).
    pub search_iterations: u64,
    /// Independent runs averaged per method (paper: 100).
    pub runs: usize,
    /// Wall-clock budget per method for iso-time experiments, milliseconds
    /// (paper: 62.5 s for MM convergence).
    pub time_budget_ms: u64,
    /// Number of random samples for the map-space characterization
    /// (Section 5.1.3; paper: 1 M).
    pub characterization_samples: usize,
}

impl ExperimentScale {
    /// Tiny preset used in unit tests and smoke runs (seconds).
    pub fn quick() -> Self {
        ExperimentScale {
            name: "quick".to_string(),
            surrogate_samples: 2_000,
            mappings_per_problem: 50,
            surrogate_epochs: 12,
            hidden_layers: vec![64, 64],
            search_iterations: 300,
            runs: 2,
            time_budget_ms: 250,
            characterization_samples: 2_000,
        }
    }

    /// Default preset: every figure regenerates in a few minutes total.
    pub fn default_scale() -> Self {
        ExperimentScale {
            name: "default".to_string(),
            surrogate_samples: 12_000,
            mappings_per_problem: 100,
            surrogate_epochs: 30,
            hidden_layers: vec![64, 256, 128, 64],
            search_iterations: 1_000,
            runs: 3,
            time_budget_ms: 2_000,
            characterization_samples: 20_000,
        }
    }

    /// Larger preset for overnight runs; still far below paper scale but
    /// close enough to tighten the averages.
    pub fn large() -> Self {
        ExperimentScale {
            name: "large".to_string(),
            surrogate_samples: 200_000,
            mappings_per_problem: 200,
            surrogate_epochs: 60,
            hidden_layers: vec![64, 256, 512, 256, 64],
            search_iterations: 5_000,
            runs: 10,
            time_budget_ms: 20_000,
            characterization_samples: 200_000,
        }
    }

    /// Resolve the scale from the environment (`MM_SCALE` plus per-knob
    /// overrides); defaults to [`ExperimentScale::default_scale`].
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("MM_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("large") => Self::large(),
            _ => Self::default_scale(),
        };
        let getenv = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(v) = getenv("MM_SAMPLES") {
            scale.surrogate_samples = v as usize;
        }
        if let Some(v) = getenv("MM_EPOCHS") {
            scale.surrogate_epochs = v as usize;
        }
        if let Some(v) = getenv("MM_ITERATIONS") {
            scale.search_iterations = v;
        }
        if let Some(v) = getenv("MM_RUNS") {
            scale.runs = v as usize;
        }
        if let Some(v) = getenv("MM_TIME_BUDGET_MS") {
            scale.time_budget_ms = v;
        }
        scale
    }

    /// The Phase-1 configuration corresponding to this scale.
    pub fn phase1_config(&self) -> Phase1Config {
        Phase1Config {
            num_samples: self.surrogate_samples,
            mappings_per_problem: self.mappings_per_problem,
            hidden_layers: self.hidden_layers.clone(),
            epochs: self.surrogate_epochs,
            ..Phase1Config::default_experiment()
        }
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let q = ExperimentScale::quick();
        let d = ExperimentScale::default_scale();
        let l = ExperimentScale::large();
        assert!(q.surrogate_samples < d.surrogate_samples);
        assert!(d.surrogate_samples < l.surrogate_samples);
        assert!(q.search_iterations <= d.search_iterations);
        assert!(d.runs <= l.runs);
    }

    #[test]
    fn phase1_config_reflects_scale() {
        let s = ExperimentScale::quick();
        let c = s.phase1_config();
        assert_eq!(c.num_samples, s.surrogate_samples);
        assert_eq!(c.epochs, s.surrogate_epochs);
        assert_eq!(c.hidden_layers, s.hidden_layers);
    }

    #[test]
    fn default_trait_matches_default_scale() {
        assert_eq!(ExperimentScale::default(), ExperimentScale::default_scale());
    }
}
