//! The CI bench gate: diff fresh `BENCH_*.json` results against checked-in
//! baselines and fail on significant regressions.
//!
//! Search quality is a first-class regression metric: a refactor that keeps
//! tests green but silently worsens best-EDP at iso-budget (or tanks
//! evaluation throughput) must fail CI, not land. The gate reads the JSON
//! summaries the throughput benches emit, extracts every *gateable* metric
//! — quality fields (`best_cost`, `geomean_best_edp`: lower is better) and
//! rate fields (`*evals_per_sec`: higher is better) — and compares fresh
//! values against the baselines under `crates/bench/results/`.
//!
//! Quality metrics are seed-deterministic, so they match the baseline
//! bit-for-bit on correct code and the default 25 % tolerance only trips on
//! real behavioural regressions. Rate metrics depend on the machine; CI
//! overrides their tolerance (`MM_GATE_THROUGHPUT_TOL`) to absorb
//! runner-vs-container variance while still catching order-of-magnitude
//! slowdowns.
//!
//! The workspace is offline (no serde_json), so the flat documents the
//! benches write are parsed with the crate's own [`crate::json`] module,
//! shared with the `telemetry_report` binary.

use crate::json::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Which way a gated metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Rates (`*evals_per_sec`): a drop beyond tolerance fails.
    HigherIsBetter,
    /// Quality (`best_cost`, `geomean_best_edp`): a rise beyond tolerance
    /// fails.
    LowerIsBetter,
}

/// Classify a JSON field name as a gateable metric.
fn classify(field: &str) -> Option<Direction> {
    if field.ends_with("evals_per_sec") {
        Some(Direction::HigherIsBetter)
    } else if field == "best_cost" || field == "geomean_best_edp" {
        Some(Direction::LowerIsBetter)
    } else {
        None
    }
}

/// Array-element keys that identify a point across baseline and fresh runs
/// (so reordering points never misattributes a metric).
const IDENTITY_KEYS: [&str; 6] = ["threads", "shards", "schedule", "policy", "workers", "axes"];

/// Flatten every gateable metric of a parsed document into
/// `path → (value, direction)`.
pub fn gateable_metrics(doc: &Json) -> BTreeMap<String, (f64, Direction)> {
    let mut out = BTreeMap::new();
    flatten(doc, "", &mut out);
    out
}

fn element_label(item: &Json, index: usize) -> String {
    let mut parts = Vec::new();
    for key in IDENTITY_KEYS {
        if let Some(v) = item.get(key) {
            match v {
                Json::Num(n) => parts.push(format!("{key}={n}")),
                Json::Str(s) => parts.push(format!("{key}={s}")),
                _ => {}
            }
        }
    }
    if parts.is_empty() {
        format!("[{index}]")
    } else {
        format!("[{}]", parts.join(","))
    }
}

fn flatten(value: &Json, prefix: &str, out: &mut BTreeMap<String, (f64, Direction)>) {
    match value {
        Json::Obj(members) => {
            for (key, v) in members {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                match v {
                    Json::Num(n) => {
                        if let Some(direction) = classify(key) {
                            // Identity-key collisions (two points with the
                            // same label) must not shadow each other:
                            // suffix later occurrences. Consistent ordering
                            // keeps baseline/fresh labels aligned; a
                            // reorder then fails closed as a missing
                            // metric instead of silently passing.
                            let mut unique = path.clone();
                            let mut n_th = 2;
                            while out.contains_key(&unique) {
                                unique = format!("{path}#{n_th}");
                                n_th += 1;
                            }
                            out.insert(unique, (*n, direction));
                        }
                    }
                    _ => flatten(v, &path, out),
                }
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let path = format!("{prefix}{}", element_label(item, i));
                flatten(item, &path, out);
            }
        }
        _ => {}
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// File the metric came from.
    pub file: String,
    /// Flattened metric path (e.g. `points[threads=2].evals_per_sec`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value.
    pub fresh: f64,
    /// Improvement direction of the metric.
    pub direction: Direction,
    /// Tolerance applied (fraction, e.g. 0.25).
    pub tolerance: f64,
    /// Whether the fresh value is within tolerance.
    pub ok: bool,
}

impl GateCheck {
    /// Relative change of the fresh value, signed so that positive =
    /// regression (quality up / throughput down).
    pub fn regression(&self) -> f64 {
        if self.baseline == 0.0 {
            return 0.0;
        }
        match self.direction {
            Direction::LowerIsBetter => self.fresh / self.baseline - 1.0,
            Direction::HigherIsBetter => 1.0 - self.fresh / self.baseline,
        }
    }
}

impl fmt::Display for GateCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}/{}: baseline {:.6e}, fresh {:.6e} ({:+.1}% vs ≤{:.0}% allowed)",
            if self.ok { "ok  " } else { "FAIL" },
            self.file,
            self.metric,
            self.baseline,
            self.fresh,
            self.regression() * 100.0,
            self.tolerance * 100.0,
        )
    }
}

/// The gate's verdict over one pair of result directories.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Every compared metric.
    pub checks: Vec<GateCheck>,
    /// Hard failures that are not metric comparisons (missing/unparsable
    /// fresh files, metrics that vanished from a fresh file).
    pub errors: Vec<String>,
    /// Non-fatal notes (e.g. a baseline file that does not exist yet).
    pub notes: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.checks.iter().all(|c| c.ok)
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&GateCheck> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }
}

/// Tolerances for the metric classes (fractions: 0.25 = 25 %).
#[derive(Debug, Clone, Copy)]
pub struct GateTolerances {
    /// Allowed relative best-EDP / best-cost increase.
    pub quality: f64,
    /// Allowed relative throughput drop.
    pub throughput: f64,
    /// Allowed mapper-throughput loss from full telemetry collection (the
    /// `telemetry_rel_throughput` fresh-side invariant; 0.02 = the
    /// telemetry layer may cost at most 2 %).
    pub telemetry: f64,
    /// Allowed mapper-throughput loss from span tracing (the
    /// `telemetry_spans_rel_throughput` fresh-side invariant). Spans record
    /// two `Instant` reads plus a buffered append per instrumented region,
    /// so the allowance is slightly wider than the journal's.
    pub telemetry_spans: f64,
    /// Allowed per-layer-throughput loss under multi-tenant contention (the
    /// `concurrent_rel_throughput` fresh-side invariant on
    /// `BENCH_serve_concurrent.json`): N simultaneous table1-class requests
    /// must sustain at least `1 − tolerance` of a single idle-service
    /// request's aggregate evaluations/second. 0.2 = the ISSUE's ≥ 0.8× bar.
    pub concurrent: f64,
}

impl Default for GateTolerances {
    fn default() -> Self {
        GateTolerances {
            quality: 0.25,
            throughput: 0.25,
            telemetry: 0.02,
            telemetry_spans: 0.03,
            concurrent: 0.2,
        }
    }
}

impl GateTolerances {
    /// Read tolerances from `MM_GATE_EDP_TOL` / `MM_GATE_THROUGHPUT_TOL` /
    /// `MM_GATE_TELEMETRY_TOL` / `MM_GATE_TELEMETRY_SPANS_TOL` /
    /// `MM_GATE_CONCURRENT_TOL` (fractions), falling back to the defaults.
    pub fn from_env() -> Self {
        let read = |key: &str, default: f64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(default)
        };
        GateTolerances {
            quality: read("MM_GATE_EDP_TOL", 0.25),
            throughput: read("MM_GATE_THROUGHPUT_TOL", 0.25),
            telemetry: read("MM_GATE_TELEMETRY_TOL", 0.02),
            telemetry_spans: read("MM_GATE_TELEMETRY_SPANS_TOL", 0.03),
            concurrent: read("MM_GATE_CONCURRENT_TOL", 0.2),
        }
    }
}

/// Fresh-side invariant on `BENCH_mapper.json`: telemetry must stay
/// zero-cost-when-off *and nearly free when on* — the measured relative
/// throughput under `key` (`telemetry_rel_throughput` for the journal
/// level, `telemetry_spans_rel_throughput` for span tracing; on-level
/// throughput relative to off, see `measure_telemetry_overhead_at`) must
/// not fall below `1 − tolerance`.
///
/// Unlike the baseline diff, this needs no baseline entry: the A/B runs
/// both sides fresh, so the "baseline" is the ideal ratio 1.0. A fresh
/// document without the key is noted, not failed — older bench binaries
/// did not measure it.
pub fn check_telemetry_overhead_key(
    file: &str,
    fresh: &Json,
    key: &str,
    tolerance: f64,
    report: &mut GateReport,
) {
    let Some(rel) = fresh.get(key).and_then(Json::as_f64) else {
        report
            .notes
            .push(format!("{file}: no {key} — overhead not measured"));
        return;
    };
    report.checks.push(GateCheck {
        file: file.to_string(),
        metric: key.to_string(),
        baseline: 1.0,
        fresh: rel,
        direction: Direction::HigherIsBetter,
        tolerance,
        ok: rel.is_finite() && rel >= 1.0 - tolerance,
    });
}

/// [`check_telemetry_overhead_key`] for the journal-level
/// `telemetry_rel_throughput` invariant (the PR-6 gate).
pub fn check_telemetry_overhead(file: &str, fresh: &Json, tolerance: f64, report: &mut GateReport) {
    check_telemetry_overhead_key(file, fresh, "telemetry_rel_throughput", tolerance, report);
}

/// The benchmark summaries the gate covers.
pub const GATED_FILES: [&str; 5] = [
    "BENCH_mapper.json",
    "BENCH_serve.json",
    crate::output::SERVE_CONCURRENT_BENCH_FILE,
    "BENCH_shard.json",
    "BENCH_sync.json",
];

/// Compare one parsed fresh document against its baseline.
pub fn gate_documents(
    file: &str,
    baseline: &Json,
    fresh: &Json,
    tolerances: GateTolerances,
    report: &mut GateReport,
) {
    let base_metrics = gateable_metrics(baseline);
    let fresh_metrics = gateable_metrics(fresh);
    for (path, (base_value, direction)) in &base_metrics {
        let Some((fresh_value, _)) = fresh_metrics.get(path) else {
            report
                .errors
                .push(format!("{file}: metric {path} missing from fresh results"));
            continue;
        };
        if !base_value.is_finite() || *base_value <= 0.0 {
            report
                .notes
                .push(format!("{file}: skipping degenerate baseline {path}"));
            continue;
        }
        let tolerance = match direction {
            Direction::LowerIsBetter => tolerances.quality,
            Direction::HigherIsBetter => tolerances.throughput,
        };
        let ok = match direction {
            Direction::LowerIsBetter => *fresh_value <= base_value * (1.0 + tolerance),
            Direction::HigherIsBetter => *fresh_value >= base_value * (1.0 - tolerance),
        };
        report.checks.push(GateCheck {
            file: file.to_string(),
            metric: path.clone(),
            baseline: *base_value,
            fresh: *fresh_value,
            direction: *direction,
            tolerance,
            ok,
        });
    }
}

/// Run the gate over every [`GATED_FILES`] entry: baseline from
/// `baseline_dir`, fresh results from `fresh_dir`.
pub fn run_gate(baseline_dir: &Path, fresh_dir: &Path, tolerances: GateTolerances) -> GateReport {
    let mut report = GateReport::default();
    for file in GATED_FILES {
        let base_path = baseline_dir.join(file);
        let fresh_path = fresh_dir.join(file);
        let Ok(base_text) = std::fs::read_to_string(&base_path) else {
            report.notes.push(format!(
                "no baseline {} — metric not gated yet",
                base_path.display()
            ));
            continue;
        };
        let fresh_text = match std::fs::read_to_string(&fresh_path) {
            Ok(text) => text,
            Err(e) => {
                report.errors.push(format!(
                    "baseline {file} exists but fresh {} is unreadable: {e}",
                    fresh_path.display()
                ));
                continue;
            }
        };
        let baseline = match parse_json(&base_text) {
            Ok(doc) => doc,
            Err(e) => {
                report
                    .errors
                    .push(format!("unparsable baseline {file}: {e}"));
                continue;
            }
        };
        let fresh = match parse_json(&fresh_text) {
            Ok(doc) => doc,
            Err(e) => {
                report.errors.push(format!("unparsable fresh {file}: {e}"));
                continue;
            }
        };
        gate_documents(file, &baseline, &fresh, tolerances, &mut report);
        if file == "BENCH_mapper.json" {
            check_telemetry_overhead(file, &fresh, tolerances.telemetry, &mut report);
            check_telemetry_overhead_key(
                file,
                &fresh,
                "telemetry_spans_rel_throughput",
                tolerances.telemetry_spans,
                &mut report,
            );
        }
        if file == crate::output::SERVE_CONCURRENT_BENCH_FILE {
            // Fresh-side invariant: concurrent requests keep ≥ 1 − tol of
            // the single-request throughput (ideal ratio 1.0, no baseline
            // entry needed — both sides of the ratio come from this run).
            check_telemetry_overhead_key(
                file,
                &fresh,
                "concurrent_rel_throughput",
                tolerances.concurrent,
                &mut report,
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_documents() {
        let doc = parse_json(
            r#"{
  "bench": "mapper_throughput",
  "problem": "ResNet Conv_4",
  "evals_per_thread": 200,
  "baseline_single_thread_searcher_evals_per_sec": 31415.9,
  "points": [
    {"threads": 1, "evals_per_sec": 30000.5, "best_cost": 1.25e-3},
    {"threads": 2, "evals_per_sec": 29000.0, "best_cost": 9.000000e-4}
  ],
  "empty_arr": [],
  "empty_obj": {},
  "flag": true,
  "nothing": null
}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("bench").unwrap().as_str(),
            Some("mapper_throughput")
        );
        assert_eq!(doc.get("evals_per_thread").unwrap().as_f64(), Some(200.0));
        let metrics = gateable_metrics(&doc);
        assert_eq!(
            metrics["baseline_single_thread_searcher_evals_per_sec"],
            (31415.9, Direction::HigherIsBetter)
        );
        assert_eq!(
            metrics["points[threads=2].best_cost"],
            (9e-4, Direction::LowerIsBetter)
        );
        assert_eq!(metrics.len(), 5, "two per point plus the baseline rate");
    }

    #[test]
    fn missing_keys_resolve_to_none_not_panics() {
        let doc = parse_json(r#"{"points": [{"shards": 1}], "n": 3}"#).unwrap();
        assert!(doc.get("absent").is_none());
        assert!(
            doc.get("points").unwrap().get("shards").is_none(),
            "arrays have no members"
        );
        assert!(
            doc.get("n").unwrap().get("x").is_none(),
            "numbers have no members"
        );
        assert_eq!(doc.get("n").unwrap().as_str(), None);
        assert_eq!(doc.get("points").unwrap().as_f64(), None);
        // A point without any gateable field contributes no metrics.
        assert!(gateable_metrics(&doc).is_empty());
    }

    #[test]
    fn non_finite_numbers_are_parsed_and_gated_safely() {
        // 1e999 overflows f64 to +inf; the parser accepts it, the gate
        // skips it as a degenerate baseline rather than comparing nonsense.
        let inf_doc = parse_json(r#"{"best_cost": 1e999}"#).unwrap();
        assert_eq!(
            inf_doc.get("best_cost").unwrap().as_f64(),
            Some(f64::INFINITY)
        );
        let finite = parse_json(r#"{"best_cost": 2.0}"#).unwrap();
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_x.json",
            &inf_doc,
            &finite,
            GateTolerances::default(),
            &mut report,
        );
        assert!(report.passed());
        assert_eq!(report.checks.len(), 0);
        assert_eq!(report.notes.len(), 1, "degenerate baseline is noted");

        // Zero and negative baselines are degenerate too.
        let zero = parse_json(r#"{"best_cost": 0.0, "geomean_best_edp": -1.0}"#).unwrap();
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_x.json",
            &zero,
            &zero,
            GateTolerances::default(),
            &mut report,
        );
        assert!(report.passed());
        assert_eq!(report.notes.len(), 2);

        // A fresh value that went non-finite against a finite baseline is a
        // hard quality failure, not a silent pass.
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_x.json",
            &finite,
            &inf_doc,
            GateTolerances::default(),
            &mut report,
        );
        assert!(!report.passed());
        assert_eq!(report.failures().len(), 1);
    }

    #[test]
    fn tolerance_boundaries_are_inclusive() {
        let tol = GateTolerances::default(); // 25% both ways
                                             // Exactly representable values so the boundary products are exact:
                                             // 1024·1.25 = 1280, 1000·0.75 = 750.
        let baseline = doc(&[("off", 1, 1024.0, 1000.0)]);
        // Exactly at the boundary: EDP +25%, throughput −25% — both pass.
        let at_edge = doc(&[("off", 1, 1280.0, 750.0)]);
        let mut report = GateReport::default();
        gate_documents("BENCH_x.json", &baseline, &at_edge, tol, &mut report);
        assert!(report.passed(), "{:?}", report.failures());
        // A hair beyond either boundary fails that metric alone.
        let over_quality = doc(&[("off", 1, 1280.001, 1000.0)]);
        let mut report = GateReport::default();
        gate_documents("BENCH_x.json", &baseline, &over_quality, tol, &mut report);
        assert_eq!(report.failures().len(), 1);
        assert!(report.failures()[0].metric.ends_with("geomean_best_edp"));
        let under_rate = doc(&[("off", 1, 1024.0, 749.999)]);
        let mut report = GateReport::default();
        gate_documents("BENCH_x.json", &baseline, &under_rate, tol, &mut report);
        assert_eq!(report.failures().len(), 1);
        assert!(report.failures()[0].metric.ends_with("evals_per_sec"));
        // Regressions are signed: positive = worse, improvement is negative.
        assert!(report.failures()[0].regression() > 0.25);
        let improved = doc(&[("off", 1, 0.5e-3, 2000.0)]);
        let mut report = GateReport::default();
        gate_documents("BENCH_x.json", &baseline, &improved, tol, &mut report);
        assert!(report.passed());
        assert!(report.checks.iter().all(|c| c.regression() < 0.0));
    }

    #[test]
    fn axes_labels_identify_points() {
        let mk = |axes: &str, edp: f64| {
            Json::Obj(vec![(
                "points".to_string(),
                Json::Arr(vec![Json::Obj(vec![
                    ("shards".to_string(), Json::Num(8.0)),
                    ("axes".to_string(), Json::Str(axes.to_string())),
                    ("geomean_best_edp".to_string(), Json::Num(edp)),
                ])]),
            )])
        };
        let metrics = gateable_metrics(&mk("l2+l1", 1.0));
        assert!(
            metrics.contains_key("points[shards=8,axes=l2+l1].geomean_best_edp"),
            "{metrics:?}"
        );
        // Points differing only in the axes label never collide.
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_shard.json",
            &mk("l2+l1", 1.0),
            &mk("full", 1.0),
            GateTolerances::default(),
            &mut report,
        );
        assert!(!report.passed(), "axes relabel must fail closed");
    }

    fn doc(points: &[(&str, u64, f64, f64)]) -> Json {
        // (policy, shards, geomean_best_edp, evals_per_sec) points.
        Json::Obj(vec![(
            "points".to_string(),
            Json::Arr(
                points
                    .iter()
                    .map(|(policy, shards, edp, rate)| {
                        Json::Obj(vec![
                            ("policy".to_string(), Json::Str((*policy).to_string())),
                            ("shards".to_string(), Json::Num(*shards as f64)),
                            ("geomean_best_edp".to_string(), Json::Num(*edp)),
                            ("evals_per_sec".to_string(), Json::Num(*rate)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond_it() {
        let baseline = doc(&[("off", 1, 1.0e-3, 10_000.0), ("anchor", 2, 8.0e-4, 9_000.0)]);
        // Within 25%: EDP +10%, throughput −20%.
        let good = doc(&[("off", 1, 1.1e-3, 8_000.0), ("anchor", 2, 8.0e-4, 9_000.0)]);
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_sync.json",
            &baseline,
            &good,
            GateTolerances::default(),
            &mut report,
        );
        assert!(report.passed(), "{:?}", report.failures());
        assert_eq!(report.checks.len(), 4);

        // Beyond 25%: EDP +50% on the anchor/2 point.
        let bad = doc(&[("off", 1, 1.0e-3, 10_000.0), ("anchor", 2, 1.2e-3, 9_000.0)]);
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_sync.json",
            &baseline,
            &bad,
            GateTolerances::default(),
            &mut report,
        );
        assert!(!report.passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(
            failures[0].metric,
            "points[shards=2,policy=anchor].geomean_best_edp"
        );
        assert!(failures[0].regression() > 0.25);

        // A throughput collapse fails too.
        let slow = doc(&[("off", 1, 1.0e-3, 1_000.0), ("anchor", 2, 8.0e-4, 9_000.0)]);
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_sync.json",
            &baseline,
            &slow,
            GateTolerances::default(),
            &mut report,
        );
        assert_eq!(report.failures().len(), 1);
        assert_eq!(
            report.failures()[0].metric,
            "points[shards=1,policy=off].evals_per_sec"
        );
    }

    #[test]
    fn reordered_points_still_match_by_identity() {
        let baseline = doc(&[("off", 1, 1.0e-3, 1000.0), ("anchor", 2, 2.0e-3, 1000.0)]);
        let reordered = doc(&[("anchor", 2, 2.0e-3, 1000.0), ("off", 1, 1.0e-3, 1000.0)]);
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_sync.json",
            &baseline,
            &reordered,
            GateTolerances::default(),
            &mut report,
        );
        assert!(report.passed(), "{:?}", report.failures());
    }

    #[test]
    fn identity_collisions_never_shadow_a_metric() {
        // Two points with identical identity keys (same policy+shards,
        // differing only in a non-identity field): both must be gated.
        let baseline = doc(&[("off", 1, 1.0e-3, 1000.0), ("off", 1, 5.0e-3, 2000.0)]);
        let metrics = gateable_metrics(&baseline);
        assert_eq!(metrics.len(), 4, "no silent shadowing: {metrics:?}");
        assert!(metrics.contains_key("points[shards=1,policy=off].geomean_best_edp"));
        assert!(metrics.contains_key("points[shards=1,policy=off].geomean_best_edp#2"));
        // A regression in the second (previously shadowed) point is caught.
        let bad = doc(&[("off", 1, 1.0e-3, 1000.0), ("off", 1, 9.0e-3, 2000.0)]);
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_x.json",
            &baseline,
            &bad,
            GateTolerances::default(),
            &mut report,
        );
        assert!(!report.passed());
    }

    #[test]
    fn vanished_metric_is_a_hard_error() {
        let baseline = doc(&[("off", 1, 1.0e-3, 1000.0)]);
        let fresh = doc(&[("anchor", 4, 1.0e-3, 1000.0)]);
        let mut report = GateReport::default();
        gate_documents(
            "BENCH_x.json",
            &baseline,
            &fresh,
            GateTolerances::default(),
            &mut report,
        );
        assert!(!report.passed());
        assert!(!report.errors.is_empty());
    }

    #[test]
    fn telemetry_overhead_check_is_a_fresh_side_invariant() {
        let tol = GateTolerances::default().telemetry; // 2 %
        let with = |rel: f64| {
            Json::Obj(vec![(
                "telemetry_rel_throughput".to_string(),
                Json::Num(rel),
            )])
        };
        // Within tolerance (and "telemetry was faster" noise above 1.0).
        for rel in [1.0, 0.99, 0.98, 1.03] {
            let mut report = GateReport::default();
            check_telemetry_overhead("BENCH_mapper.json", &with(rel), tol, &mut report);
            assert!(report.passed(), "rel={rel}: {:?}", report.failures());
            assert_eq!(report.checks.len(), 1);
        }
        // Beyond tolerance fails; the regression is the throughput loss.
        let mut report = GateReport::default();
        check_telemetry_overhead("BENCH_mapper.json", &with(0.90), tol, &mut report);
        assert!(!report.passed());
        assert!((report.failures()[0].regression() - 0.10).abs() < 1e-9);
        // Non-finite measurements fail closed.
        let mut report = GateReport::default();
        check_telemetry_overhead("BENCH_mapper.json", &with(f64::NAN), tol, &mut report);
        assert!(!report.passed());
        // A document that never measured it is noted, not failed.
        let mut report = GateReport::default();
        check_telemetry_overhead("BENCH_mapper.json", &Json::Obj(vec![]), tol, &mut report);
        assert!(report.passed());
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn spans_overhead_gets_its_own_key_and_tolerance() {
        let tol = GateTolerances::default();
        assert!(tol.telemetry_spans >= tol.telemetry);
        let with = |rel: f64| {
            Json::Obj(vec![(
                "telemetry_spans_rel_throughput".to_string(),
                Json::Num(rel),
            )])
        };
        // 0.97 is inside the 3 % spans allowance but outside the 2 %
        // journal allowance — the key must route to the right tolerance.
        let mut report = GateReport::default();
        check_telemetry_overhead_key(
            "BENCH_mapper.json",
            &with(0.97),
            "telemetry_spans_rel_throughput",
            tol.telemetry_spans,
            &mut report,
        );
        assert!(report.passed(), "{:?}", report.failures());
        assert_eq!(report.checks[0].metric, "telemetry_spans_rel_throughput");
        let mut report = GateReport::default();
        check_telemetry_overhead_key(
            "BENCH_mapper.json",
            &with(0.95),
            "telemetry_spans_rel_throughput",
            tol.telemetry_spans,
            &mut report,
        );
        assert!(!report.passed());
        // The journal check ignores the spans key (notes, no check).
        let mut report = GateReport::default();
        check_telemetry_overhead("BENCH_mapper.json", &with(0.5), tol.telemetry, &mut report);
        assert!(report.passed());
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn run_gate_handles_missing_directories() {
        let empty = std::env::temp_dir().join("mm_gate_no_such_dir");
        let report = run_gate(&empty, &empty, GateTolerances::default());
        assert!(report.passed(), "no baselines ⇒ nothing gated yet");
        assert_eq!(report.notes.len(), GATED_FILES.len());
    }
}
