//! Sync-policy sweep: best-EDP quality of the sharded mapper under every
//! [`SyncPolicy`] (off / anchor / restart / annealed) at 1/2/4 disjoint
//! shards, over conv1d + the Table 1 set at a fixed iso-budget.
//!
//! Every point runs the deterministic schedule, so the quality numbers are
//! machine-independent: the policies exchange incumbents at barrier rounds
//! whose content depends only on the seed, the budget, and the policy —
//! never on worker count or wall-clock. The JSON (`BENCH_sync.json`)
//! records geomean best EDP, evaluations, and throughput per
//! (policy, shard-count) point, and is diffed by the CI bench gate.

use std::sync::Arc;

use mm_accel::CostModel;
use mm_mapper::{
    CostEvaluator, Mapper, MapperConfig, ModelEvaluator, SyncPolicy, TerminationPolicy,
};
use mm_mapspace::{MapSpace, ProblemSpec};
use mm_search::SimulatedAnnealing;
use mm_workloads::{evaluated_accelerator, table1};

use crate::report::{rate, write_bench_json, Stopwatch};

/// Sync interval used by the sweep: short enough that even CI-sized
/// budgets (200 evaluations per problem) cross several barrier rounds per
/// shard.
const SYNC_INTERVAL: u64 = 16;

/// The measured policy set (paired with stable labels for the JSON).
pub fn policy_set() -> Vec<(String, SyncPolicy)> {
    vec![
        ("off".to_string(), SyncPolicy::Off),
        ("anchor".to_string(), SyncPolicy::Anchor),
        (
            "restart(patience=2)".to_string(),
            SyncPolicy::Restart { patience: 2 },
        ),
        (
            "annealed(0.9->0.1)".to_string(),
            SyncPolicy::Annealed {
                start: 0.9,
                end: 0.1,
            },
        ),
    ]
}

/// One measured (policy, shard count) configuration.
#[derive(Debug, Clone)]
pub struct SyncBenchPoint {
    /// Stable policy label (see [`policy_set`]).
    pub policy: String,
    /// Number of pairwise-disjoint map-space shards.
    pub shards: usize,
    /// Geometric-mean best EDP (J·s) over the problem set.
    pub geomean_best_edp: f64,
    /// Σ evaluations across all runs of this configuration.
    pub total_evaluations: u64,
    /// Aggregate evaluations/second of this configuration.
    pub evals_per_sec: f64,
    /// Σ wall seconds across all runs of this configuration.
    pub wall_s: f64,
}

/// The sync-policy measurement set.
#[derive(Debug, Clone)]
pub struct SyncBenchResult {
    /// Problems measured (conv1d + the Table 1 rows).
    pub problems: Vec<String>,
    /// Evaluation budget per problem per configuration.
    pub evals_per_problem: u64,
    /// Worker threads executing the shards.
    pub threads: usize,
    /// `std::thread::available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    /// One point per (policy, shard count).
    pub points: Vec<SyncBenchPoint>,
}

impl SyncBenchResult {
    /// Serialize as the `BENCH_sync.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&crate::output::bench_json_header(
            "sync_policy",
            &self.problems,
            self.evals_per_problem,
            self.threads,
            self.available_parallelism,
        ));
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"policy\": {:?}, \"shards\": {}, \"geomean_best_edp\": {:.6e}, \
                 \"total_evaluations\": {}, \"evals_per_sec\": {:.3}, \"wall_s\": {:.6}}}{}\n",
                p.policy,
                p.shards,
                p.geomean_best_edp,
                p.total_evaluations,
                p.evals_per_sec,
                p.wall_s,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_sync.json` under the results directory (plus a
    /// telemetry sibling when collection is on), returning the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        write_bench_json("BENCH_sync.json", &self.to_json())
    }
}

/// The measured problem set: the toy conv1d plus every Table 1 row.
fn problem_set() -> Vec<ProblemSpec> {
    let mut problems = vec![ProblemSpec::conv1d(1024, 7)];
    problems.extend(table1::all_problems().into_iter().map(|t| t.problem));
    problems
}

/// Run the sweep: every policy of [`policy_set`] × 1/2/4 disjoint shards,
/// SA per shard, `evals` evaluations per problem per point.
pub fn run_sync_bench(evals: u64, threads: usize, seed: u64) -> SyncBenchResult {
    let arch = evaluated_accelerator();
    let problems = problem_set();
    let mut points = Vec::new();

    for (label, sync) in policy_set() {
        for &shards in &[1usize, 2, 4] {
            let mut log_sum = 0.0f64;
            let mut counted = 0usize;
            let mut total_evaluations = 0u64;
            let watch = Stopwatch::start();
            for problem in &problems {
                let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
                let evaluator: Arc<dyn CostEvaluator> = Arc::new(ModelEvaluator::edp(
                    CostModel::new(arch.clone(), problem.clone()),
                ));
                let mapper = Mapper::new(MapperConfig {
                    threads,
                    shards: Some(shards),
                    shard_space: shards > 1,
                    seed,
                    sync_interval: SYNC_INTERVAL,
                    sync,
                    termination: TerminationPolicy::search_size(evals),
                    ..MapperConfig::default()
                });
                let report = mapper.run(&space, evaluator, |_| {
                    Box::new(SimulatedAnnealing::default())
                });
                total_evaluations += report.total_evaluations;
                let best = report.best_cost();
                if best.is_finite() && best > 0.0 {
                    log_sum += best.ln();
                    counted += 1;
                }
            }
            let wall_s = watch.elapsed_s();
            points.push(SyncBenchPoint {
                policy: label.clone(),
                shards,
                geomean_best_edp: if counted > 0 {
                    (log_sum / counted as f64).exp()
                } else {
                    f64::INFINITY
                },
                total_evaluations,
                evals_per_sec: rate(total_evaluations, wall_s),
                wall_s,
            });
        }
    }

    SyncBenchResult {
        problems: problems.iter().map(|p| p.name.clone()).collect(),
        evals_per_problem: evals,
        threads,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sync_bench_produces_all_points_and_valid_json() {
        // 144 evals ⇒ a 4-shard share of 36 crosses two 16-eval barrier
        // rounds, so the policies actually fire even at test size.
        let result = run_sync_bench(144, 2, 3);
        assert_eq!(result.points.len(), 12, "4 policies x 3 shard counts");
        assert_eq!(result.problems.len(), 9, "conv1d + eight Table 1 rows");
        for p in &result.points {
            assert!(p.geomean_best_edp.is_finite() && p.geomean_best_edp > 0.0);
            assert_eq!(p.total_evaluations, 144 * 9, "{}: iso-budget", p.policy);
        }
        // The policies genuinely diverge at multi-shard points: "off" and
        // "anchor" cannot coincide on every problem.
        let edp = |policy: &str, shards: usize| {
            result
                .points
                .iter()
                .find(|p| p.policy == policy && p.shards == shards)
                .unwrap()
                .geomean_best_edp
        };
        assert_ne!(edp("off", 4), edp("anchor", 4));
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"sync_policy\""));
        assert!(json.contains("restart(patience=2)"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
