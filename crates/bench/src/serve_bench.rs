//! Serve-throughput measurement: whole-network mapping through one shared
//! [`MappingService`] vs. per-layer cold starts, plus the cached replay and
//! the pool's batched-vs-single evaluation dispatch.
//!
//! Three questions, one JSON (`BENCH_serve.json`):
//!
//! 1. **Shared pool** — what does serving the Table 1 network through one
//!    long-lived service cost vs. standing up a fresh service (fresh pool
//!    threads) for every layer?
//! 2. **Cache replay** — what does the *second* request for the same
//!    network cost on the long-lived service?
//! 3. **Batched dispatch** — how many evaluations/second does the pool
//!    sustain submitting one chunk job per worker
//!    ([`EvalPool::evaluate_batch`]) vs. one job per mapping?
//!
//! Single-core containers can only show overheads (≈1× shared vs. cold);
//! run on multi-core hardware for the real amortization numbers — see
//! EXPERIMENTS.md.

use std::sync::Arc;

use mm_accel::CostModel;
use mm_mapper::{CostEvaluator, EvalPool, ModelEvaluator};
use mm_mapspace::MapSpace;
use mm_serve::{MappingService, RequestConfig, ServiceConfig};
use mm_workloads::{evaluated_accelerator, table1_network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::{write_bench_json, Stopwatch};

/// The serve-throughput measurement set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchResult {
    /// Network served (the Table 1 set).
    pub network: String,
    /// Layers in the network.
    pub layers: usize,
    /// Evaluations per layer search.
    pub evals_per_layer: u64,
    /// Pool workers of the shared service.
    pub workers: usize,
    /// `std::thread::available_parallelism()` on the measuring machine.
    pub available_parallelism: usize,
    /// Wall seconds mapping the network with a fresh service per layer.
    pub cold_wall_s: f64,
    /// Wall seconds mapping the network through one shared service.
    pub serve_wall_s: f64,
    /// Fresh evaluations the shared serve spent.
    pub serve_evaluations: u64,
    /// Aggregate evaluations/second of the shared serve.
    pub serve_evals_per_sec: f64,
    /// Wall seconds of the second (fully cached) request.
    pub cached_wall_s: f64,
    /// Cache hits of the second request (= layers).
    pub cached_hits: usize,
    /// Evaluations/second submitting one mapping per pool job.
    pub single_dispatch_evals_per_sec: f64,
    /// Evaluations/second submitting one chunk job per worker.
    pub batch_dispatch_evals_per_sec: f64,
}

impl ServeBenchResult {
    /// Serialize as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"serve_throughput\",\n  \"network\": {:?},\n  \
             \"layers\": {},\n  \"evals_per_layer\": {},\n  \"workers\": {},\n  \
             \"available_parallelism\": {},\n  \"cold_wall_s\": {:.6},\n  \
             \"serve_wall_s\": {:.6},\n  \"serve_evaluations\": {},\n  \
             \"serve_evals_per_sec\": {:.3},\n  \"cached_wall_s\": {:.6},\n  \
             \"cached_hits\": {},\n  \"single_dispatch_evals_per_sec\": {:.3},\n  \
             \"batch_dispatch_evals_per_sec\": {:.3}\n}}\n",
            self.network,
            self.layers,
            self.evals_per_layer,
            self.workers,
            self.available_parallelism,
            self.cold_wall_s,
            self.serve_wall_s,
            self.serve_evaluations,
            self.serve_evals_per_sec,
            self.cached_wall_s,
            self.cached_hits,
            self.single_dispatch_evals_per_sec,
            self.batch_dispatch_evals_per_sec,
        )
    }

    /// Write `BENCH_serve.json` under the results directory (plus a
    /// telemetry sibling when collection is on), returning the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        write_bench_json("BENCH_serve.json", &self.to_json())
    }
}

/// Measure pool dispatch throughput over `mappings`, single-job-per-mapping
/// vs. one-chunk-job-per-worker.
fn dispatch_rates(
    evaluator: &Arc<dyn CostEvaluator>,
    space: &MapSpace,
    samples: usize,
    workers: usize,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(3);
    let mappings: Vec<_> = (0..samples)
        .map(|_| space.random_mapping(&mut rng))
        .collect();
    let mut pool = EvalPool::new(Arc::clone(evaluator), workers);

    let watch = Stopwatch::start();
    for m in &mappings {
        pool.submit(m.clone());
    }
    for _ in 0..mappings.len() {
        let _ = pool.recv();
    }
    let single_rate = watch.rate(samples as u64);

    let watch = Stopwatch::start();
    let evals = pool.evaluate_batch(&mappings);
    let batch_rate = watch.rate(samples as u64);
    assert_eq!(evals.len(), mappings.len());

    (single_rate, batch_rate)
}

/// Run the serve-throughput sweep on the Table 1 network.
pub fn run_serve_bench(evals_per_layer: u64, workers: usize, seed: u64) -> ServeBenchResult {
    let arch = evaluated_accelerator();
    let net = table1_network();
    let profile = (
        ServiceConfig::default()
            .with_workers(workers)
            .with_max_active_jobs(workers.max(2)),
        RequestConfig::default()
            .with_seed(seed)
            .with_search_size(evals_per_layer),
    );

    // Cold: a fresh service (fresh pool threads, empty cache) per layer.
    let watch = Stopwatch::start();
    for layer in &net.layers {
        let mut cold = MappingService::new(arch.clone(), profile.clone());
        let report = cold.map_problem(&layer.name, layer.problem.clone());
        assert_eq!(report.evaluations, evals_per_layer);
    }
    let cold_wall_s = watch.elapsed_s();

    // Shared: one long-lived service for the whole network…
    let mut service = MappingService::new(arch.clone(), profile);
    let watch = Stopwatch::start();
    let report = service.map_network(&net);
    let serve_wall_s = watch.elapsed_s();

    // …and the second, fully cached request.
    let watch = Stopwatch::start();
    let cached = service.map_network(&net);
    let cached_wall_s = watch.elapsed_s();
    assert_eq!(cached.total_evaluations, 0);

    let sample_problem = &net.layers[0].problem;
    let space = MapSpace::new(sample_problem.clone(), arch.mapping_constraints());
    let evaluator: Arc<dyn CostEvaluator> = Arc::new(ModelEvaluator::edp(CostModel::new(
        arch,
        sample_problem.clone(),
    )));
    let (single_rate, batch_rate) = dispatch_rates(
        &evaluator,
        &space,
        (evals_per_layer as usize).clamp(64, 4096),
        workers,
    );

    ServeBenchResult {
        network: net.name.clone(),
        layers: net.len(),
        evals_per_layer,
        workers,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cold_wall_s,
        serve_wall_s,
        serve_evaluations: report.total_evaluations,
        serve_evals_per_sec: report.evals_per_sec,
        cached_wall_s,
        cached_hits: cached.cache_hits,
        single_dispatch_evals_per_sec: single_rate,
        batch_dispatch_evals_per_sec: batch_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_serializes() {
        let result = run_serve_bench(40, 2, 5);
        assert_eq!(result.layers, 8);
        assert_eq!(result.serve_evaluations, 8 * 40);
        assert_eq!(result.cached_hits, 8);
        assert!(result.serve_evals_per_sec > 0.0);
        assert!(result.single_dispatch_evals_per_sec > 0.0);
        assert!(result.batch_dispatch_evals_per_sec > 0.0);
        assert!(result.cached_wall_s < result.serve_wall_s);

        let json = result.to_json();
        assert!(json.contains("\"bench\": \"serve_throughput\""));
        assert!(json.contains("\"layers\": 8"));
        assert!(json.contains("batch_dispatch_evals_per_sec"));
    }
}
