//! Whole-network workloads: an ordered list of named layers with repeat
//! counts — the first-class input format of `mm-serve`'s whole-model mapping
//! service.
//!
//! Real networks repeat shapes heavily (every residual block of a ResNet
//! stage shares one convolution shape), so a [`NetworkLayer`] carries a
//! `repeat` count and the serving layer maps each distinct shape once,
//! replaying the result for the repeats.

use mm_mapspace::ProblemSpec;
use serde::{Deserialize, Serialize};

use crate::table1;

/// One layer of a network: a named problem instance plus how many times the
/// network executes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkLayer {
    /// Layer name within the network (unique per position, e.g. `"conv2_1"`).
    pub name: String,
    /// The layer's fully parameterized problem.
    pub problem: ProblemSpec,
    /// How many times the network executes this layer (≥ 1).
    pub repeat: u64,
}

/// An ordered collection of named layers: the unit of work of whole-model
/// mapping.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Network {
    /// Network name (e.g. `"table1"`, `"resnet50"`).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<NetworkLayer>,
}

impl Network {
    /// An empty network with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Builder-style: append a layer executed `repeat` times.
    ///
    /// # Panics
    ///
    /// Panics if `repeat` is zero.
    pub fn with_layer(
        mut self,
        name: impl Into<String>,
        problem: ProblemSpec,
        repeat: u64,
    ) -> Self {
        self.push_layer(name, problem, repeat);
        self
    }

    /// Append a layer executed `repeat` times.
    ///
    /// # Panics
    ///
    /// Panics if `repeat` is zero.
    pub fn push_layer(&mut self, name: impl Into<String>, problem: ProblemSpec, repeat: u64) {
        assert!(repeat > 0, "layer repeat count must be at least 1");
        self.layers.push(NetworkLayer {
            name: name.into(),
            problem,
            repeat,
        });
    }

    /// Number of distinct layer entries.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total layer executions: the sum of repeat counts.
    pub fn total_instances(&self) -> u64 {
        self.layers.iter().map(|l| l.repeat).sum()
    }

    /// Look up a layer by name.
    pub fn layer(&self, name: &str) -> Option<&NetworkLayer> {
        self.layers.iter().find(|l| l.name == name)
    }
}

impl std::fmt::Display for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} layers, {} instances)",
            self.name,
            self.len(),
            self.total_instances()
        )
    }
}

/// The eight Table 1 target problems as a network (each executed once, in
/// table order) — the canonical whole-model serving workload.
pub fn table1_network() -> Network {
    let mut net = Network::new("table1");
    for target in table1::all_problems() {
        let name = target.problem.name.clone();
        net.push_layer(name, target.problem, 1);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_network_has_eight_layers_in_table_order() {
        let net = table1_network();
        assert_eq!(net.len(), 8);
        assert_eq!(net.total_instances(), 8);
        assert_eq!(net.layers[0].name, "ResNet Conv_3");
        assert_eq!(net.layers[7].name, "MTTKRP_1");
        assert!(net.layer("VGG Conv_2").is_some());
        assert!(net.layer("nonexistent").is_none());
        assert!(net.to_string().contains("8 layers"));
    }

    #[test]
    fn builder_preserves_order_and_repeats() {
        let net = Network::new("toy")
            .with_layer("a", ProblemSpec::conv1d(64, 3), 2)
            .with_layer("b", ProblemSpec::conv1d(128, 5), 1)
            .with_layer("a_again", ProblemSpec::conv1d(64, 3), 3);
        assert_eq!(net.len(), 3);
        assert_eq!(net.total_instances(), 6);
        assert_eq!(net.layers[0].repeat, 2);
        assert_eq!(net.layer("b").unwrap().problem.name, "conv1d_w128_r5");
        assert!(!net.is_empty());
        assert!(Network::new("empty").is_empty());
    }

    #[test]
    #[should_panic(expected = "repeat count")]
    fn zero_repeat_is_rejected() {
        let _ = Network::new("bad").with_layer("x", ProblemSpec::conv1d(64, 3), 0);
    }
}
