//! The pedagogical 1-D convolution of Section 3, as a problem family.
//!
//! `O[x] = Σ_r I[x + r] · F[r]` for input width `W` and filter size `R`.
//! Small enough to reason about by hand (and to near-exhaustively explore in
//! tests), but structurally identical to the CNN layer: a compound
//! sliding-window input index, a reduction dimension, and the same mapping
//! attributes.

use mm_mapspace::problem::{ProblemFamily, ProblemSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 1-D convolution problem family with configurable width/filter ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv1dFamily {
    /// Range of input widths `W` (inclusive).
    pub w_range: (u64, u64),
    /// Filter sizes `R` to sample from.
    pub r_choices: [u64; 4],
}

impl Default for Conv1dFamily {
    fn default() -> Self {
        Conv1dFamily {
            w_range: (64, 4096),
            r_choices: [3, 5, 7, 9],
        }
    }
}

impl Conv1dFamily {
    /// Build a specific 1-D convolution problem.
    pub fn problem(w: u64, r: u64) -> ProblemSpec {
        ProblemSpec::conv1d(w, r)
    }
}

impl ProblemFamily for Conv1dFamily {
    fn algorithm(&self) -> &str {
        "conv1d"
    }

    fn num_dims(&self) -> usize {
        2
    }

    fn num_tensors(&self) -> usize {
        3
    }

    fn sample_problem(&self, rng: &mut dyn rand::RngCore) -> ProblemSpec {
        let r = self.r_choices[rng.gen_range(0..self.r_choices.len() as u32) as usize];
        let lo = (self.w_range.0.max(r) as f64).ln();
        let hi = (self.w_range.1.max(r + 1) as f64).ln();
        let w: f64 = rng.gen_range(lo..=hi);
        ProblemSpec::conv1d(w.exp().round() as u64, r)
    }

    fn canonical_problem(&self) -> ProblemSpec {
        ProblemSpec::conv1d(1024, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn family_shape() {
        let fam = Conv1dFamily::default();
        assert_eq!(fam.algorithm(), "conv1d");
        assert_eq!(fam.num_dims(), 2);
        assert_eq!(fam.num_tensors(), 3);
        assert_eq!(fam.canonical_problem().num_dims(), 2);
    }

    #[test]
    fn sampled_problems_respect_ranges() {
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = fam.sample_problem(&mut rng);
            assert_eq!(p.num_dims(), 2);
            let r = p.dim_sizes[1];
            assert!(fam.r_choices.contains(&r));
            assert!(p.dim_sizes[0] >= 1);
        }
    }

    #[test]
    fn problem_constructor_delegates() {
        let p = Conv1dFamily::problem(100, 5);
        assert_eq!(p.dim_sizes, vec![96, 5]);
    }
}
