//! Table 1: the eight target problems used throughout the evaluation
//! (six CNN layers and two MTTKRP shapes).

use mm_mapspace::ProblemSpec;
use serde::{Deserialize, Serialize};

use crate::cnn::CnnLayer;
use crate::mttkrp::MttkrpShape;

/// Which algorithm a Table 1 problem belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Convolutional neural-network layer (Equation 3).
    CnnLayer,
    /// Matricized tensor times Khatri-Rao product (Equation 4).
    Mttkrp,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::CnnLayer => write!(f, "CNN-Layer"),
            Algorithm::Mttkrp => write!(f, "MTTKRP"),
        }
    }
}

/// One row of Table 1: a named target problem and its algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetProblem {
    /// The algorithm family the problem belongs to.
    pub algorithm: Algorithm,
    /// The fully parameterized problem.
    pub problem: ProblemSpec,
}

/// All eight target problems of Table 1, in table order.
pub fn all_problems() -> Vec<TargetProblem> {
    let mut out: Vec<TargetProblem> = CnnLayer::table1_layers()
        .into_iter()
        .map(|l| TargetProblem {
            algorithm: Algorithm::CnnLayer,
            problem: l.into_problem(),
        })
        .collect();
    out.extend(
        MttkrpShape::table1_shapes()
            .into_iter()
            .map(|s| TargetProblem {
                algorithm: Algorithm::Mttkrp,
                problem: s.into_problem(),
            }),
    );
    out
}

/// The CNN-layer rows of Table 1.
pub fn cnn_problems() -> Vec<TargetProblem> {
    all_problems()
        .into_iter()
        .filter(|t| t.algorithm == Algorithm::CnnLayer)
        .collect()
}

/// The MTTKRP rows of Table 1.
pub fn mttkrp_problems() -> Vec<TargetProblem> {
    all_problems()
        .into_iter()
        .filter(|t| t.algorithm == Algorithm::Mttkrp)
        .collect()
}

/// Look up a Table 1 problem by name (e.g. `"ResNet Conv_4"`, `"MTTKRP_0"`).
pub fn by_name(name: &str) -> Option<TargetProblem> {
    all_problems().into_iter().find(|t| t.problem.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_eight_rows() {
        let all = all_problems();
        assert_eq!(all.len(), 8);
        assert_eq!(cnn_problems().len(), 6);
        assert_eq!(mttkrp_problems().len(), 2);
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<String> = all_problems()
            .iter()
            .map(|t| t.problem.name.clone())
            .collect();
        for expected in [
            "ResNet Conv_3",
            "ResNet Conv_4",
            "Inception Conv_2",
            "VGG Conv_2",
            "AlexNet Conv_2",
            "AlexNet Conv_4",
            "MTTKRP_0",
            "MTTKRP_1",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn lookup_by_name() {
        let t = by_name("ResNet Conv_4").unwrap();
        assert_eq!(t.algorithm, Algorithm::CnnLayer);
        assert_eq!(t.problem.dim_sizes[1], 256);
        assert!(by_name("nonexistent").is_none());
        assert_eq!(Algorithm::Mttkrp.to_string(), "MTTKRP");
    }

    #[test]
    fn resnet_conv4_map_space_is_astronomical() {
        // Section 3.1 quotes roughly 1e25 valid mappings for ResNet Conv_4;
        // our estimate should be in the same regime (very large).
        use mm_mapspace::{MapSpace, MappingConstraints};
        let t = by_name("ResNet Conv_4").unwrap();
        let space = MapSpace::new(t.problem, MappingConstraints::paper_accelerator());
        assert!(space.log10_size_estimate() > 15.0);
    }
}
