//! CNN-layer problems (Equation 3 of the paper).
//!
//! A CNN layer convolves `N` input images of `C` channels and spatial size
//! `W × H` with `K` filters of size `R × S`, producing `K` output channels of
//! size `X × Y` where `X = W − R + 1` and `Y = H − S + 1` (stride 1). As a
//! problem spec this is a 7-dimensional iteration space `(N, K, C, X, Y, R,
//! S)` with three tensors:
//!
//! * input `I[n, c, x + r, y + s]`,
//! * filter `F[k, c, r, s]`,
//! * output `O[n, k, x, y]`.

use mm_mapspace::problem::{DimId, ProblemFamily, ProblemSpec, TensorDim, TensorKind, TensorSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Canonical order of the CNN problem dimensions.
pub const CNN_DIMS: [&str; 7] = ["N", "K", "C", "X", "Y", "R", "S"];

/// A CNN layer shape, following Table 1's columns (`H`, `W` are the *input*
/// spatial sizes; the output sizes `X`, `Y` are derived).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnLayer {
    /// Layer name (e.g. `"ResNet Conv_4"`).
    pub name: &'static str,
    /// Batch size.
    pub n: u64,
    /// Output channels (number of filters).
    pub k: u64,
    /// Input channels.
    pub c: u64,
    /// Input spatial height = width.
    pub hw: u64,
    /// Filter spatial size (R = S).
    pub rs: u64,
}

impl CnnLayer {
    /// Output spatial extent `X = Y = W − R + 1` (stride 1).
    pub fn output_extent(&self) -> u64 {
        self.hw.saturating_sub(self.rs) + 1
    }

    /// Convert to a generic [`ProblemSpec`].
    pub fn into_problem(self) -> ProblemSpec {
        let xy = self.output_extent();
        let d = |i: usize| DimId(i);
        // Dimension order: N=0, K=1, C=2, X=3, Y=4, R=5, S=6.
        ProblemSpec::new(
            self.name,
            vec![
                ("N", self.n),
                ("K", self.k),
                ("C", self.c),
                ("X", xy),
                ("Y", xy),
                ("R", self.rs),
                ("S", self.rs),
            ],
            vec![
                TensorSpec::new(
                    "I",
                    TensorKind::Input,
                    vec![
                        TensorDim::Single(d(0)),
                        TensorDim::Single(d(2)),
                        TensorDim::Compound(d(3), d(5)),
                        TensorDim::Compound(d(4), d(6)),
                    ],
                ),
                TensorSpec::new(
                    "F",
                    TensorKind::Input,
                    vec![
                        TensorDim::Single(d(1)),
                        TensorDim::Single(d(2)),
                        TensorDim::Single(d(5)),
                        TensorDim::Single(d(6)),
                    ],
                ),
                TensorSpec::new(
                    "O",
                    TensorKind::Output,
                    vec![
                        TensorDim::Single(d(0)),
                        TensorDim::Single(d(1)),
                        TensorDim::Single(d(3)),
                        TensorDim::Single(d(4)),
                    ],
                ),
            ],
        )
    }

    // ---- The six CNN target problems of Table 1. ----

    /// ResNet Conv_3: N=16, K=128, H,W=28, R,S=3, C=128.
    pub fn resnet_conv3() -> Self {
        CnnLayer {
            name: "ResNet Conv_3",
            n: 16,
            k: 128,
            c: 128,
            hw: 28,
            rs: 3,
        }
    }

    /// ResNet Conv_4: N=16, K=256, H,W=14, R,S=3, C=256.
    pub fn resnet_conv4() -> Self {
        CnnLayer {
            name: "ResNet Conv_4",
            n: 16,
            k: 256,
            c: 256,
            hw: 14,
            rs: 3,
        }
    }

    /// Inception Conv_2: N=32, K=192, H,W=56, R,S=3, C=192.
    pub fn inception_conv2() -> Self {
        CnnLayer {
            name: "Inception Conv_2",
            n: 32,
            k: 192,
            c: 192,
            hw: 56,
            rs: 3,
        }
    }

    /// VGG Conv_2: N=16, K=128, H,W=112, R,S=3, C=64.
    pub fn vgg_conv2() -> Self {
        CnnLayer {
            name: "VGG Conv_2",
            n: 16,
            k: 128,
            c: 64,
            hw: 112,
            rs: 3,
        }
    }

    /// AlexNet Conv_2: N=8, K=256, H,W=27, R,S=5, C=96.
    pub fn alexnet_conv2() -> Self {
        CnnLayer {
            name: "AlexNet Conv_2",
            n: 8,
            k: 256,
            c: 96,
            hw: 27,
            rs: 5,
        }
    }

    /// AlexNet Conv_4: N=8, K=384, H,W=13, R,S=3, C=384.
    pub fn alexnet_conv4() -> Self {
        CnnLayer {
            name: "AlexNet Conv_4",
            n: 8,
            k: 384,
            c: 384,
            hw: 13,
            rs: 3,
        }
    }

    /// All six CNN target problems of Table 1, in table order.
    pub fn table1_layers() -> Vec<CnnLayer> {
        vec![
            Self::resnet_conv3(),
            Self::resnet_conv4(),
            Self::inception_conv2(),
            Self::vgg_conv2(),
            Self::alexnet_conv2(),
            Self::alexnet_conv4(),
        ]
    }
}

/// The CNN-layer problem family: representative layer shapes sampled from the
/// typical ranges of modern networks (Section 5.5, "Dataset"), used to build
/// the Phase-1 training set so the surrogate generalizes across layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnFamily {
    /// Range of batch sizes sampled (inclusive).
    pub n_range: (u64, u64),
    /// Range of output-channel counts sampled (inclusive).
    pub k_range: (u64, u64),
    /// Range of input-channel counts sampled (inclusive).
    pub c_range: (u64, u64),
    /// Range of input spatial sizes sampled (inclusive).
    pub hw_range: (u64, u64),
    /// Filter sizes sampled.
    pub rs_choices: [u64; 3],
}

impl Default for CnnFamily {
    fn default() -> Self {
        CnnFamily {
            n_range: (1, 32),
            k_range: (32, 512),
            c_range: (16, 512),
            hw_range: (7, 112),
            rs_choices: [1, 3, 5],
        }
    }
}

impl ProblemFamily for CnnFamily {
    fn algorithm(&self) -> &str {
        "cnn-layer"
    }

    fn num_dims(&self) -> usize {
        7
    }

    fn num_tensors(&self) -> usize {
        3
    }

    fn sample_problem(&self, rng: &mut dyn rand::RngCore) -> ProblemSpec {
        let r = rng;
        let sample = |r: &mut dyn rand::RngCore, lo: u64, hi: u64| -> u64 {
            // Log-uniform over the range, matching the spread of real layers.
            let lo_f = (lo as f64).ln();
            let hi_f = (hi as f64).ln();
            let v: f64 = r.gen_range(lo_f..=hi_f);
            v.exp().round().clamp(lo as f64, hi as f64) as u64
        };
        let rs = self.rs_choices[(r.gen_range(0..self.rs_choices.len() as u32)) as usize];
        let hw = sample(&mut *r, self.hw_range.0.max(rs), self.hw_range.1.max(rs));
        let layer = CnnLayer {
            name: "cnn-sampled",
            n: sample(&mut *r, self.n_range.0, self.n_range.1),
            k: sample(&mut *r, self.k_range.0, self.k_range.1),
            c: sample(&mut *r, self.c_range.0, self.c_range.1),
            hw,
            rs,
        };
        let mut p = layer.into_problem();
        p.name = format!(
            "cnn_n{}_k{}_c{}_hw{}_rs{}",
            layer.n, layer.k, layer.c, layer.hw, layer.rs
        );
        p
    }

    fn canonical_problem(&self) -> ProblemSpec {
        CnnLayer::resnet_conv4().into_problem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resnet_conv4_dimensions() {
        let p = CnnLayer::resnet_conv4().into_problem();
        assert_eq!(p.num_dims(), 7);
        assert_eq!(p.num_tensors(), 3);
        assert_eq!(p.dim_sizes, vec![16, 256, 256, 12, 12, 3, 3]);
        // MACs = N*K*C*X*Y*R*S
        assert_eq!(p.total_macs(), 16 * 256 * 256 * 12 * 12 * 3 * 3);
    }

    #[test]
    fn tensor_projections_are_correct() {
        let p = CnnLayer::alexnet_conv2().into_problem();
        let input = &p.tensors[0];
        let filter = &p.tensors[1];
        let output = &p.tensors[2];
        // Input does not depend on K; filter does not depend on N, X, Y;
        // output does not depend on C, R, S.
        assert!(!input.is_relevant(DimId(1)));
        assert!(!filter.is_relevant(DimId(0)));
        assert!(!filter.is_relevant(DimId(3)));
        assert!(!output.is_relevant(DimId(2)));
        assert!(!output.is_relevant(DimId(5)));
        assert_eq!(p.reduction_dims(), vec![DimId(2), DimId(5), DimId(6)]);
    }

    #[test]
    fn input_tensor_size_accounts_for_halo() {
        let layer = CnnLayer::alexnet_conv2();
        let p = layer.into_problem();
        // I size = N * C * (X + R - 1)^2 = N * C * H * W (since X = H - R + 1).
        assert_eq!(p.tensor_size(0), layer.n * layer.c * layer.hw * layer.hw,);
        // F size = K * C * R * S.
        assert_eq!(p.tensor_size(1), layer.k * layer.c * layer.rs * layer.rs);
        // O size = N * K * X * Y.
        let xy = layer.output_extent();
        assert_eq!(p.tensor_size(2), layer.n * layer.k * xy * xy);
    }

    #[test]
    fn table1_contains_six_cnn_layers() {
        let layers = CnnLayer::table1_layers();
        assert_eq!(layers.len(), 6);
        assert!(layers.iter().all(|l| l.output_extent() >= 1));
    }

    #[test]
    fn family_samples_have_constant_shape() {
        let fam = CnnFamily::default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let p = fam.sample_problem(&mut rng);
            assert_eq!(p.num_dims(), fam.num_dims());
            assert_eq!(p.num_tensors(), fam.num_tensors());
            assert!(p.dim_sizes.iter().all(|&s| s >= 1));
            // K sampled within the requested range.
            let k = p.dim_size(DimId(1));
            assert!((32..=512).contains(&k));
        }
        assert_eq!(fam.algorithm(), "cnn-layer");
        assert_eq!(fam.canonical_problem().num_dims(), 7);
    }
}
