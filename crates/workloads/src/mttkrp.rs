//! MTTKRP problems (Equation 4 of the paper).
//!
//! The matricized-tensor-times-Khatri-Rao-product contracts a 3-D tensor
//! `A[i, k, l]` with two matrices `B[k, j]` and `C[l, j]`:
//!
//! ```text
//! O[i, j] = Σ_k Σ_l A[i, k, l] · B[k, j] · C[l, j]
//! ```
//!
//! This is a 4-dimensional iteration space `(I, J, K, L)` with four tensors
//! (three inputs and the output), hence the 40-value mapping encoding and the
//! 15-value cost vector reported in Section 5.5.

use mm_mapspace::problem::{DimId, ProblemFamily, ProblemSpec, TensorDim, TensorKind, TensorSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Canonical order of the MTTKRP problem dimensions.
pub const MTTKRP_DIMS: [&str; 4] = ["I", "J", "K", "L"];

/// An MTTKRP problem shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MttkrpShape {
    /// Problem name.
    pub name: &'static str,
    /// Rows of the output (first mode of `A`).
    pub i: u64,
    /// Columns of the output (shared column dimension of `B` and `C`).
    pub j: u64,
    /// First contracted dimension.
    pub k: u64,
    /// Second contracted dimension.
    pub l: u64,
}

impl MttkrpShape {
    /// MTTKRP_0 of Table 1: I=128, J=1024, K=4096, L=2048.
    pub fn mttkrp_0() -> Self {
        MttkrpShape {
            name: "MTTKRP_0",
            i: 128,
            j: 1024,
            k: 4096,
            l: 2048,
        }
    }

    /// MTTKRP_1 of Table 1: I=2048, J=4096, K=1024, L=128.
    pub fn mttkrp_1() -> Self {
        MttkrpShape {
            name: "MTTKRP_1",
            i: 2048,
            j: 4096,
            k: 1024,
            l: 128,
        }
    }

    /// Both MTTKRP target problems of Table 1.
    pub fn table1_shapes() -> Vec<MttkrpShape> {
        vec![Self::mttkrp_0(), Self::mttkrp_1()]
    }

    /// Convert to a generic [`ProblemSpec`].
    pub fn into_problem(self) -> ProblemSpec {
        let d = |i: usize| DimId(i);
        // Dimension order: I=0, J=1, K=2, L=3.
        ProblemSpec::new(
            self.name,
            vec![("I", self.i), ("J", self.j), ("K", self.k), ("L", self.l)],
            vec![
                TensorSpec::new(
                    "A",
                    TensorKind::Input,
                    vec![
                        TensorDim::Single(d(0)),
                        TensorDim::Single(d(2)),
                        TensorDim::Single(d(3)),
                    ],
                ),
                TensorSpec::new(
                    "B",
                    TensorKind::Input,
                    vec![TensorDim::Single(d(2)), TensorDim::Single(d(1))],
                ),
                TensorSpec::new(
                    "C",
                    TensorKind::Input,
                    vec![TensorDim::Single(d(3)), TensorDim::Single(d(1))],
                ),
                TensorSpec::new(
                    "O",
                    TensorKind::Output,
                    vec![TensorDim::Single(d(0)), TensorDim::Single(d(1))],
                ),
            ],
        )
    }
}

/// The MTTKRP problem family used for surrogate training: tall-and-skinny
/// tensor shapes typical of tensor-decomposition workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MttkrpFamily {
    /// Range of the `I` dimension (inclusive).
    pub i_range: (u64, u64),
    /// Range of the `J` dimension (inclusive).
    pub j_range: (u64, u64),
    /// Range of the `K` dimension (inclusive).
    pub k_range: (u64, u64),
    /// Range of the `L` dimension (inclusive).
    pub l_range: (u64, u64),
}

impl Default for MttkrpFamily {
    fn default() -> Self {
        MttkrpFamily {
            i_range: (64, 4096),
            j_range: (256, 8192),
            k_range: (64, 8192),
            l_range: (64, 4096),
        }
    }
}

impl ProblemFamily for MttkrpFamily {
    fn algorithm(&self) -> &str {
        "mttkrp"
    }

    fn num_dims(&self) -> usize {
        4
    }

    fn num_tensors(&self) -> usize {
        4
    }

    fn sample_problem(&self, rng: &mut dyn rand::RngCore) -> ProblemSpec {
        let mut sample = |lo: u64, hi: u64| -> u64 {
            let v: f64 = rng.gen_range((lo as f64).ln()..=(hi as f64).ln());
            v.exp().round().clamp(lo as f64, hi as f64) as u64
        };
        let shape = MttkrpShape {
            name: "mttkrp-sampled",
            i: sample(self.i_range.0, self.i_range.1),
            j: sample(self.j_range.0, self.j_range.1),
            k: sample(self.k_range.0, self.k_range.1),
            l: sample(self.l_range.0, self.l_range.1),
        };
        let mut p = shape.into_problem();
        p.name = format!("mttkrp_i{}_j{}_k{}_l{}", shape.i, shape.j, shape.k, shape.l);
        p
    }

    fn canonical_problem(&self) -> ProblemSpec {
        MttkrpShape::mttkrp_0().into_problem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mttkrp0_dimensions() {
        let p = MttkrpShape::mttkrp_0().into_problem();
        assert_eq!(p.num_dims(), 4);
        assert_eq!(p.num_tensors(), 4);
        assert_eq!(p.dim_sizes, vec![128, 1024, 4096, 2048]);
        assert_eq!(p.total_macs(), 128u128 * 1024 * 4096 * 2048,);
    }

    #[test]
    fn tensor_shapes_match_equation_4() {
        let s = MttkrpShape::mttkrp_1();
        let p = s.into_problem();
        assert_eq!(p.tensor_size(0), s.i * s.k * s.l); // A
        assert_eq!(p.tensor_size(1), s.k * s.j); // B
        assert_eq!(p.tensor_size(2), s.l * s.j); // C
        assert_eq!(p.tensor_size(3), s.i * s.j); // O
        assert_eq!(p.output_tensor(), 3);
        assert_eq!(p.reduction_dims(), vec![DimId(2), DimId(3)]);
    }

    #[test]
    fn table1_contains_two_shapes() {
        assert_eq!(MttkrpShape::table1_shapes().len(), 2);
    }

    #[test]
    fn family_samples_are_well_formed() {
        let fam = MttkrpFamily::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let p = fam.sample_problem(&mut rng);
            assert_eq!(p.num_dims(), 4);
            assert_eq!(p.num_tensors(), 4);
            assert!(p.dim_sizes.iter().all(|&s| s >= 64));
        }
        assert_eq!(fam.algorithm(), "mttkrp");
        assert_eq!(fam.canonical_problem().name, "MTTKRP_0");
    }

    #[test]
    fn encoding_length_is_40() {
        use mm_mapspace::Encoding;
        let p = MttkrpShape::mttkrp_0().into_problem();
        let enc = Encoding::for_problem(&p);
        assert_eq!(enc.total_len(), 40);
    }
}
