//! # mm-workloads
//!
//! The target algorithms and problems evaluated in *Mind Mappings*
//! (ASPLOS 2021, Section 5.1):
//!
//! * [`cnn`] — convolutional-layer problems (Equation 3) and the
//!   representative-problem family used to train the CNN surrogate;
//! * [`mttkrp`] — matricized-tensor-times-Khatri-Rao-product problems
//!   (Equation 4) and their family;
//! * [`conv1d`] — the pedagogical 1-D convolution of Section 3;
//! * [`table1`] — the eight target problems of Table 1;
//! * [`network`] — whole-network workloads (ordered named layers with
//!   repeat counts), including [`table1_network`];
//! * [`evaluated_accelerator`] — the 256-PE accelerator of Section 5.1.2.
//!
//! ```
//! use mm_workloads::{cnn::CnnLayer, table1};
//!
//! let resnet_conv4 = CnnLayer::resnet_conv4().into_problem();
//! assert_eq!(resnet_conv4.num_dims(), 7);
//! assert_eq!(table1::all_problems().len(), 8);
//! ```

pub mod cnn;
pub mod conv1d;
pub mod mttkrp;
pub mod network;
pub mod table1;

pub use network::{table1_network, Network, NetworkLayer};

use mm_accel::Architecture;

/// The flexible accelerator evaluated in Section 5.1.2: 256 PEs at 1 GHz,
/// 64 KB private buffer per PE, 512 KB shared buffer.
pub fn evaluated_accelerator() -> Architecture {
    Architecture::paper_accelerator()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluated_accelerator_is_the_paper_configuration() {
        let a = evaluated_accelerator();
        assert_eq!(a.num_pes, 256);
        assert_eq!(a.l2.capacity_words * a.word_bytes, 512 * 1024);
    }
}
