//! Fixture: second copy of a long duplicated literal.

pub const BANNER_B: &str = "a sufficiently long literal shared by two fixture files";
