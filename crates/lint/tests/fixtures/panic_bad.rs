//! Fixture: panic-hygiene violations in library code.

pub fn first_two(values: &[u64]) -> (u64, u64) {
    let first = *values.first().unwrap();
    let second = *values.get(1).expect("needs two values");
    if first > second {
        panic!("unordered");
    }
    (first, second)
}

pub fn later() -> u64 {
    todo!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        assert_eq!(super::first_two(&[1, 2]), (1, 2));
        Some(3u64).unwrap();
    }
}
