//! Fixture: allocation tokens inside `hot-path`-tagged regions must fire;
//! the same tokens in untagged or test code must not.

pub struct Proposals {
    slots: Vec<u64>,
}

// mm-lint: hot-path — the steady-state loop must not allocate.
pub fn propose_into(out: &mut Proposals, n: usize) {
    // BAD: fresh vector per call.
    let staging = Vec::new();
    out.slots = staging;
    // BAD: vec! macro allocates per call.
    let seeds = vec![0u64; n];
    // BAD: to_vec clones into a fresh allocation.
    out.slots = seeds.to_vec();
    // BAD: collect allocates the result.
    out.slots = (0..n as u64).collect();
}

// mm-lint: hot-path — growth-only cold path documented below.
pub fn grow(out: &mut Proposals) {
    // mm-lint: allow(hot-path): first-use growth; steady state reuses slots.
    let spare = Vec::new();
    out.slots = spare;
}

pub fn untagged_allocates_freely(n: usize) -> Vec<u64> {
    // Fine: no hot-path tag on this function.
    (0..n as u64).collect()
}

#[cfg(test)]
mod tests {
    // mm-lint: hot-path — even tagged, test code is exempt.
    #[test]
    fn scratch() {
        let v: Vec<u64> = (0..4).collect();
        assert_eq!(v.len(), 4);
    }
}
