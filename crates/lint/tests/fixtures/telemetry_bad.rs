//! Fixture: telemetry call sites outside the level gate.

pub fn ungated(counter: &mm_telemetry::Counter, hist: &mm_telemetry::Histogram) {
    counter.incr(1);
    hist.record_unchecked(42);
    mm_telemetry::journal().push("event".to_string());
}

pub fn eager_format(label: &str) {
    let tele_name = format!("serve.{label}.requests");
    drop(tele_name);
}

pub fn gated_ok(hist: &mm_telemetry::Histogram) {
    if mm_telemetry::journal_enabled() {
        hist.record_unchecked(42);
    }
}
