//! Fixture: first copy of a long duplicated literal.

pub const BANNER_A: &str = "a sufficiently long literal shared by two fixture files";
