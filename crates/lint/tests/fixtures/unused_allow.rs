//! Fixture: an allow directive that suppresses nothing.

// mm-lint: allow(panic): stale — nothing below panics anymore
pub fn perfectly_fine() -> u64 {
    7
}
