// mm-lint: identity — fixture: identity-tagged file with determinism leaks.
use std::collections::HashMap;
use std::time::Instant;

pub fn canonical_seed(parts: &[u64]) -> u64 {
    let started = Instant::now();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &p in parts {
        *counts.entry(p).or_insert(0) += 1;
    }
    let noise: u64 = rand::thread_rng().gen();
    started.elapsed().as_nanos() as u64 ^ noise ^ counts.len() as u64
}
