//! Fixture: a module every rule passes.
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn tally(values: &[u64]) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for &v in values {
        *out.entry(v).or_insert(0) += 1;
    }
    out
}

// A comment mentioning Instant::now() and .unwrap() must not trip rules.

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::tally(&[1, 1]).get(&1).copied().unwrap(), 2);
    }
}
