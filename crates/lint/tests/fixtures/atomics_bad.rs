//! Fixture: atomics-hygiene violations.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub static mut GLOBAL_TALLY: u64 = 0;

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::SeqCst);
}

pub fn send_under_lock(queue: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let guard = queue.lock().unwrap();
    tx.send(guard.len() as u64).ok();
}

pub fn send_after_drop(queue: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let guard = queue.lock().unwrap();
    let n = guard.len() as u64;
    drop(guard);
    tx.send(n).ok();
}
