//! The tier-1 integration surface of mm-lint.
//!
//! Three layers: per-rule fixture checks (each rule class fires on its bad
//! fixture and stays quiet on the clean one), a whole-fixture-directory run
//! through the same `lint_workspace` entry point the binary uses (so a
//! fixture regression also breaks the CLI behavior), and the workspace
//! self-check — the real tree must lint clean, which is what makes
//! `cargo test` enforce the contracts on every change.

use mm_lint::{analyze_source, finalize, lint_workspace, load_config, Config, Rule, Violation};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lint one fixture as if it lived in a library crate.
fn lint_fixture(name: &str, config: &Config) -> Vec<Violation> {
    let rel = format!("crates/demo/src/{name}");
    finalize(vec![analyze_source(&rel, &fixture(name), config)])
}

fn count(violations: &[Violation], rule: Rule) -> usize {
    violations.iter().filter(|v| v.rule == rule).count()
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn determinism_fixture_fails() {
    let violations = lint_fixture("determinism_bad.rs", &Config::default());
    // HashMap (import + binding), Instant::now, thread_rng.
    assert!(
        count(&violations, Rule::Determinism) >= 3,
        "expected determinism violations, got: {violations:?}"
    );
}

#[test]
fn telemetry_fixture_fails_only_on_ungated_sites() {
    let violations = lint_fixture("telemetry_bad.rs", &Config::default());
    // .incr, .record_unchecked, journal().push, eager tele format!.
    assert!(
        count(&violations, Rule::TelemetryGate) >= 4,
        "expected telemetry-gate violations, got: {violations:?}"
    );
    // The gated_ok fn sits behind journal_enabled(): its record_unchecked
    // must NOT be flagged, so exactly one record_unchecked violation.
    let unchecked = violations
        .iter()
        .filter(|v| v.rule == Rule::TelemetryGate && v.message.contains("record_unchecked"))
        .count();
    assert_eq!(
        unchecked, 1,
        "gated record_unchecked was flagged: {violations:?}"
    );
}

#[test]
fn atomics_fixture_fails_and_drop_clears_the_guard() {
    let violations = lint_fixture("atomics_bad.rs", &Config::default());
    let atomics: Vec<&Violation> = violations
        .iter()
        .filter(|v| v.rule == Rule::Atomics)
        .collect();
    // static mut, SeqCst, send-under-lock — but not the send after drop().
    assert_eq!(
        atomics.len(),
        3,
        "expected 3 atomics violations, got: {atomics:?}"
    );
    let lock_sends = atomics
        .iter()
        .filter(|v| v.message.contains("lock guard"))
        .count();
    assert_eq!(
        lock_sends, 1,
        "drop(guard) must clear the guard: {atomics:?}"
    );
}

#[test]
fn panic_fixture_fails_outside_tests_only() {
    let violations = lint_fixture("panic_bad.rs", &Config::default());
    // .unwrap(), .expect(, panic!, todo! — the test-module unwrap is exempt.
    assert_eq!(
        count(&violations, Rule::PanicHygiene),
        4,
        "expected 4 panic violations, got: {violations:?}"
    );
}

#[test]
fn unused_allow_fixture_fails() {
    let violations = lint_fixture("unused_allow.rs", &Config::default());
    assert_eq!(
        count(&violations, Rule::UnusedAllow),
        1,
        "expected 1 unused-allow violation, got: {violations:?}"
    );
}

#[test]
fn hot_path_fixture_fails_only_in_tagged_regions() {
    let violations = lint_fixture("hot_path_bad.rs", &Config::default());
    // Vec::new, vec!, .to_vec(, .collect( — all inside the tagged fn; the
    // untagged fn's collect and the test-module allocations stay quiet, and
    // the documented growth path's allow suppresses (no unused-allow).
    assert_eq!(
        count(&violations, Rule::HotPath),
        4,
        "expected 4 hot-path violations, got: {violations:?}"
    );
    assert_eq!(
        count(&violations, Rule::UnusedAllow),
        0,
        "the growth-path allow must be consumed: {violations:?}"
    );
}

#[test]
fn clean_fixture_passes() {
    let violations = lint_fixture("clean.rs", &Config::default());
    assert!(
        violations.is_empty(),
        "clean fixture flagged: {violations:?}"
    );
}

#[test]
fn duplicate_literals_are_flagged_across_files() {
    let config = Config::default();
    let analyses = vec![
        analyze_source("crates/demo/src/dup_a.rs", &fixture("dup_a.rs"), &config),
        analyze_source("crates/demo/src/dup_b.rs", &fixture("dup_b.rs"), &config),
    ];
    let violations = finalize(analyses);
    assert_eq!(
        count(&violations, Rule::DupLiteral),
        2,
        "expected both dup sites flagged, got: {violations:?}"
    );
}

#[test]
fn fixture_directory_fails_through_the_cli_entry_point() {
    // The same path the binary takes: every fixture class must surface.
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let violations = lint_workspace(&fixtures, &Config::default()).expect("fixture dir lints");
    for rule in [
        Rule::Determinism,
        Rule::TelemetryGate,
        Rule::Atomics,
        Rule::PanicHygiene,
        Rule::UnusedAllow,
        Rule::DupLiteral,
        Rule::HotPath,
    ] {
        assert!(
            count(&violations, rule) > 0,
            "rule {} not represented in fixture dir run",
            rule.name()
        );
    }
}

#[test]
fn workspace_self_check_is_clean() {
    let root = workspace_root();
    let config = load_config(&root).expect("lint.toml parses");
    let violations = lint_workspace(&root, &config).expect("workspace lints");
    assert!(
        violations.is_empty(),
        "workspace must lint clean; run `cargo run -p mm-lint` for details:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeding_entropy_into_an_identity_file_fails() {
    let root = workspace_root();
    let rel = "crates/search/src/sync.rs";
    let mut text = std::fs::read_to_string(root.join(rel)).expect("sync.rs readable");
    text.push_str("\npub fn chaos() -> u64 {\n    rand::thread_rng().next_u64()\n}\n");
    let config = load_config(&root).expect("lint.toml parses");
    let violations = finalize(vec![analyze_source(rel, &text, &config)]);
    assert!(
        count(&violations, Rule::Determinism) >= 1,
        "thread_rng in an identity file must fail, got: {violations:?}"
    );
}

#[test]
fn seeding_an_ungated_counter_into_the_scheduler_fails() {
    let root = workspace_root();
    let rel = "crates/serve/src/scheduler.rs";
    let mut text = std::fs::read_to_string(root.join(rel)).expect("scheduler.rs readable");
    text.push_str("\npub fn tally(counter: &mm_telemetry::Counter) {\n    counter.incr(1);\n}\n");
    let config = load_config(&root).expect("lint.toml parses");
    let violations = finalize(vec![analyze_source(rel, &text, &config)]);
    assert!(
        count(&violations, Rule::TelemetryGate) >= 1,
        "an ungated counter.incr() in the scheduler must fail, got: {violations:?}"
    );
}

#[test]
fn listed_identity_file_without_header_fails() {
    let config = Config {
        identity_files: vec!["crates/demo/src/clean.rs".to_string()],
        ..Config::default()
    };
    let violations = lint_fixture("clean.rs", &config);
    assert_eq!(
        count(&violations, Rule::IdentityTag),
        1,
        "missing identity header must fail, got: {violations:?}"
    );
}

#[test]
fn exempt_paths_are_skipped() {
    let config = Config::default();
    let violations = finalize(vec![analyze_source(
        "crates/demo/tests/panic_bad.rs",
        &fixture("panic_bad.rs"),
        &config,
    )]);
    assert!(
        violations.is_empty(),
        "test paths must be exempt: {violations:?}"
    );
}

#[test]
fn used_allow_suppresses_and_is_not_reported() {
    let src = "pub fn f(v: &[u64]) -> u64 {\n    \
               // mm-lint: allow(panic): fixture-documented invariant\n    \
               *v.first().unwrap()\n}\n";
    let violations = finalize(vec![analyze_source(
        "crates/demo/src/a.rs",
        src,
        &Config::default(),
    )]);
    assert!(
        violations.is_empty(),
        "used allow must suppress cleanly: {violations:?}"
    );
}
