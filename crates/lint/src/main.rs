//! CLI for mm-lint.
//!
//! ```text
//! cargo run -p mm-lint -- [--root DIR] [--config FILE] [--deny-all]
//!                         [--report FILE] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error. Every
//! rule is deny-by-default; `--deny-all` exists so CI invocations state
//! the policy explicitly and stay stable if a warn level is ever added.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    report: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    // The binary lives at crates/lint, two levels below the workspace root.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut args = Args {
        root: default_root,
        config: None,
        report: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = take_value(&mut it, "--root")?.into(),
            "--config" => args.config = Some(take_value(&mut it, "--config")?.into()),
            "--report" => args.report = Some(take_value(&mut it, "--report")?.into()),
            "--deny-all" => {} // the default and only policy today
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "mm-lint: workspace contract checks (determinism, telemetry gating, \
                     atomics, panic hygiene)\n\n\
                     usage: mm-lint [--root DIR] [--config FILE] [--deny-all] \
                     [--report FILE] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn take_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = args
        .root
        .canonicalize()
        .map_err(|e| format!("cannot resolve root {}: {e}", args.root.display()))?;
    let config = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            mm_lint::Config::parse(&text)?
        }
        None => mm_lint::load_config(&root)?,
    };
    let violations = mm_lint::lint_workspace(&root, &config)?;
    let report = mm_lint::render_report(&violations);
    if let Some(path) = &args.report {
        std::fs::write(path, &report)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if !args.quiet || !violations.is_empty() {
        print!("{report}");
    }
    Ok(violations.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("mm-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
