//! `lint.toml`: the checked-in seed configuration for mm-lint.
//!
//! The workspace is offline, so this is a hand-rolled parser for the tiny
//! TOML subset the config needs: `[section]` headers, `key = <integer>`,
//! and `key = [ "string", ... ]` arrays (single- or multi-line). `#`
//! comments are allowed anywhere.

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Whole files that are identity-bearing (reachable from
    /// `canonical_string()`, fingerprints, or seed derivation). Paths are
    /// workspace-relative with `/` separators. Each listed file must also
    /// carry a `// mm-lint: identity` header — the header is what readers
    /// see, the list is what keeps headers from silently disappearing.
    pub identity_files: Vec<String>,
    /// Path prefixes exempt from the panic-hygiene rule (developer tooling
    /// that is not part of the serving surface). Tests, benches, bins, and
    /// examples are always exempt.
    pub panic_exempt: Vec<String>,
    /// Minimum literal length for the duplicate-literal rule.
    pub dup_min_len: usize,
    /// Literals allowed to repeat across files (shared JSON keys etc.).
    pub dup_ignore: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            identity_files: Vec::new(),
            panic_exempt: Vec::new(),
            dup_min_len: 24,
            dup_ignore: Vec::new(),
        }
    }
}

impl Config {
    /// Parse a `lint.toml` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first line that is not part of the
    /// supported subset.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        let mut pending: Option<(String, Vec<String>)> = None; // open array
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some((key, mut items)) = pending.take() {
                let closed = line.ends_with(']');
                let body = line.trim_end_matches(']');
                parse_string_items(body, &mut items, idx)?;
                if closed {
                    config.assign_array(&section, &key, items, idx)?;
                } else {
                    pending = Some((key, items));
                }
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = line[1..line.len() - 1].trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint.toml line {}: expected `key = value`",
                    idx + 1
                ));
            };
            let (key, value) = (key.trim().to_string(), value.trim());
            if let Some(body) = value.strip_prefix('[') {
                let mut items = Vec::new();
                let closed = body.ends_with(']');
                parse_string_items(body.trim_end_matches(']'), &mut items, idx)?;
                if closed {
                    config.assign_array(&section, &key, items, idx)?;
                } else {
                    pending = Some((key, items));
                }
            } else if let Ok(n) = value.parse::<usize>() {
                config.assign_int(&section, &key, n, idx)?;
            } else {
                return Err(format!(
                    "lint.toml line {}: unsupported value `{value}` (integers and string arrays only)",
                    idx + 1
                ));
            }
        }
        if pending.is_some() {
            return Err("lint.toml: unterminated array".to_string());
        }
        Ok(config)
    }

    fn assign_array(
        &mut self,
        section: &str,
        key: &str,
        items: Vec<String>,
        idx: usize,
    ) -> Result<(), String> {
        match (section, key) {
            ("identity", "files") => self.identity_files = items,
            ("panic", "exempt") => self.panic_exempt = items,
            ("dup", "ignore") => self.dup_ignore = items,
            _ => {
                return Err(format!(
                    "lint.toml line {}: unknown key [{section}] {key}",
                    idx + 1
                ))
            }
        }
        Ok(())
    }

    fn assign_int(&mut self, section: &str, key: &str, n: usize, idx: usize) -> Result<(), String> {
        match (section, key) {
            ("dup", "min_len") => self.dup_min_len = n,
            _ => {
                return Err(format!(
                    "lint.toml line {}: unknown key [{section}] {key}",
                    idx + 1
                ))
            }
        }
        Ok(())
    }
}

/// Strip a `#` comment, respecting `"` quoting.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Append the `"a", "b"` items of an array body to `items`.
fn parse_string_items(body: &str, items: &mut Vec<String>, idx: usize) -> Result<(), String> {
    for piece in body.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let inner = piece
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| {
                format!(
                    "lint.toml line {}: array items must be double-quoted strings, got `{piece}`",
                    idx + 1
                )
            })?;
        items.push(inner.to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let config = Config::parse(
            r##"
# comment
[identity]
files = [
    "crates/a/src/x.rs",  # trailing comment
    "crates/b/src/y.rs",
]

[panic]
exempt = ["crates/bench/src"]

[dup]
min_len = 30
ignore = []
"##,
        )
        .unwrap();
        assert_eq!(config.identity_files.len(), 2);
        assert_eq!(config.identity_files[1], "crates/b/src/y.rs");
        assert_eq!(config.panic_exempt, vec!["crates/bench/src"]);
        assert_eq!(config.dup_min_len, 30);
        assert!(config.dup_ignore.is_empty());
    }

    #[test]
    fn empty_and_missing_keys_fall_back_to_defaults() {
        let config = Config::parse("").unwrap();
        assert!(config.identity_files.is_empty());
        assert_eq!(config.dup_min_len, Config::default().dup_min_len);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_errors() {
        assert!(Config::parse("[identity]\nfiles = [\"a\"]\nbogus = [\"b\"]").is_err());
        assert!(Config::parse("[dup]\nmin_len = \"ten\"").is_err());
        assert!(Config::parse("[identity]\nfiles = [unquoted]").is_err());
        assert!(Config::parse("[identity]\nfiles = [\n\"a\",").is_err());
        assert!(Config::parse("just words").is_err());
    }
}
