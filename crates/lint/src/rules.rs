//! The rule engine: a scope-tracking line analyzer over lexed source.
//!
//! Rules are deliberately *project-specific*: they encode the contracts the
//! workspace already lives by (see README "Static analysis") rather than
//! general Rust style:
//!
//! * **determinism** — no wall-clock, entropy, or unordered-container use
//!   inside identity-tagged regions (anything reachable from
//!   `canonical_string()`, fingerprints, or seed derivation).
//! * **telemetry-gate** — telemetry call sites must sit behind the
//!   one-relaxed-load level gate or use a self-gated primitive, preserving
//!   the zero-cost-when-off invariant.
//! * **atomics** — no `SeqCst` (the codebase standardizes on
//!   Relaxed/Acquire/Release with comments), no `static mut`, no channel
//!   `send` while a lock guard is live.
//! * **panic** — no `unwrap`/`expect`/`panic!` in library crates outside
//!   tests and benches (bins are exempt).
//! * **dup-literal** — long string literals repeated across files point at
//!   divergent copies of what should be one shared module.
//! * **hot-path** — no per-call heap allocation (`Vec::new`, `vec!`,
//!   `.to_vec(`, `.collect(`) inside `// mm-lint: hot-path`-tagged regions:
//!   the steady-state `propose → validate → evaluate` loop reuses scratch
//!   storage, and growth-only cold paths carry an explicit allow.
//!
//! Suppression is per-line: `// mm-lint: allow(<rule>): <why>` on the
//! flagged line or alone on the line above. Every allow must suppress
//! something — stale ones are themselves violations (**unused-allow**).

use crate::config::Config;
use crate::lexer::{self, SourceLine};

/// The rule classes mm-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// (D) wall-clock / entropy / unordered containers in identity paths.
    Determinism,
    /// (T) telemetry call sites outside the level gate.
    TelemetryGate,
    /// (A) `SeqCst`, `static mut`, lock-across-send.
    Atomics,
    /// (P) `unwrap` / `expect` / `panic!` in library code.
    PanicHygiene,
    /// An `allow` directive that suppressed nothing.
    UnusedAllow,
    /// A long literal duplicated across files.
    DupLiteral,
    /// A `lint.toml` identity file missing its header tag.
    IdentityTag,
    /// (H) heap allocation in a `hot-path`-tagged region.
    HotPath,
}

impl Rule {
    /// The canonical rule name used in `allow(...)` directives and output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::TelemetryGate => "telemetry-gate",
            Rule::Atomics => "atomics",
            Rule::PanicHygiene => "panic",
            Rule::UnusedAllow => "unused-allow",
            Rule::DupLiteral => "dup-literal",
            Rule::IdentityTag => "identity-tag",
            Rule::HotPath => "hot-path",
        }
    }
}

/// One finding: file, 1-based line, rule, what, and how to fix it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found.
    pub message: String,
    /// How to fix (or legitimately suppress) it.
    pub hint: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    fix: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message,
            self.hint
        )
    }
}

/// How a file participates in linting, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies.
    Lib,
    /// Binary targets: atomics/determinism/dup-literal only (panics and
    /// ungated telemetry are acceptable in CLI tooling).
    Bin,
    /// Tests, benches, examples: skipped.
    Exempt,
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    let rel = rel.replace('\\', "/");
    if rel.split('/').any(|part| {
        part == "tests" || part == "benches" || part == "examples" || part == "fixtures"
    }) {
        FileKind::Exempt
    } else if rel.contains("/src/bin/") || rel.ends_with("/main.rs") || rel.ends_with("build.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// A parsed `// mm-lint: allow(rule)` directive.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    /// 0-based line of the directive itself.
    line: usize,
    /// 0-based line the directive suppresses (itself, or the next code
    /// line when the directive stands alone).
    target: usize,
    used: bool,
}

/// Everything the analyzer learned about one file. Feed a batch of these to
/// [`finalize`] to resolve cross-file rules and unused allows.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub rel: String,
    violations: Vec<Violation>,
    /// `(0-based line, literal)` candidates for the duplicate-literal rule.
    literal_sites: Vec<(usize, String)>,
    allows: Vec<Allow>,
}

/// One lexical scope (a `{ ... }` block) and the contracts active in it.
#[derive(Debug, Clone, Copy, Default)]
struct Scope {
    /// Inside `#[cfg(test)]` / `#[test]` / `#[bench]` code.
    test: bool,
    /// Behind a telemetry level gate (`if mm_telemetry::enabled() { ... }`).
    gated: bool,
    /// Inside an identity-tagged file, function, or `canonical_string` impl.
    identity: bool,
    /// Inside a `hot-path`-tagged region (steady state must not allocate).
    hot_path: bool,
    /// A lock guard bound in this scope is still live.
    lock_guard: bool,
}

const DIRECTIVE: &str = "mm-lint:";

/// Analyze one file. `rel` must be workspace-relative with `/` separators.
pub fn analyze_source(rel: &str, text: &str, config: &Config) -> FileAnalysis {
    let kind = classify(rel);
    let lines = lexer::strip(text);
    let mut analysis = FileAnalysis {
        rel: rel.to_string(),
        violations: Vec::new(),
        literal_sites: Vec::new(),
        allows: Vec::new(),
    };
    if kind == FileKind::Exempt {
        return analysis;
    }

    let first_code = lines
        .iter()
        .position(|l| !l.code.trim().is_empty())
        .unwrap_or(lines.len());
    let mut file_identity = false;
    let mut fn_identity_tags: Vec<usize> = Vec::new();
    let mut file_hot_path = false;
    let mut fn_hot_path_tags: Vec<usize> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        parse_directives(
            &mut analysis,
            &lines,
            idx,
            &line.comment,
            first_code,
            &mut file_identity,
            &mut fn_identity_tags,
            &mut file_hot_path,
            &mut fn_hot_path_tags,
        );
    }
    let listed_identity = config.identity_files.iter().any(|f| f == rel);
    if listed_identity && !file_identity {
        analysis.violations.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: Rule::IdentityTag,
            message: "listed under [identity] in lint.toml but missing the \
                      `// mm-lint: identity` header"
                .to_string(),
            hint: "add the header comment above the first item so readers see the contract \
                   at the file top"
                .to_string(),
        });
    }
    file_identity |= listed_identity;

    let panic_exempt = config.panic_exempt.iter().any(|p| rel.starts_with(p));
    let telemetry_crate = rel.starts_with("crates/telemetry/");

    let mut stack = vec![Scope {
        identity: file_identity,
        hot_path: file_hot_path,
        ..Scope::default()
    }];
    let mut header = String::new();
    let mut pending_identity = false;
    let mut pending_hot_path = false;

    for (idx, line) in lines.iter().enumerate() {
        if fn_identity_tags.contains(&idx) {
            pending_identity = true;
        }
        if fn_hot_path_tags.contains(&idx) {
            pending_hot_path = true;
        }
        let ctx = Scope {
            test: stack.iter().any(|s| s.test),
            gated: stack.iter().any(|s| s.gated),
            identity: stack.iter().any(|s| s.identity) || pending_identity,
            hot_path: stack.iter().any(|s| s.hot_path) || pending_hot_path,
            lock_guard: stack.iter().any(|s| s.lock_guard),
        };
        // The statement as assembled so far (prior lines + this one): the
        // telemetry gate may sit earlier in a multi-line statement.
        let stmt_so_far = format!("{header}{}", line.code);

        check_line(
            &mut analysis,
            rel,
            idx,
            line,
            ctx,
            kind,
            panic_exempt,
            telemetry_crate,
            &stmt_so_far,
            config,
        );

        for c in line.code.chars() {
            match c {
                '{' => {
                    let parent = *stack.last().unwrap_or(&Scope::default());
                    stack.push(Scope {
                        test: parent.test || header_is_test(&header),
                        gated: parent.gated || has_gate_token(&header),
                        identity: parent.identity
                            || std::mem::take(&mut pending_identity)
                            || header.contains("fn canonical_string"),
                        hot_path: parent.hot_path || std::mem::take(&mut pending_hot_path),
                        lock_guard: scope_header_binds_lock_guard(&header),
                    });
                    header.clear();
                }
                '}' => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                    header.clear();
                }
                ';' => {
                    if let Some(scope) = stack.last_mut() {
                        if statement_binds_lock_guard(&header) {
                            scope.lock_guard = true;
                        } else if header.trim_start().starts_with("drop(") {
                            scope.lock_guard = false;
                        }
                    }
                    header.clear();
                }
                _ => header.push(c),
            }
        }
    }

    analysis
}

/// Parse the `mm-lint:` directives in one line's comment text.
#[allow(clippy::too_many_arguments)]
fn parse_directives(
    analysis: &mut FileAnalysis,
    lines: &[SourceLine],
    idx: usize,
    comment: &str,
    first_code: usize,
    file_identity: &mut bool,
    fn_identity_tags: &mut Vec<usize>,
    file_hot_path: &mut bool,
    fn_hot_path_tags: &mut Vec<usize>,
) {
    // A directive must *lead* the comment (`// mm-lint: ...`); prose that
    // merely mentions `mm-lint:` mid-sentence is not one. Doc-comment
    // sigils (`///`, `//!`) reach us as leading `/` / `!` text.
    let lead = comment.trim_start_matches(['/', '!', ' ', '\t']);
    if !lead.starts_with(DIRECTIVE) {
        return;
    }
    let body = lead[DIRECTIVE.len()..].trim();
    if body == "identity" || body.starts_with("identity ") || body.starts_with("identity:") {
        if idx < first_code {
            *file_identity = true;
        } else {
            fn_identity_tags.push(idx);
        }
        return;
    }
    if body == "hot-path" || body.starts_with("hot-path ") || body.starts_with("hot-path:") {
        if idx < first_code {
            *file_hot_path = true;
        } else {
            fn_hot_path_tags.push(idx);
        }
        return;
    }
    if let Some(rest) = body.strip_prefix("allow(") {
        let Some(end) = rest.find(')') else {
            bad_directive(analysis, idx, "unterminated allow(...)");
            return;
        };
        let rule = rest[..end].trim().to_string();
        if !KNOWN_RULES.contains(&rule.as_str()) {
            bad_directive(
                analysis,
                idx,
                &format!("unknown rule `{rule}` in allow(...)"),
            );
            return;
        }
        // The directive covers its own line, or the next code line when it
        // stands alone on a comment line.
        let target = if lines[idx].code.trim().is_empty() {
            (idx + 1..lines.len())
                .find(|&j| !lines[j].code.trim().is_empty())
                .unwrap_or(idx)
        } else {
            idx
        };
        analysis.allows.push(Allow {
            rule,
            line: idx,
            target,
            used: false,
        });
        return;
    }
    bad_directive(
        analysis,
        idx,
        &format!("unrecognized directive `{DIRECTIVE} {body}`"),
    );
}

const KNOWN_RULES: [&str; 8] = [
    "determinism",
    "telemetry-gate",
    "atomics",
    "panic",
    "unused-allow",
    "dup-literal",
    "identity-tag",
    "hot-path",
];

fn bad_directive(analysis: &mut FileAnalysis, idx: usize, what: &str) {
    analysis.violations.push(Violation {
        file: analysis.rel.clone(),
        line: idx + 1,
        rule: Rule::UnusedAllow,
        message: what.to_string(),
        hint: format!(
            "directives are `// mm-lint: identity`, `// mm-lint: hot-path`, or \
             `// mm-lint: allow(<rule>): <why>` with <rule> one of {KNOWN_RULES:?}"
        ),
    });
}

/// Whether a scope header marks test-only code.
fn header_is_test(header: &str) -> bool {
    header.contains("#[cfg(test)") || header.contains("#[test]") || header.contains("#[bench]")
}

/// Whether text contains a telemetry level-gate token. `enabled()` matches
/// every gate helper (`enabled` / `timing_enabled` / `journal_enabled` /
/// `span_enabled`); `level()` and `Level::` cover explicit comparisons.
fn has_gate_token(text: &str) -> bool {
    text.contains("enabled()") || text.contains("level()") || text.contains("Level::")
}

/// Whether a `;`-terminated statement binds a live lock guard
/// (`let g = m.lock().unwrap();` and friends).
fn statement_binds_lock_guard(stmt: &str) -> bool {
    stmt.trim_start().starts_with("let ") && lock_chain_is_statement_value(stmt)
}

/// Whether a `{`-opening header keeps a lock guard alive for its block:
/// `match m.lock() { ... }` scrutinee temporaries and `if let`/`while let`
/// bindings live for the whole block.
fn scope_header_binds_lock_guard(header: &str) -> bool {
    let t = header.trim_start();
    (t.contains("match ") || t.starts_with("if let ") || t.starts_with("while let "))
        && lock_chain_is_statement_value(header)
}

/// Whether the text ends in a `.lock()` chain whose value *is* the guard
/// (only guard-preserving adapters after `.lock()`).
fn lock_chain_is_statement_value(text: &str) -> bool {
    let Some(pos) = text.rfind(".lock()") else {
        return false;
    };
    let mut tail = text[pos + ".lock()".len()..].trim();
    loop {
        let before = tail;
        for adapter in [
            ".unwrap()",
            ".expect(\"\")",
            ".unwrap_or_else(|e| e.into_inner())",
            "?",
        ] {
            if let Some(rest) = tail.strip_prefix(adapter) {
                tail = rest.trim_start();
            }
        }
        if tail.is_empty() {
            return true;
        }
        if tail == before {
            return false;
        }
    }
}

/// Find `token` in `code` with identifier-boundary checks on both sides.
fn has_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + token.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + token.len().max(1);
    }
    false
}

/// The determinism rule's banned tokens and their fix hints.
const DETERMINISM_TOKENS: [(&str, &str); 7] = [
    (
        "Instant::now",
        "wall-clock may only feed report payload outside canonical_string(); move the timing \
         out of the identity path",
    ),
    (
        "SystemTime",
        "wall-clock may only feed report payload outside canonical_string(); move the timing \
         out of the identity path",
    ),
    (
        "thread_rng",
        "identity paths draw from seed-derived streams (derive_stream_seed), never process \
         entropy",
    ),
    (
        "from_entropy",
        "identity paths draw from seed-derived streams (derive_stream_seed), never process \
         entropy",
    ),
    (
        "random()",
        "identity paths draw from seed-derived streams (derive_stream_seed), never process \
         entropy",
    ),
    (
        "HashMap",
        "iteration order is unordered and can leak into identity output; use BTreeMap (or \
         justify a lookup-only map with an allow)",
    ),
    (
        "HashSet",
        "iteration order is unordered and can leak into identity output; use BTreeSet (or \
         justify a lookup-only set with an allow)",
    ),
];

/// Telemetry operations that are never self-gated and must sit in a gated
/// region regardless of receiver.
const TELEMETRY_RAW_OPS: [&str; 4] = [
    ".incr(",
    ".record_unchecked(",
    "journal().push(",
    "journal.push(",
];

/// Operations that break zero-cost-when-off when they appear ungated on a
/// line that touches telemetry (eager formatting, clock reads, snapshots).
const TELEMETRY_TOUCH_OPS: [&str; 4] = ["format!", "Instant::now", ".elapsed(", ".snapshot()"];

/// Tokens that heap-allocate per call. Inside a `hot-path`-tagged region
/// (the steady-state `propose → validate → evaluate` loop) storage must be
/// reused — growth-only cold paths need an explicit allow documenting why
/// the steady state never hits them.
const HOT_PATH_TOKENS: [&str; 4] = ["Vec::new", "vec!", ".to_vec(", ".collect("];

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

#[allow(clippy::too_many_arguments)]
fn check_line(
    analysis: &mut FileAnalysis,
    rel: &str,
    idx: usize,
    line: &SourceLine,
    ctx: Scope,
    kind: FileKind,
    panic_exempt: bool,
    telemetry_crate: bool,
    stmt_so_far: &str,
    config: &Config,
) {
    let code = line.code.as_str();
    if code.trim().is_empty() {
        return;
    }

    // (D) determinism — identity regions only, in any non-test code.
    if ctx.identity && !ctx.test {
        for (token, hint) in DETERMINISM_TOKENS {
            if has_token(code, token) {
                flag(
                    analysis,
                    rel,
                    idx,
                    Rule::Determinism,
                    format!("`{token}` in an identity-tagged region"),
                    hint.to_string(),
                );
            }
        }
    }

    // (H) hot-path — allocation tokens in tagged regions, in any non-test
    // code.
    if ctx.hot_path && !ctx.test {
        for token in HOT_PATH_TOKENS {
            let found = if token.chars().next().is_some_and(|c| c == '.') {
                code.contains(token)
            } else {
                has_token(code, token)
            };
            if found {
                let shown = if token.ends_with('(') {
                    format!("{token}..)")
                } else {
                    token.to_string()
                };
                flag(
                    analysis,
                    rel,
                    idx,
                    Rule::HotPath,
                    format!("`{shown}` allocates in a hot-path-tagged region"),
                    "reuse caller-provided scratch storage (EvalScratch / ProposalBuf slots) \
                     instead of allocating per call, or document a cold growth path via \
                     `// mm-lint: allow(hot-path): <why>`"
                        .to_string(),
                );
            }
        }
    }

    if !ctx.test {
        // (A) atomics hygiene.
        if has_token(code, "SeqCst") {
            flag(
                analysis,
                rel,
                idx,
                Rule::Atomics,
                "`SeqCst` ordering in non-test code".to_string(),
                "the codebase standardizes on Relaxed (independent counters) or \
                 Acquire/Release (handoffs); pick the weakest ordering that works and \
                 comment it"
                    .to_string(),
            );
        }
        if code.contains("static mut") {
            flag(
                analysis,
                rel,
                idx,
                Rule::Atomics,
                "`static mut` item".to_string(),
                "use an atomic, OnceLock, or Mutex".to_string(),
            );
        }
        if code.contains(".send(") && ctx.lock_guard {
            flag(
                analysis,
                rel,
                idx,
                Rule::Atomics,
                "channel `send` while a lock guard bound in an enclosing scope is live".to_string(),
                "drop the guard before sending so a blocked channel cannot hold the lock \
                 against other threads"
                    .to_string(),
            );
        }
    }

    // (P) panic hygiene — library code only.
    if kind == FileKind::Lib && !ctx.test && !panic_exempt {
        for token in PANIC_TOKENS {
            if code.contains(token) {
                let shown = if token.ends_with('(') {
                    format!("{token}..)")
                } else {
                    token.to_string()
                };
                flag(
                    analysis,
                    rel,
                    idx,
                    Rule::PanicHygiene,
                    format!("`{shown}` in library code"),
                    "return a typed error, use a non-panicking combinator, or document the \
                     invariant via `// mm-lint: allow(panic): <why>`"
                        .to_string(),
                );
            }
        }
    }

    // (T) telemetry gating — library code outside the telemetry crate.
    if kind == FileKind::Lib && !ctx.test && !telemetry_crate {
        let gated = ctx.gated || has_gate_token(stmt_so_far);
        if !gated {
            for op in TELEMETRY_RAW_OPS {
                if code.contains(op) {
                    flag(
                        analysis,
                        rel,
                        idx,
                        Rule::TelemetryGate,
                        format!("`{op}..)` telemetry mutation outside a level gate"),
                        "wrap in `if mm_telemetry::journal_enabled() { ... }` (one relaxed \
                         load) or use a self-gated primitive (`Counter::bump`, `event`, \
                         `Track::span`)"
                            .to_string(),
                    );
                }
            }
            let touches = code.contains("mm_telemetry") || code.contains("tele_");
            if touches {
                for op in TELEMETRY_TOUCH_OPS {
                    // A `format!` behind a closure bar (`event("x", || format!(..))`)
                    // is lazy: the self-gated callee decides whether it runs.
                    let lazy = op == "format!"
                        && code.find(op).is_some_and(|pos| code[..pos].contains("||"));
                    if code.contains(op) && !lazy {
                        flag(
                            analysis,
                            rel,
                            idx,
                            Rule::TelemetryGate,
                            format!(
                                "eager `{op}..)` on a telemetry call site outside a level gate"
                            ),
                            "formatting, clock reads, and snapshots must cost nothing when \
                             telemetry is off: gate with `enabled()`/`timing_enabled()`/\
                             `span_enabled()` or defer via a lazy closure"
                                .to_string(),
                        );
                    }
                }
            }
        }
    }

    // (L) duplicate-literal candidates (resolved across files in finalize).
    if !ctx.test {
        for lit in &line.literals {
            if lit.len() >= config.dup_min_len && !config.dup_ignore.iter().any(|i| i == lit) {
                analysis.literal_sites.push((idx, lit.clone()));
            }
        }
    }
}

/// Record a violation unless an allow directive covers it.
fn flag(
    analysis: &mut FileAnalysis,
    rel: &str,
    idx: usize,
    rule: Rule,
    message: String,
    hint: String,
) {
    if consume_allow(&mut analysis.allows, rule, idx) {
        return;
    }
    analysis.violations.push(Violation {
        file: rel.to_string(),
        line: idx + 1,
        rule,
        message,
        hint,
    });
}

fn consume_allow(allows: &mut [Allow], rule: Rule, idx: usize) -> bool {
    for allow in allows.iter_mut() {
        if allow.target == idx && allow.rule == rule.name() {
            allow.used = true;
            return true;
        }
    }
    false
}

/// Resolve the cross-file duplicate-literal rule and report unused allows.
/// Returns every violation sorted by `(file, line, rule)`.
pub fn finalize(mut analyses: Vec<FileAnalysis>) -> Vec<Violation> {
    use std::collections::BTreeMap;

    // literal → [(analysis index, line)]
    let mut sites: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    for (a_idx, analysis) in analyses.iter().enumerate() {
        for (line, lit) in &analysis.literal_sites {
            sites.entry(lit.clone()).or_default().push((a_idx, *line));
        }
    }
    let mut dup_violations: Vec<(usize, usize, String)> = Vec::new();
    for (lit, occurrences) in sites {
        let mut files: Vec<&str> = occurrences
            .iter()
            .map(|&(a, _)| analyses[a].rel.as_str())
            .collect();
        files.sort_unstable();
        files.dedup();
        if files.len() < 2 {
            continue;
        }
        for (a_idx, line) in occurrences {
            dup_violations.push((a_idx, line, preview(&lit)));
        }
    }
    for (a_idx, line, shown) in dup_violations {
        let rel = analyses[a_idx].rel.clone();
        if consume_allow(&mut analyses[a_idx].allows, Rule::DupLiteral, line) {
            continue;
        }
        analyses[a_idx].violations.push(Violation {
            file: rel,
            line: line + 1,
            rule: Rule::DupLiteral,
            message: format!("string literal \"{shown}\" is duplicated across files"),
            hint: "hoist the shared literal (or the logic around it) into one module so the \
                   copies cannot diverge"
                .to_string(),
        });
    }

    let mut out = Vec::new();
    for analysis in &mut analyses {
        for allow in &analysis.allows {
            if !allow.used {
                out.push(Violation {
                    file: analysis.rel.clone(),
                    line: allow.line + 1,
                    rule: Rule::UnusedAllow,
                    message: format!("allow({}) suppressed nothing", allow.rule),
                    hint: "remove the stale directive — unused allows rot the contract".to_string(),
                });
            }
        }
        out.append(&mut analysis.violations);
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });
    out
}

fn preview(lit: &str) -> String {
    let flat: String = lit
        .chars()
        .map(|c| if c == '\n' { ' ' } else { c })
        .collect();
    if flat.len() > 40 {
        format!(
            "{}…",
            &flat[..flat
                .char_indices()
                .take(40)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    } else {
        flat
    }
}
