//! A minimal Rust source lexer: split every line into *code text*, *comment
//! text*, and the string literals that start on it.
//!
//! The rule engine matches patterns against the code text only, so a doc
//! comment mentioning `Instant::now()` or an error message containing
//! `.unwrap()` can never trip a rule. The comment text carries the
//! `mm-lint:` directives; the literals feed the duplicate-literal rule.
//!
//! The lexer understands exactly the token classes that matter for that
//! split: line comments, nested block comments, string / raw-string / byte
//! / char literals, and lifetimes (so `'a` is not mistaken for an
//! unterminated char literal). Everything else passes through verbatim.

/// One source line after lexing.
#[derive(Debug, Default, Clone)]
pub struct SourceLine {
    /// The line's code with comments removed and literal contents blanked
    /// (a string literal is kept as `""` so call shapes like `.expect(` are
    /// still visible).
    pub code: String,
    /// Concatenated comment text on the line (line and block comments).
    pub comment: String,
    /// Contents of string literals that *start* on this line.
    pub literals: Vec<String>,
}

enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    /// `None` = escaped string, `Some(n)` = raw string closed by `"` + n
    /// `#`s.
    Str(Option<usize>),
}

/// Lex `text` into per-line code/comment/literal views.
pub fn strip(text: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = text.chars().collect();
    let mut out: Vec<SourceLine> = Vec::new();
    let mut cur = SourceLine::default();
    let mut state = State::Code;
    let mut lit = String::new();
    let mut lit_line = 0usize; // 0-based index of the line a literal starts on
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            if let State::Str(_) = state {
                lit.push('\n');
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    state = State::Str(None);
                    cur.code.push('"');
                    lit.clear();
                    lit_line = out.len();
                    i += 1;
                } else if c == 'b' && next == Some('"') && !prev_is_ident(&chars, i) {
                    state = State::Str(None);
                    cur.code.push('"');
                    lit.clear();
                    lit_line = out.len();
                    i += 2;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // r"..." / r#"..."# / br"..." raw strings; plain
                    // identifiers starting with r/b fall through.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let hash_start = j;
                    while chars.get(j) == Some(&'#') {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (c == 'r' || j > hash_start || c == 'b') {
                        state = State::Str(Some(j - hash_start));
                        cur.code.push('"');
                        lit.clear();
                        lit_line = out.len();
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' || (c == 'b' && next == Some('\'') && !prev_is_ident(&chars, i))
                {
                    let q = if c == 'b' { i + 1 } else { i };
                    if let Some(end) = char_literal_end(&chars, q) {
                        cur.code.push_str("''");
                        i = end + 1;
                    } else {
                        // A lifetime (or a stray quote): keep it as code.
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str(None) => {
                if c == '\\' {
                    lit.push(c);
                    if let Some(&n) = chars.get(i + 1) {
                        lit.push(n);
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    finish_literal(&mut out, &mut cur, lit_line, std::mem::take(&mut lit));
                    state = State::Code;
                    i += 1;
                } else {
                    lit.push(c);
                    i += 1;
                }
            }
            State::Str(Some(hashes)) => {
                if c == '"' && (i + 1..=i + hashes).all(|k| chars.get(k) == Some(&'#')) {
                    cur.code.push('"');
                    finish_literal(&mut out, &mut cur, lit_line, std::mem::take(&mut lit));
                    state = State::Code;
                    i += hashes + 1;
                } else {
                    lit.push(c);
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || !cur.literals.is_empty() {
        out.push(cur);
    }
    out
}

/// Whether the char before `i` continues an identifier (so `br` in `abr"` is
/// not a raw-string prefix).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If a char literal starts at the `'` at `q`, the index of its closing
/// quote; `None` for lifetimes.
fn char_literal_end(chars: &[char], q: usize) -> Option<usize> {
    if chars.get(q) != Some(&'\'') {
        return None;
    }
    match chars.get(q + 1) {
        Some('\\') => {
            // Escaped char: scan a bounded window for the closing quote
            // (covers \n, \', \u{...}).
            (q + 3..(q + 14).min(chars.len())).find(|&j| chars[j] == '\'')
        }
        Some(_) if chars.get(q + 2) == Some(&'\'') => Some(q + 2),
        _ => None, // a lifetime like 'a or 'static
    }
}

/// Attach a completed literal to the line it started on (which may already
/// be flushed if the literal spanned lines).
fn finish_literal(out: &mut [SourceLine], cur: &mut SourceLine, lit_line: usize, lit: String) {
    if lit_line < out.len() {
        out[lit_line].literals.push(lit);
    } else {
        cur.literals.push(lit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        strip(text).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn comments_are_removed_from_code() {
        let lines = strip("let x = 1; // Instant::now() in a comment\n/* SeqCst */ let y = 2;\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert!(lines[0].comment.contains("Instant::now()"));
        assert_eq!(lines[1].code, " let y = 2;");
        assert!(lines[1].comment.contains("SeqCst"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lines = codes("a /* one /* two */ still */ b\n");
        assert_eq!(lines[0], "a  b");
    }

    #[test]
    fn string_contents_are_blanked_but_shape_remains() {
        let lines = strip("x.expect(\"thread_rng() is fine here\");\n");
        assert_eq!(lines[0].code, "x.expect(\"\");");
        assert_eq!(lines[0].literals, vec!["thread_rng() is fine here"]);
    }

    #[test]
    fn raw_and_byte_strings_are_literals() {
        let lines = strip("let a = r#\"has \"quotes\" and // no comment\"#; let b = b\"bytes\";\n");
        assert_eq!(lines[0].code, "let a = \"\"; let b = \"\";");
        assert_eq!(lines[0].literals.len(), 2);
        assert!(lines[0].literals[0].contains("no comment"));
    }

    #[test]
    fn multiline_strings_attach_to_their_first_line() {
        let lines = strip("let s = \"first\nsecond\";\nlet t = 1;\n");
        assert_eq!(lines[0].literals, vec!["first\nsecond"]);
        assert_eq!(lines[2].code, "let t = 1;");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = codes("fn f<'a>(x: &'a str, c: char) -> bool { c == 'x' || c == '\\n' }\n");
        assert!(lines[0].contains("<'a>"));
        assert!(lines[0].contains("''"));
        assert!(!lines[0].contains("'x'"));
    }

    #[test]
    fn line_comment_ends_at_newline() {
        let lines = codes("// SeqCst\nlet x = 1;\n");
        assert_eq!(lines[0], "");
        assert_eq!(lines[1], "let x = 1;");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lines = strip("let s = \"a \\\" b\"; let x = 1;\n");
        assert_eq!(lines[0].code, "let s = \"\"; let x = 1;");
        assert_eq!(lines[0].literals, vec!["a \\\" b"]);
    }
}
