//! Project-specific static analysis (`mm-lint`) for the Mind Mappings
//! workspace.
//!
//! The workspace carries three load-bearing contracts that `rustc` and
//! clippy cannot see:
//!
//! 1. **Determinism** — `canonical_string()` output is byte-exact across
//!    worker counts and runs, so identity-bearing code must never touch
//!    wall-clocks, process entropy, or unordered containers.
//! 2. **Telemetry gating** — telemetry is zero-cost when off: every call
//!    site pays exactly one relaxed atomic load before doing anything else.
//! 3. **Atomics / panic hygiene** — orderings are chosen (and commented)
//!    per handoff, never defaulted to `SeqCst`; library crates return
//!    errors instead of panicking.
//!
//! mm-lint walks every workspace source file with a small hand-rolled
//! lexer (no crates.io dependencies — the build is offline) and enforces
//! those contracts as named, allowlistable rules. It runs as a dev binary
//! (`cargo run -p mm-lint`) and inside the tier-1 test suite
//! (`crates/lint/tests/lint.rs`), so a violation fails `cargo test` the
//! same way a type error fails the build.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use rules::{analyze_source, classify, finalize, FileAnalysis, FileKind, Rule, Violation};

use std::path::{Path, PathBuf};

/// Directory names the walker never descends into.
const SKIP_DIRS: [&str; 6] = ["target", "vendor", ".git", ".github", "fixtures", "corpus"];

/// Collect every workspace `.rs` file under `root`, sorted by relative
/// path so output (and rule evaluation order) is deterministic.
///
/// # Errors
///
/// Returns a message naming the directory that could not be read.
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Turn an absolute source path into the workspace-relative form rules and
/// `lint.toml` use (`/`-separated).
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint every source file under `root` with `config`. Returns all
/// violations sorted by `(file, line, rule)`; empty means the tree is
/// clean.
///
/// # Errors
///
/// Returns a message when the tree cannot be walked or read, or when
/// `lint.toml` names an identity file that does not exist (a deleted or
/// renamed identity file must not silently drop out of the contract).
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Vec<Violation>, String> {
    for listed in &config.identity_files {
        if !root.join(listed).is_file() {
            return Err(format!(
                "lint.toml [identity] lists `{listed}` but no such file exists — \
                 update the list when identity files move"
            ));
        }
    }
    let mut analyses = Vec::new();
    for path in collect_sources(root)? {
        let rel = relative(root, &path);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        analyses.push(analyze_source(&rel, &text, config));
    }
    Ok(finalize(analyses))
}

/// Load `lint.toml` from `root` (defaults when absent).
///
/// # Errors
///
/// Returns a message when the file exists but cannot be read or parsed.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Config::parse(&text)
}

/// Render violations as the human/CI report format.
pub fn render_report(violations: &[Violation]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(out, "{v}");
    }
    if violations.is_empty() {
        out.push_str("mm-lint: clean\n");
    } else {
        let mut by_rule: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for v in violations {
            *by_rule.entry(v.rule.name()).or_insert(0) += 1;
        }
        let breakdown: Vec<String> = by_rule
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        let _ = writeln!(
            out,
            "mm-lint: {} violation(s) ({})",
            violations.len(),
            breakdown.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/w");
        assert_eq!(
            relative(root, Path::new("/w/crates/core/src/lib.rs")),
            "crates/core/src/lib.rs"
        );
    }

    #[test]
    fn render_report_summarizes_by_rule() {
        let violations = vec![
            Violation {
                file: "a.rs".into(),
                line: 3,
                rule: Rule::Atomics,
                message: "`SeqCst` ordering in non-test code".into(),
                hint: "weaken it".into(),
            },
            Violation {
                file: "a.rs".into(),
                line: 9,
                rule: Rule::Atomics,
                message: "`static mut` item".into(),
                hint: "use an atomic".into(),
            },
        ];
        let report = render_report(&violations);
        assert!(report.contains("a.rs:3: [atomics]"));
        assert!(report.contains("2 violation(s) (atomics: 2)"));
        assert!(render_report(&[]).contains("clean"));
    }
}
