//! Fixed-bucket log2 histograms: cheap enough for queue latencies and batch
//! sizes on the hot path, deterministic to snapshot, and mergeable.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets. Bucket 0 holds value 0; bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`; the last bucket absorbs the tail.
pub const BUCKETS: usize = 64;

/// The bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    // 0 → 0, 1 → 1, 2..3 → 2, 4..7 → 3, …: one leading_zeros and a cap.
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// A concurrent fixed-bucket log-scale histogram (relaxed atomics only).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation when telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.record_unchecked(v);
        }
    }

    /// Record one observation regardless of the global level (tests and
    /// merge paths; production sites go through [`Histogram::record`]).
    pub fn record_unchecked(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold another histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable copy of the current state (nonzero buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zero all state in place (handles stay valid).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={})", s.count, s.sum)
    }
}

/// Immutable, comparable copy of a [`Histogram`]: total count and sum plus
/// the nonzero `(bucket_index, count)` pairs in ascending bucket order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Nonzero buckets as `(index, count)`, ascending by index. Bucket 0
    /// holds value 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: u8) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS as u8 {
            // The lower bound of each bucket lands in that bucket.
            assert_eq!(bucket_of(HistogramSnapshot::bucket_lo(i)), i as usize);
        }
    }

    #[test]
    fn snapshot_reports_nonzero_buckets_sorted() {
        let h = Histogram::new();
        for v in [0, 1, 1, 6, 6, 6, 1000] {
            h.record_unchecked(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1 + 1 + 6 * 3 + 1000);
        assert_eq!(
            s.buckets,
            vec![(0, 1), (1, 2), (3, 3), (10, 1)],
            "buckets: value0→0, 1→1, 6→[4,8)=3, 1000→[512,1024)=10"
        );
        assert!(s.mean() > 145.0 && s.mean() < 146.0);
    }

    #[test]
    fn merge_adds_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1, 2, 3] {
            a.record_unchecked(v);
        }
        for v in [3, 100] {
            b.record_unchecked(v);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 109);
        let direct = Histogram::new();
        for v in [1, 2, 3, 3, 100] {
            direct.record_unchecked(v);
        }
        assert_eq!(s, direct.snapshot(), "merge equals recording everything");
    }

    #[test]
    fn reset_zeroes_in_place() {
        let h = Histogram::new();
        h.record_unchecked(42);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record_unchecked(1);
        assert_eq!(h.count(), 1);
    }
}
