//! Fixed-bucket log2 histograms: cheap enough for queue latencies and batch
//! sizes on the hot path, deterministic to snapshot, and mergeable.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets. Bucket 0 holds value 0; bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`; the last bucket absorbs the tail.
pub const BUCKETS: usize = 64;

/// The bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    // 0 → 0, 1 → 1, 2..3 → 2, 4..7 → 3, …: one leading_zeros and a cap.
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// A concurrent fixed-bucket log-scale histogram (relaxed atomics only).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation when telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.record_unchecked(v);
        }
    }

    /// Record one observation regardless of the global level (tests and
    /// merge paths; production sites go through [`Histogram::record`]).
    pub fn record_unchecked(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold another histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable copy of the current state (nonzero buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zero all state in place (handles stay valid).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={})", s.count, s.sum)
    }
}

/// Immutable, comparable copy of a [`Histogram`]: total count and sum plus
/// the nonzero `(bucket_index, count)` pairs in ascending bucket order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Nonzero buckets as `(index, count)`, ascending by index. Bucket 0
    /// holds value 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: u8) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// The exclusive upper bound of bucket `i`. Bucket 0 holds only the
    /// value 0; the top bucket absorbs the tail, so its bound saturates to
    /// `u64::MAX`.
    pub fn bucket_hi(i: u8) -> u64 {
        match i as usize {
            0 => 1,
            i if i >= BUCKETS - 1 => u64::MAX,
            i => 1u64 << i,
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), linearly interpolated
    /// within the containing log2 bucket — the resolution the histogram
    /// actually has. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * self.count as f64;
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            if (seen + n) as f64 >= rank {
                if i == 0 {
                    return 0.0; // bucket 0 holds exactly the value 0
                }
                let lo = Self::bucket_lo(i) as f64;
                let hi = Self::bucket_hi(i) as f64;
                let frac = ((rank - seen as f64) / n as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
            seen += n;
        }
        // rank == count landed past the loop only through rounding; the
        // answer is the top of the last occupied bucket.
        self.buckets
            .last()
            .map_or(0.0, |&(i, _)| Self::bucket_hi(i) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS as u8 {
            // The lower bound of each bucket lands in that bucket.
            assert_eq!(bucket_of(HistogramSnapshot::bucket_lo(i)), i as usize);
        }
    }

    #[test]
    fn snapshot_reports_nonzero_buckets_sorted() {
        let h = Histogram::new();
        for v in [0, 1, 1, 6, 6, 6, 1000] {
            h.record_unchecked(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1 + 1 + 6 * 3 + 1000);
        assert_eq!(
            s.buckets,
            vec![(0, 1), (1, 2), (3, 3), (10, 1)],
            "buckets: value0→0, 1→1, 6→[4,8)=3, 1000→[512,1024)=10"
        );
        assert!(s.mean() > 145.0 && s.mean() < 146.0);
    }

    #[test]
    fn merge_adds_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1, 2, 3] {
            a.record_unchecked(v);
        }
        for v in [3, 100] {
            b.record_unchecked(v);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 109);
        let direct = Histogram::new();
        for v in [1, 2, 3, 3, 100] {
            direct.record_unchecked(v);
        }
        assert_eq!(s, direct.snapshot(), "merge equals recording everything");
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        assert_eq!(HistogramSnapshot::default().percentile(50.0), 0.0);
        assert_eq!(HistogramSnapshot::default().percentile(0.0), 0.0);
        assert_eq!(HistogramSnapshot::default().percentile(100.0), 0.0);
    }

    #[test]
    fn percentile_of_single_observation_stays_in_its_bucket() {
        let h = Histogram::new();
        h.record_unchecked(6); // bucket 3 = [4, 8)
        let s = h.snapshot();
        for p in [0.0, 50.0, 99.0, 100.0] {
            let v = s.percentile(p);
            assert!((4.0..=8.0).contains(&v), "p{p} = {v} outside [4, 8]");
        }
        assert_eq!(s.percentile(100.0), 8.0, "p100 is the bucket's top");
    }

    #[test]
    fn percentile_of_zero_bucket_is_exactly_zero() {
        let h = Histogram::new();
        for _ in 0..5 {
            h.record_unchecked(0);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.percentile(100.0), 0.0);
    }

    #[test]
    fn percentile_interpolates_at_bucket_boundaries() {
        let h = Histogram::new();
        // 2 observations in bucket 2 = [2, 4), 2 in bucket 3 = [4, 8).
        for v in [2, 3, 4, 7] {
            h.record_unchecked(v);
        }
        let s = h.snapshot();
        // p50 (rank 2.0) sits exactly at the top of bucket 2.
        assert_eq!(s.percentile(50.0), 4.0);
        // p25 (rank 1.0) is halfway through bucket 2: 2 + 0.5 * (4 - 2).
        assert_eq!(s.percentile(25.0), 3.0);
        // p75 (rank 3.0) is halfway through bucket 3: 4 + 0.5 * (8 - 4).
        assert_eq!(s.percentile(75.0), 6.0);
        // p0 clamps to the first occupied bucket's bottom.
        assert_eq!(s.percentile(0.0), 2.0);
        // Percentiles are monotone in p.
        let mut last = 0.0;
        for p in 0..=100 {
            let v = s.percentile(f64::from(p));
            assert!(v >= last, "p{p} = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn percentile_of_saturating_top_bucket() {
        let h = Histogram::new();
        h.record_unchecked(u64::MAX); // lands in the capped last bucket
        h.record_unchecked(1);
        let s = h.snapshot();
        assert_eq!(s.buckets.last().unwrap().0 as usize, BUCKETS - 1);
        assert_eq!(HistogramSnapshot::bucket_hi((BUCKETS - 1) as u8), u64::MAX);
        let p99 = s.percentile(99.0);
        assert!(
            p99 >= HistogramSnapshot::bucket_lo((BUCKETS - 1) as u8) as f64,
            "p99 = {p99} below the top bucket"
        );
        assert!(p99 <= u64::MAX as f64, "saturates instead of overflowing");
        assert_eq!(s.percentile(0.0), 1.0, "bottom lands in bucket 1");
    }

    #[test]
    fn reset_zeroes_in_place() {
        let h = Histogram::new();
        h.record_unchecked(42);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record_unchecked(1);
        assert_eq!(h.count(), 1);
    }
}
