//! RAII span tracing on named tracks.
//!
//! A [`Track`] is one logical timeline — a mapper shard, a pool worker, the
//! serve scheduler — holding a bounded buffer of completed spans. Opening a
//! span costs one relaxed level load when tracing is off; when on, the
//! returned [`SpanGuard`] stamps `Instant::now()` and its `Drop` records the
//! duration into the track.
//!
//! **Span ids are deterministic.** A span's id is
//! `(fnv1a32(track_name) << 32) | per_track_sequence` — a pure function of
//! the track name and how many spans opened on the track before it, never of
//! wall-clock or thread scheduling. Under the deterministic mapper schedule
//! the (track, name, id) sequences are therefore byte-identical across
//! worker counts; only the timestamp fields vary run to run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Completed spans kept per track before new ones are dropped (and counted).
pub const TRACK_CAPACITY: usize = 16_384;

/// FNV-1a 32-bit over the track name: deterministic, offline, good enough
/// to keep distinct track names from colliding in one process.
fn fnv1a32(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in s.as_bytes() {
        h ^= u32::from(*b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The deterministic span id: track hash in the high 32 bits, the span's
/// per-track sequence number in the low 32.
pub fn span_id(track_id: u32, seq: u64) -> u64 {
    (u64::from(track_id) << 32) | (seq & 0xffff_ffff)
}

/// A completed span as recorded on a track (timestamps still `Instant`s).
struct RawSpan {
    name: &'static str,
    seq: u64,
    start: Instant,
    dur_us: u64,
    count: u64,
}

/// A named span timeline with a bounded buffer of completed spans.
///
/// Intern tracks through [`Registry::track`](crate::Registry::track) (or the
/// free [`track`](crate::track) helper) and cache the `Arc`; opening spans
/// on a cached handle is the hot-path operation.
pub struct Track {
    name: String,
    id: u32,
    seq: AtomicU64,
    spans: Mutex<Vec<RawSpan>>,
    dropped: AtomicU64,
}

impl Track {
    /// Fresh track named `name` (registry interning is the norm).
    pub(crate) fn new(name: &str) -> Self {
        Track {
            name: name.to_string(),
            id: fnv1a32(name),
            seq: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The track name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The deterministic track id (FNV-1a 32 of the name).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Open a span covering one unit of work. Returns `None` below
    /// [`Level::Spans`](crate::Level::Spans) after a single relaxed load —
    /// no clock read, no sequence number consumed.
    #[inline]
    pub fn span(self: &Arc<Self>, name: &'static str) -> Option<SpanGuard> {
        self.span_n(name, 1)
    }

    /// Open a span covering `count` units of work (a batch).
    #[inline]
    pub fn span_n(self: &Arc<Self>, name: &'static str, count: u64) -> Option<SpanGuard> {
        if !crate::span_enabled() {
            return None;
        }
        Some(self.begin(name, count))
    }

    #[cold]
    fn begin(self: &Arc<Self>, name: &'static str, count: u64) -> SpanGuard {
        SpanGuard {
            track: Arc::clone(self),
            name,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            count,
            start: Instant::now(),
        }
    }

    fn record(&self, name: &'static str, seq: u64, start: Instant, dur_us: u64, count: u64) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() >= TRACK_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(RawSpan {
            name,
            seq,
            start,
            dur_us,
            count,
        });
    }

    /// Completed spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no spans completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable copy of the completed spans (sorted by sequence number, so
    /// the order is deterministic even though spans complete out of order)
    /// plus the dropped count. `epoch` anchors the microsecond timestamps.
    pub(crate) fn snapshot(&self, epoch: Instant) -> (Vec<SpanSnapshot>, u64) {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<SpanSnapshot> = spans
            .iter()
            .map(|s| SpanSnapshot {
                id: span_id(self.id, s.seq),
                name: s.name,
                start_us: s.start.saturating_duration_since(epoch).as_micros() as u64,
                dur_us: s.dur_us,
                count: s.count,
            })
            .collect();
        out.sort_by_key(|s| s.id);
        (out, self.dropped.load(Ordering::Relaxed))
    }

    /// Clear spans, sequence, and dropped count in place (handles stay
    /// valid), mirroring counter/histogram `reset`.
    pub fn reset(&self) {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.seq.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Track {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Track({}, id={:#x}, spans={})",
            self.name,
            self.id,
            self.len()
        )
    }
}

/// RAII guard for an open span: records the duration on drop.
pub struct SpanGuard {
    track: Arc<Track>,
    name: &'static str,
    seq: u64,
    count: u64,
    start: Instant,
}

impl SpanGuard {
    /// The span's deterministic id.
    pub fn id(&self) -> u64 {
        span_id(self.track.id, self.seq)
    }

    /// Grow the unit count covered by this span (batches sized after open).
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.track
            .record(self.name, self.seq, self.start, dur_us, self.count);
    }
}

/// A completed span as exported in snapshots: deterministic id and name,
/// wall-clock offsets in microseconds from the registry epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `(track_id << 32) | sequence` — deterministic across runs.
    pub id: u64,
    /// The span's static name (the phase it attributes time to).
    pub name: &'static str,
    /// Start offset from the registry epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Units of work covered (1 for plain spans, batch size for batches).
    pub count: u64,
}

impl SpanSnapshot {
    /// End offset from the registry epoch, microseconds.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_distinct() {
        assert_eq!(fnv1a32(""), 0x811c_9dc5);
        assert_eq!(fnv1a32("mapper"), fnv1a32("mapper"));
        assert_ne!(fnv1a32("mapper"), fnv1a32("mapper.shard0"));
    }

    #[test]
    fn span_ids_compose_track_and_sequence() {
        assert_eq!(span_id(0xabcd_1234, 7), 0xabcd_1234_0000_0007);
        // Sequence wraps into the low 32 bits rather than corrupting the
        // track half.
        assert_eq!(span_id(1, u64::from(u32::MAX) + 2), (1u64 << 32) | 1);
    }

    #[test]
    fn capacity_overflow_drops_and_counts() {
        let track = Track::new("t");
        let start = Instant::now();
        for i in 0..(TRACK_CAPACITY as u64 + 3) {
            track.record("s", i, start, 1, 1);
        }
        let (spans, dropped) = track.snapshot(start);
        assert_eq!(spans.len(), TRACK_CAPACITY);
        assert_eq!(dropped, 3);
        track.reset();
        assert!(track.is_empty());
        let (_, dropped) = track.snapshot(start);
        assert_eq!(dropped, 0);
    }
}
