//! Deterministic snapshots: everything a registry recorded, rendered with
//! sorted keys into canonical JSON so two identical runs produce
//! byte-identical files.

use std::collections::BTreeMap;

use crate::hist::HistogramSnapshot;
use crate::journal::Event;

/// A point-in-time copy of a [`Registry`](crate::Registry): counters and
/// histograms in sorted-name order plus the journal contents. Reports embed
/// it *outside* their `canonical_string()` renderings, so it never affects
/// the deterministic replay contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// The recording level the snapshot was taken at (`off` / `counters` /
    /// `journal`).
    pub level: String,
    /// Nonzero counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Non-empty histograms, sorted by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Journal events in sequence order (empty below the journal level).
    pub events: Vec<Event>,
    /// Events the bounded journal dropped.
    pub dropped_events: u64,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TelemetrySnapshot {
    /// Whether nothing was recorded (no counters, histograms, or events).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.events.is_empty()
    }

    /// The value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Canonical JSON rendering: keys sorted (BTreeMap order), stable field
    /// order, no floats — byte-identical for identical recorded state.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"level\": \"{}\",\n", escape(&self.level)));
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", escape(k), v));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets = h
                .buckets
                .iter()
                .map(|(i, n)| format!("[{i}, {n}]"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                escape(k),
                h.count,
                h.sum,
                buckets
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"events\": [");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                e.seq,
                escape(e.kind),
                escape(&e.detail)
            ));
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str(&format!("  \"dropped_events\": {}\n", self.dropped_events));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_canonical_and_sorted() {
        let mut snap = TelemetrySnapshot {
            level: "counters".into(),
            ..Default::default()
        };
        snap.counters.insert("z.last".into(), 2);
        snap.counters.insert("a.first".into(), 1);
        snap.histograms.insert(
            "lat".into(),
            HistogramSnapshot {
                count: 2,
                sum: 9,
                buckets: vec![(1, 1), (4, 1)],
            },
        );
        snap.events.push(Event {
            seq: 0,
            kind: "k",
            detail: "a=\"1\"".into(),
        });
        let json = snap.to_json();
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "keys render in sorted order");
        assert!(json.contains("\"buckets\": [[1, 1], [4, 1]]"));
        assert!(json.contains("\\\"1\\\""), "details are escaped");
        assert_eq!(json, snap.clone().to_json(), "rendering is stable");
    }

    #[test]
    fn empty_snapshot_renders_and_reports_empty() {
        let snap = TelemetrySnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.counter("missing"), 0);
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events\": []"));
        assert!(json.ends_with('}'));
    }
}
