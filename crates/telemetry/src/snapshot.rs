//! Deterministic snapshots: everything a registry recorded, rendered with
//! sorted keys into canonical JSON so two identical runs produce
//! byte-identical files. Snapshots with spans additionally export a
//! Chrome-trace-event rendering and a computed phase-attribution profile.

use std::collections::BTreeMap;

use crate::hist::HistogramSnapshot;
use crate::journal::Event;
use crate::span::SpanSnapshot;

/// A point-in-time copy of a [`Registry`](crate::Registry): counters and
/// histograms in sorted-name order plus the journal contents. Reports embed
/// it *outside* their `canonical_string()` renderings, so it never affects
/// the deterministic replay contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// The recording level the snapshot was taken at (`off` / `counters` /
    /// `journal` / `spans`).
    pub level: String,
    /// Nonzero counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Non-empty histograms, sorted by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed spans per track (sorted by track name, spans in sequence
    /// order; empty below the spans level).
    pub tracks: BTreeMap<String, Vec<SpanSnapshot>>,
    /// Journal events in sequence order (empty below the journal level).
    pub events: Vec<Event>,
    /// Events the bounded journal dropped.
    pub dropped_events: u64,
    /// Spans the bounded track buffers dropped.
    pub dropped_spans: u64,
}

/// One row of the phase-attribution profile: all spans sharing a name,
/// aggregated across tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// The span name the row aggregates.
    pub phase: String,
    /// Number of spans.
    pub spans: u64,
    /// Total units of work covered (sum of span counts).
    pub count: u64,
    /// Total wall time inside the phase, microseconds (children included).
    pub total_us: u64,
    /// Self time: total minus time spent in child spans nested within on
    /// the same track, microseconds.
    pub self_us: u64,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Self time per span for one track: each span's duration minus the
/// durations of spans nested directly inside it. Nesting is reconstructed
/// from intervals (start ascending, duration descending, so a parent sorts
/// before the children it contains).
fn self_times(spans: &[SpanSnapshot]) -> Vec<u64> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].start_us, u64::MAX - spans[i].dur_us, spans[i].id));
    let mut selfs: Vec<u64> = spans.iter().map(|s| s.dur_us).collect();
    let mut stack: Vec<usize> = Vec::new();
    for &i in &order {
        while let Some(&top) = stack.last() {
            if spans[i].start_us >= spans[top].end_us() {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&top) = stack.last() {
            // Contained in the enclosing open span: its time is not the
            // parent's self time. (Partial overlap — which per-track spans
            // never produce — is conservatively left alone.)
            if spans[i].end_us() <= spans[top].end_us() {
                selfs[top] = selfs[top].saturating_sub(spans[i].dur_us);
            }
        }
        stack.push(i);
    }
    selfs
}

impl TelemetrySnapshot {
    /// Whether nothing was recorded (no counters, histograms, spans, or
    /// events).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.tracks.is_empty()
            && self.events.is_empty()
    }

    /// The value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether any track recorded spans (drives `TRACE_*.json` export).
    pub fn has_spans(&self) -> bool {
        self.tracks.values().any(|spans| !spans.is_empty())
    }

    /// The phase-attribution profile: spans aggregated by name across all
    /// tracks, with self time (duration minus nested child durations),
    /// sorted by self time descending then name — the "where does the time
    /// go" table.
    pub fn phase_profile(&self) -> Vec<PhaseStat> {
        let mut by_name: BTreeMap<&str, PhaseStat> = BTreeMap::new();
        for spans in self.tracks.values() {
            let selfs = self_times(spans);
            for (span, self_us) in spans.iter().zip(selfs) {
                let stat = by_name.entry(span.name).or_insert_with(|| PhaseStat {
                    phase: span.name.to_string(),
                    spans: 0,
                    count: 0,
                    total_us: 0,
                    self_us: 0,
                });
                stat.spans += 1;
                stat.count += span.count;
                stat.total_us += span.dur_us;
                stat.self_us += self_us;
            }
        }
        let mut rows: Vec<PhaseStat> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.phase.cmp(&b.phase)));
        rows
    }

    /// Canonical JSON rendering: keys sorted (BTreeMap order), stable field
    /// order, no floats — byte-identical for identical recorded state
    /// except for the wall-clock span timestamp fields.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"level\": \"{}\",\n", escape(&self.level)));
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", escape(k), v));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let buckets = h
                .buckets
                .iter()
                .map(|(i, n)| format!("[{i}, {n}]"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                escape(k),
                h.count,
                h.sum,
                buckets
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"tracks\": {");
        let mut first = true;
        for (k, spans) in &self.tracks {
            if !first {
                out.push(',');
            }
            first = false;
            let rendered = spans
                .iter()
                .map(|s| {
                    format!(
                        "{{\"id\": {}, \"name\": \"{}\", \"start_us\": {}, \"dur_us\": {}, \"count\": {}}}",
                        s.id,
                        escape(s.name),
                        s.start_us,
                        s.dur_us,
                        s.count
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n      ");
            out.push_str(&format!(
                "\n    \"{}\": [\n      {}\n    ]",
                escape(k),
                rendered
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"phases\": [");
        let mut first = true;
        for p in self.phase_profile() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"phase\": \"{}\", \"spans\": {}, \"count\": {}, \"total_us\": {}, \"self_us\": {}}}",
                escape(&p.phase),
                p.spans,
                p.count,
                p.total_us,
                p.self_us
            ));
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"events\": [");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                e.seq,
                escape(e.kind),
                escape(&e.detail)
            ));
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str(&format!("  \"dropped_events\": {},\n", self.dropped_events));
        out.push_str(&format!("  \"dropped_spans\": {}\n", self.dropped_spans));
        out.push('}');
        out
    }

    /// Render the recorded spans as Chrome trace-event JSON (the legacy
    /// array format): one `"ph": "M"` `thread_name` metadata event per
    /// track, then the spans as `"ph": "X"` complete events with `ts`/`dur`
    /// in microseconds. Loads directly in Perfetto or `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("[\n");
        let mut first = true;
        for (tid, (name, spans)) in self.tracks.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
                tid,
                escape(name)
            ));
            // Chrome's nesting reconstruction wants begin-time order with
            // parents before equal-start children.
            let mut order: Vec<&SpanSnapshot> = spans.iter().collect();
            order.sort_by_key(|s| (s.start_us, u64::MAX - s.dur_us, s.id));
            for s in order {
                out.push_str(",\n");
                out.push_str(&format!(
                    "{{\"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"name\": \"{}\", \"args\": {{\"id\": {}, \"count\": {}}}}}",
                    tid,
                    s.start_us,
                    s.dur_us,
                    escape(s.name),
                    s.id,
                    s.count
                ));
            }
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_canonical_and_sorted() {
        let mut snap = TelemetrySnapshot {
            level: "counters".into(),
            ..Default::default()
        };
        snap.counters.insert("z.last".into(), 2);
        snap.counters.insert("a.first".into(), 1);
        snap.histograms.insert(
            "lat".into(),
            HistogramSnapshot {
                count: 2,
                sum: 9,
                buckets: vec![(1, 1), (4, 1)],
            },
        );
        snap.events.push(Event {
            seq: 0,
            kind: "k",
            detail: "a=\"1\"".into(),
        });
        let json = snap.to_json();
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "keys render in sorted order");
        assert!(json.contains("\"buckets\": [[1, 1], [4, 1]]"));
        assert!(json.contains("\\\"1\\\""), "details are escaped");
        assert_eq!(json, snap.clone().to_json(), "rendering is stable");
    }

    #[test]
    fn empty_snapshot_renders_and_reports_empty() {
        let snap = TelemetrySnapshot::default();
        assert!(snap.is_empty());
        assert!(!snap.has_spans());
        assert_eq!(snap.counter("missing"), 0);
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"tracks\": {}"));
        assert!(json.contains("\"phases\": []"));
        assert!(json.contains("\"events\": []"));
        assert!(json.ends_with('}'));
    }

    fn span(id: u64, name: &'static str, start_us: u64, dur_us: u64, count: u64) -> SpanSnapshot {
        SpanSnapshot {
            id,
            name,
            start_us,
            dur_us,
            count,
        }
    }

    #[test]
    fn phase_profile_attributes_self_time_through_nesting() {
        let mut snap = TelemetrySnapshot {
            level: "spans".into(),
            ..Default::default()
        };
        // outer [0, 100) contains propose [10, 30) and evaluate [30, 90);
        // a second top-level propose [100, 120) is a sibling, not a child.
        snap.tracks.insert(
            "t".into(),
            vec![
                span(0, "outer", 0, 100, 1),
                span(1, "propose", 10, 20, 4),
                span(2, "evaluate", 30, 60, 4),
                span(3, "propose", 100, 20, 4),
            ],
        );
        let profile = snap.phase_profile();
        let get = |name: &str| profile.iter().find(|p| p.phase == name).unwrap().clone();
        assert_eq!(get("outer").total_us, 100);
        assert_eq!(get("outer").self_us, 100 - 20 - 60);
        assert_eq!(get("evaluate").self_us, 60);
        let propose = get("propose");
        assert_eq!((propose.spans, propose.count), (2, 8));
        assert_eq!((propose.total_us, propose.self_us), (40, 40));
        assert_eq!(profile[0].phase, "evaluate", "sorted by self time desc");
        assert!(snap.has_spans());
        assert!(snap.to_json().contains("\"phase\": \"evaluate\""));
    }

    #[test]
    fn chrome_trace_renders_metadata_and_complete_events() {
        let mut snap = TelemetrySnapshot {
            level: "spans".into(),
            ..Default::default()
        };
        snap.tracks
            .insert("a".into(), vec![span(7, "work", 5, 10, 2)]);
        snap.tracks
            .insert("b".into(), vec![span(9, "sync", 0, 1, 1)]);
        let trace = snap.to_chrome_trace();
        assert!(trace.trim_start().starts_with('['));
        assert!(trace.trim_end().ends_with(']'));
        assert!(trace.contains(
            "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"thread_name\", \"args\": {\"name\": \"a\"}}"
        ));
        assert!(
            trace.contains("\"tid\": 1"),
            "second track gets its own lane"
        );
        assert!(trace.contains(
            "{\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": 5, \"dur\": 10, \"name\": \"work\", \"args\": {\"id\": 7, \"count\": 2}}"
        ));
    }
}
