//! `mm-telemetry`: zero-cost-when-off runtime metrics for the whole stack.
//!
//! The serving north star needs a window into *why* a run behaved the way
//! it did — how often `pin_and_fix` clamped an escaping move, whether the
//! serve cache is hitting, where `EvalPool` time goes — without perturbing
//! the deterministic replay contract or the hot evaluation loop. This crate
//! provides exactly that, under two hard invariants:
//!
//! 1. **Determinism is untouched.** Instrumentation only *observes*: it
//!    never draws from an RNG, never reorders merges, and snapshots are
//!    embedded in reports *outside* their `canonical_string()` renderings
//!    (like the existing wall-clock fields). Telemetry off vs. full
//!    produces byte-identical canonical reports.
//! 2. **Off means off.** Every instrumented site is guarded by one relaxed
//!    atomic load of the global [`Level`]; at [`Level::Off`] no counter is
//!    touched, no clock is read, and no string is formatted.
//!
//! # Architecture
//!
//! * [`Counter`] — a relaxed [`AtomicU64`]; the only hot-path primitive.
//! * [`Histogram`] — fixed 64-bucket log2 histogram (count, sum, buckets),
//!   mergeable; used for batch sizes and queue latencies.
//! * [`Journal`] — a bounded ring of structured [`Event`]s with a dropped
//!   counter; event detail strings are built lazily, only at
//!   [`Level::Journal`].
//! * [`Registry`] — interns counters/histograms by name (sorted maps), owns
//!   the journal, and renders a deterministic [`TelemetrySnapshot`].
//!   [`Scope`] prefixes names (`"serve.cache"` + `"hits"` →
//!   `"serve.cache.hits"`).
//! * [`global()`] — the process-wide registry every production call site
//!   uses; explicit `Registry` instances stay available for unit tests.
//!
//! * [`Track`] — a named span timeline with RAII [`SpanGuard`]s and
//!   deterministic span ids (`(track, sequence)`, never wall-clock), active
//!   only at [`Level::Spans`]; snapshots export Chrome-trace-event JSON and
//!   a phase-attribution profile.
//!
//! The runtime level comes from the `MM_TELEMETRY` environment variable
//! (`off` / `counters` / `journal` / `spans`, read once, lazily) and can be
//! overridden programmatically with [`set_level`] (benches A/B the overhead
//! that way).
//!
//! # Idiom for hot paths
//!
//! Intern the handle once (per worker, per struct, or in a `OnceLock`
//! static) and bump it unconditionally — [`Counter::bump`] itself performs
//! the single relaxed level check:
//!
//! ```
//! use std::sync::OnceLock;
//! use mm_telemetry::Counter;
//! use std::sync::Arc;
//!
//! fn evals() -> &'static Counter {
//!     static C: OnceLock<Arc<Counter>> = OnceLock::new();
//!     C.get_or_init(|| mm_telemetry::counter("example.evals"))
//! }
//! evals().bump(1);
//! ```

mod hist;
mod journal;
mod snapshot;
mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use journal::{Event, Journal};
pub use snapshot::{PhaseStat, TelemetrySnapshot};
pub use span::{span_id, SpanGuard, SpanSnapshot, Track};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How much the process records. Ordered: each level includes the previous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Record nothing; every instrumented site is a single relaxed load.
    Off = 0,
    /// Counters and histograms (including timing histograms).
    Counters = 1,
    /// Counters plus the structured event journal.
    Journal = 2,
    /// Everything above plus RAII span tracing on per-track buffers
    /// (exported as Chrome-trace-event JSON and a phase profile).
    Spans = 3,
}

impl Level {
    /// Parse the `MM_TELEMETRY` value; unknown strings mean [`Level::Off`].
    pub fn from_env_str(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "counters" | "1" => Level::Counters,
            "journal" | "2" => Level::Journal,
            "spans" | "full" | "3" => Level::Spans,
            _ => Level::Off,
        }
    }

    /// The canonical lowercase name (`off` / `counters` / `journal` /
    /// `spans`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Counters => "counters",
            Level::Journal => "journal",
            Level::Spans => "spans",
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

#[cold]
fn init_level_from_env() -> Level {
    let level = std::env::var("MM_TELEMETRY")
        .map(|v| Level::from_env_str(&v))
        .unwrap_or(Level::Off);
    // A concurrent `set_level` may have raced us; only fill the sentinel.
    let _ = LEVEL.compare_exchange(
        LEVEL_UNSET,
        level as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Counters,
        2 => Level::Journal,
        3 => Level::Spans,
        _ => Level::Off,
    }
}

/// The current recording level (one relaxed atomic load on the fast path).
#[inline]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Counters,
        2 => Level::Journal,
        3 => Level::Spans,
        _ => init_level_from_env(),
    }
}

/// Override the recording level for this process (tests and benches; takes
/// precedence over `MM_TELEMETRY` from the moment it is called).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether counters/histograms are recording (level ≥ counters).
#[inline]
pub fn enabled() -> bool {
    level() >= Level::Counters
}

/// Whether clock-reading instrumentation should run. Call sites gate their
/// `Instant::now()` on this so the off level never touches a clock.
#[inline]
pub fn timing_enabled() -> bool {
    level() >= Level::Counters
}

/// Whether the structured journal is recording.
#[inline]
pub fn journal_enabled() -> bool {
    level() >= Level::Journal
}

/// Whether span tracing is recording. Span guards gate their
/// `Instant::now()` on this, so every level below `spans` pays exactly one
/// relaxed load per instrumented site.
#[inline]
pub fn span_enabled() -> bool {
    level() >= Level::Spans
}

/// A monotone event counter. Bumps are relaxed atomic adds, guarded by the
/// global level so an off process pays one load and a predicted branch.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Fresh zero counter (standalone; registry interning is the norm).
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` when telemetry is enabled.
    #[inline]
    pub fn bump(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (registry `reset()`; handles stay valid).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Interns counters and histograms by name, owns the journal, and renders
/// deterministic snapshots. Names sort lexicographically in snapshots, so
/// two runs that record the same values render byte-identically.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    tracks: Mutex<BTreeMap<String, Arc<Track>>>,
    /// Zero point for span timestamps, so snapshots carry small
    /// microsecond offsets instead of raw `Instant`s. Reset with the rest
    /// of the registry.
    epoch: Mutex<std::time::Instant>,
    journal: Journal,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Fresh registry with the default journal bound.
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            tracks: Mutex::new(BTreeMap::new()),
            epoch: Mutex::new(std::time::Instant::now()),
            journal: Journal::new(journal::DEFAULT_CAPACITY),
        }
    }

    // Observability must never take the host process down: poisoned locks
    // are recovered (`unwrap_or_else(|e| e.into_inner())`) throughout,
    // which is sound because every guarded structure is a plain map or
    // buffer that stays valid after a panicking writer.

    /// The counter interned under `name` (created on first use). Intern
    /// once and cache the `Arc` — the lookup takes a lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The histogram interned under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// The span track interned under `name` (created on first use). A track
    /// is one logical timeline — a shard, a pool worker, a scheduler — and
    /// its id (and therefore every span id on it) is a pure function of the
    /// name, never of wall-clock or scheduling order.
    pub fn track(&self, name: &str) -> Arc<Track> {
        let mut map = self.tracks.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Track::new(name)))
            .clone()
    }

    /// The registry's event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// A name-prefixing view: `scope("serve.cache").counter("hits")` interns
    /// `serve.cache.hits`.
    pub fn scope<'a>(&'a self, prefix: &str) -> Scope<'a> {
        Scope {
            registry: self,
            prefix: prefix.to_string(),
        }
    }

    /// Deterministic snapshot of everything recorded so far: counters and
    /// histograms in sorted-name order, plus the journal contents.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .filter(|(_, v)| *v > 0)
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .filter(|(_, h)| h.count > 0)
            .collect();
        let epoch = *self.epoch.lock().unwrap_or_else(|e| e.into_inner());
        let mut dropped_spans = 0;
        let tracks = self
            .tracks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(|(k, t)| {
                let (spans, dropped) = t.snapshot(epoch);
                dropped_spans += dropped;
                (!spans.is_empty()).then(|| (k.clone(), spans))
            })
            .collect();
        let (events, dropped_events) = self.journal.drain_copy();
        TelemetrySnapshot {
            level: level().name().to_string(),
            counters,
            histograms,
            tracks,
            events,
            dropped_events,
            dropped_spans,
        }
    }

    /// Zero every counter and histogram and clear the journal. Interned
    /// handles stay valid (values reset in place), so cached `Arc`s held by
    /// long-lived pools keep working across bench iterations.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
        for t in self
            .tracks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            t.reset();
        }
        *self.epoch.lock().unwrap_or_else(|e| e.into_inner()) = std::time::Instant::now();
        self.journal.clear();
    }
}

/// A name-prefixing view over a [`Registry`].
pub struct Scope<'a> {
    registry: &'a Registry,
    prefix: String,
}

impl Scope<'_> {
    /// The counter interned under `prefix.name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&format!("{}.{}", self.prefix, name))
    }

    /// The histogram interned under `prefix.name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry
            .histogram(&format!("{}.{}", self.prefix, name))
    }
}

/// The process-wide registry all production call sites use.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Intern a counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Intern a histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Intern a span track in the global registry.
pub fn track(name: &str) -> Arc<Track> {
    global().track(name)
}

/// Append an event to the global journal. `detail` runs only at
/// [`Level::Journal`], so formatting costs nothing below it.
#[inline]
pub fn event(kind: &'static str, detail: impl FnOnce() -> String) {
    if journal_enabled() {
        global().journal.push(kind, detail());
    }
}

/// Snapshot the global registry (None below [`Level::Counters`], so report
/// embedding is free when telemetry is off).
pub fn snapshot_if_enabled() -> Option<TelemetrySnapshot> {
    enabled().then(|| global().snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that mutate the global level serialize on this guard.
    fn level_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::from_env_str("off"), Level::Off);
        assert_eq!(Level::from_env_str("counters"), Level::Counters);
        assert_eq!(Level::from_env_str("JOURNAL"), Level::Journal);
        assert_eq!(Level::from_env_str("spans"), Level::Spans);
        assert_eq!(Level::from_env_str("full"), Level::Spans);
        assert_eq!(Level::from_env_str("nonsense"), Level::Off);
        assert!(Level::Off < Level::Counters && Level::Counters < Level::Journal);
        assert!(Level::Journal < Level::Spans);
    }

    #[test]
    fn counters_respect_the_level() {
        let _g = level_guard();
        let reg = Registry::new();
        let c = reg.counter("x");
        set_level(Level::Off);
        c.bump(5);
        assert_eq!(c.get(), 0, "off means off");
        set_level(Level::Counters);
        c.bump(5);
        assert_eq!(c.get(), 5);
        set_level(Level::Off);
    }

    #[test]
    fn registry_interns_and_scopes() {
        let _g = level_guard();
        set_level(Level::Counters);
        let reg = Registry::new();
        let a = reg.counter("serve.cache.hits");
        let b = reg.scope("serve.cache").counter("hits");
        a.bump(1);
        b.bump(2);
        assert_eq!(reg.counter("serve.cache.hits").get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("serve.cache.hits"), Some(&3));
        set_level(Level::Off);
    }

    #[test]
    fn snapshot_skips_zeroes_and_reset_keeps_handles_valid() {
        let _g = level_guard();
        set_level(Level::Counters);
        let reg = Registry::new();
        let touched = reg.counter("touched");
        let _untouched = reg.counter("untouched");
        touched.bump(7);
        let snap = reg.snapshot();
        assert!(snap.counters.contains_key("touched"));
        assert!(!snap.counters.contains_key("untouched"));
        reg.reset();
        assert_eq!(touched.get(), 0);
        touched.bump(2);
        assert_eq!(reg.snapshot().counters.get("touched"), Some(&2));
        set_level(Level::Off);
    }

    #[test]
    fn spans_record_only_at_spans_level_with_deterministic_ids() {
        let _g = level_guard();
        let reg = Registry::new();
        let track = reg.track("unit.track");

        set_level(Level::Journal);
        assert!(
            track.span("below_spans").is_none(),
            "journal level records no spans"
        );

        set_level(Level::Spans);
        {
            let _outer = track.span("outer");
            let _inner = track.span_n("inner", 16);
        }
        let snap = reg.snapshot();
        let spans = &snap.tracks["unit.track"];
        assert_eq!(spans.len(), 2);
        // Ids are (fnv1a32(track) << 32) | sequence — the failed journal-
        // level attempt above consumed no sequence number.
        assert_eq!(spans[0].id, span_id(track.id(), 0));
        assert_eq!(spans[1].id, span_id(track.id(), 1));
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].count, 16);
        assert_eq!(snap.dropped_spans, 0);

        // Reset keeps the handle valid and restarts the sequence.
        reg.reset();
        {
            let _again = track.span("again");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.tracks["unit.track"][0].id, span_id(track.id(), 0));
        set_level(Level::Off);
    }

    #[test]
    fn track_ids_are_a_pure_function_of_the_name() {
        let a = Registry::new().track("mapper.shard0");
        let b = Registry::new().track("mapper.shard0");
        let c = Registry::new().track("mapper.shard1");
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn journal_events_only_at_journal_level() {
        let _g = level_guard();
        let reg = Registry::new();
        set_level(Level::Counters);
        if journal_enabled() {
            reg.journal().push("sync", "round=1".to_string());
        }
        assert_eq!(reg.journal().len(), 0);
        set_level(Level::Journal);
        if journal_enabled() {
            reg.journal().push("sync", "round=2".to_string());
        }
        assert_eq!(reg.journal().len(), 1);
        set_level(Level::Off);
    }
}
