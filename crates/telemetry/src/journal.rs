//! The bounded structured event journal: a ring of `(seq, kind, detail)`
//! records with a dropped-event counter, so a long run can keep the journal
//! on without unbounded memory growth.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring capacity (events kept; older events are dropped and
/// counted).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One structured journal record. No wall-clock timestamp: the sequence
/// number orders events deterministically, so two replays of the same run
/// produce comparable journals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number across the journal's lifetime (survives
    /// ring eviction, so gaps reveal drops).
    pub seq: u64,
    /// Event category, e.g. `"mapper.sync_round"` or `"serve.cache.miss"`.
    pub kind: &'static str,
    /// Free-form `key=value` detail payload.
    pub detail: String,
}

struct JournalInner {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
    capacity: usize,
}

/// A bounded, thread-safe ring of [`Event`]s.
pub struct Journal {
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Fresh journal bounded at `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Journal {
            inner: Mutex::new(JournalInner {
                events: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
                capacity: capacity.max(1),
            }),
        }
    }

    /// Append one event, evicting (and counting) the oldest when full.
    /// Callers gate on [`crate::journal_enabled`] so the detail string is
    /// only built when the journal records.
    pub fn push(&self, kind: &'static str, detail: String) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.events.len() >= inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back(Event { seq, kind, detail });
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped to the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Copy out the retained events (in order) and the dropped count,
    /// without clearing.
    pub fn drain_copy(&self) -> (Vec<Event>, u64) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.events.iter().cloned().collect(), inner.dropped)
    }

    /// Clear all events and reset the drop/sequence accounting.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.clear();
        inner.next_seq = 0;
        inner.dropped = 0;
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        write!(
            f,
            "Journal(len={}, dropped={}, cap={})",
            inner.events.len(),
            inner.dropped,
            inner.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_drops_oldest_and_counts() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.push("k", format!("i={i}"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let (events, dropped) = j.drain_copy();
        assert_eq!(dropped, 2);
        // Oldest two evicted: seq 2, 3, 4 remain, in order.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(events[0].detail, "i=2");
    }

    #[test]
    fn clear_resets_everything() {
        let j = Journal::new(2);
        j.push("a", String::new());
        j.push("a", String::new());
        j.push("a", String::new());
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
        j.push("b", "x".into());
        let (events, _) = j.drain_copy();
        assert_eq!(events[0].seq, 0, "sequence restarts after clear");
    }

    #[test]
    fn capacity_floor_is_one() {
        let j = Journal::new(0);
        j.push("k", "1".into());
        j.push("k", "2".into());
        assert_eq!(j.len(), 1);
        assert_eq!(j.dropped(), 1);
    }
}
