//! Phase 1, step 1: generating the surrogate training set (Section 4.1.1).
//!
//! Training examples are `(mapping ⊕ problem-id, meta-statistics)` pairs.
//! Mappings are sampled **uniformly at random from the valid map space** of
//! representative problems drawn from the target algorithm's family, so that
//! one surrogate generalizes across all problems of that algorithm. Costs are
//! the reference cost model's meta-statistics vector (Section 4.1.3),
//! normalized element-wise by the problem's algorithmic-minimum bound to
//! reduce cross-problem variance.

use mm_accel::{AlgorithmicMinimum, Architecture, CostModel};
use mm_mapspace::mapping::Level;
use mm_mapspace::problem::ProblemFamily;
use mm_mapspace::{Encoding, MapSpace, ProblemSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::MindMappingsError;

/// A generated surrogate training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateDataset {
    /// Raw (un-whitened) input vectors: problem id followed by the encoded
    /// mapping (62 values for CNN-Layer, 40 for MTTKRP).
    pub inputs: Vec<Vec<f32>>,
    /// Lower-bound-normalized meta-statistics targets (12 values for
    /// CNN-Layer, 15 for MTTKRP).
    pub targets: Vec<Vec<f32>>,
    /// Number of problem dimensions of the family.
    pub num_dims: usize,
    /// Number of tensors of the family.
    pub num_tensors: usize,
}

impl SurrogateDataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input vector length (problem id + mapping encoding).
    pub fn input_len(&self) -> usize {
        self.inputs.first().map_or(0, Vec::len)
    }

    /// Target vector length (meta-statistics).
    pub fn target_len(&self) -> usize {
        self.targets.first().map_or(0, Vec::len)
    }

    /// Keep only the first `n` examples (used by the Figure 7c dataset-size
    /// sensitivity study).
    pub fn truncated(&self, n: usize) -> SurrogateDataset {
        SurrogateDataset {
            inputs: self.inputs.iter().take(n).cloned().collect(),
            targets: self.targets.iter().take(n).cloned().collect(),
            num_dims: self.num_dims,
            num_tensors: self.num_tensors,
        }
    }
}

/// Element-wise normalization denominators for the meta-statistics of
/// `problem`: the algorithmic-minimum reference of Section 4.1.3.
///
/// Layout matches [`mm_accel::CostBreakdown::meta_statistics`]: per-level,
/// per-tensor energies, then utilization (denominator 1), cycles, and total
/// energy.
pub fn lower_bound_reference(arch: &Architecture, problem: &ProblemSpec) -> Vec<f64> {
    let lb = AlgorithmicMinimum::compute(arch, problem);
    let nt = problem.num_tensors();
    let mut denom = Vec::with_capacity(3 * nt + 3);
    for level in Level::ALL {
        for t in 0..nt {
            denom.push(
                AlgorithmicMinimum::tensor_level_energy_pj(arch, problem, level, t).max(1e-9),
            );
        }
    }
    denom.push(1.0); // utilization is already in [0, 1]
    denom.push(lb.cycles.max(1.0));
    denom.push(lb.energy_pj.max(1e-9));
    denom
}

/// The lower-bound-normalized meta-statistics of one mapping: the surrogate's
/// training target.
///
/// Each element is `ln(1 + value / lower_bound)`. The log compresses the
/// heavy-tailed cost distribution of the map space (Section 5.1.3 reports a
/// standard deviation of 231× the mean for CNN layers), which lets the
/// scaled-down surrogates used in this reproduction regress accurately with
/// far fewer samples than the paper's 10 M. The inverse transform is applied
/// by [`crate::Surrogate`] when predicting, so the public semantics
/// (lower-bound-relative costs) are unchanged. This deviation is recorded in
/// DESIGN.md.
pub fn normalized_meta_statistics(
    model: &CostModel,
    reference: &[f64],
    mapping: &mm_mapspace::Mapping,
) -> Vec<f32> {
    let meta = model.evaluate(mapping).meta_statistics();
    meta.iter()
        .zip(reference)
        .map(|(&m, &r)| (m / r).ln_1p() as f32)
        .collect()
}

/// Invert the per-element target transform: recover `value / lower_bound`
/// from a stored/predicted target element.
pub fn denormalize_meta_element(v: f64) -> f64 {
    v.exp() - 1.0
}

/// Generate `config.num_samples` training examples for `family` on `arch`
/// (Section 4.1.1). A fresh representative problem is drawn from the family
/// every `mappings_per_problem` samples; mappings are sampled uniformly at
/// random from each problem's valid map space.
///
/// # Errors
///
/// Returns [`MindMappingsError::Training`] if `num_samples` is zero.
pub fn generate_training_set<F: ProblemFamily + ?Sized, R: Rng>(
    arch: &Architecture,
    family: &F,
    num_samples: usize,
    mappings_per_problem: usize,
    rng: &mut R,
) -> Result<SurrogateDataset, MindMappingsError> {
    if num_samples == 0 {
        return Err(MindMappingsError::Training {
            what: "num_samples must be positive".to_string(),
        });
    }
    let per_problem = mappings_per_problem.max(1);
    let mut inputs = Vec::with_capacity(num_samples);
    let mut targets = Vec::with_capacity(num_samples);
    let constraints = arch.mapping_constraints();

    let mut remaining = num_samples;
    while remaining > 0 {
        let problem = family.sample_problem(rng);
        let enc = Encoding::for_problem(&problem);
        let space = MapSpace::new(problem.clone(), constraints);
        let model = CostModel::new(arch.clone(), problem.clone());
        let reference = lower_bound_reference(arch, &problem);
        let batch = per_problem.min(remaining);
        for _ in 0..batch {
            let mapping = space.random_mapping(rng);
            inputs.push(enc.encode(&problem, &mapping));
            targets.push(normalized_meta_statistics(&model, &reference, &mapping));
        }
        remaining -= batch;
    }

    Ok(SurrogateDataset {
        inputs,
        targets,
        num_dims: family.num_dims(),
        num_tensors: family.num_tensors(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_workloads::conv1d::Conv1dFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_number_of_samples() {
        let arch = Architecture::example();
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(0);
        let ds = generate_training_set(&arch, &fam, 120, 25, &mut rng).unwrap();
        assert_eq!(ds.len(), 120);
        assert!(!ds.is_empty());
        // conv1d: 2 dims, 3 tensors -> inputs 2 + 16 + ... use Encoding.
        let enc = Encoding {
            num_dims: 2,
            num_tensors: 3,
        };
        assert_eq!(ds.input_len(), enc.total_len());
        assert_eq!(ds.target_len(), 3 * 3 + 3);
    }

    #[test]
    fn rejects_zero_samples() {
        let arch = Architecture::example();
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(generate_training_set(&arch, &fam, 0, 10, &mut rng).is_err());
    }

    #[test]
    fn targets_are_lower_bound_relative() {
        // Every normalized meta-statistic must be positive, and the total
        // energy and cycle entries must be >= ~1 (no mapping beats the
        // algorithmic minimum).
        let arch = Architecture::example();
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(3);
        let ds = generate_training_set(&arch, &fam, 60, 20, &mut rng).unwrap();
        let t_len = ds.target_len();
        for target in &ds.targets {
            assert!(target.iter().all(|&v| v.is_finite() && v >= 0.0));
            let cycles_rel = denormalize_meta_element(target[t_len - 2] as f64);
            let energy_rel = denormalize_meta_element(target[t_len - 1] as f64);
            assert!(cycles_rel >= 0.99, "cycles below lower bound: {cycles_rel}");
            assert!(energy_rel >= 0.99, "energy below lower bound: {energy_rel}");
        }
    }

    #[test]
    fn truncation_preserves_shape() {
        let arch = Architecture::example();
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(5);
        let ds = generate_training_set(&arch, &fam, 50, 10, &mut rng).unwrap();
        let small = ds.truncated(7);
        assert_eq!(small.len(), 7);
        assert_eq!(small.input_len(), ds.input_len());
        assert_eq!(small.num_dims, ds.num_dims);
    }

    #[test]
    fn lower_bound_reference_layout() {
        let arch = Architecture::example();
        let p = ProblemSpec::conv1d(64, 5);
        let r = lower_bound_reference(&arch, &p);
        assert_eq!(r.len(), 12);
        assert!(r.iter().all(|&v| v > 0.0));
        // Utilization denominator is exactly 1.
        assert_eq!(r[9], 1.0);
    }
}
