//! Adapter exposing the `mm-accel` cost model as an `mm-search`
//! [`Objective`], with query counting.
//!
//! The black-box baselines (SA, GA, RL) query this objective directly — one
//! query is one evaluation of the reference cost model, exactly the quantity
//! fixed by the iso-iteration comparison of Figure 5.

use mm_accel::CostModel;
use mm_mapspace::Mapping;
use mm_search::Objective;

/// The reference cost model as a search objective (EDP, in joule-seconds).
#[derive(Debug, Clone)]
pub struct CostModelObjective {
    model: CostModel,
    queries: u64,
    normalized: bool,
}

impl CostModelObjective {
    /// Objective returning absolute EDP in joule-seconds.
    pub fn new(model: CostModel) -> Self {
        CostModelObjective {
            model,
            queries: 0,
            normalized: false,
        }
    }

    /// Objective returning EDP normalized to the algorithmic minimum (the
    /// `y`-axis of Figures 5/6).
    pub fn normalized(model: CostModel) -> Self {
        CostModelObjective {
            model,
            queries: 0,
            normalized: true,
        }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

impl Objective for CostModelObjective {
    fn cost(&mut self, mapping: &Mapping) -> f64 {
        self.queries += 1;
        if self.normalized {
            self.model.normalized_edp(mapping)
        } else {
            self.model.edp(mapping)
        }
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::Architecture;
    use mm_mapspace::{Mapping, ProblemSpec};

    #[test]
    fn counts_queries_and_normalizes() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(128, 5);
        let model = CostModel::new(arch, problem.clone());
        let m = Mapping::minimal(&problem);

        let mut abs = CostModelObjective::new(model.clone());
        let mut norm = CostModelObjective::normalized(model.clone());
        let a = abs.cost(&m);
        let n = norm.cost(&m);
        assert_eq!(abs.queries(), 1);
        assert_eq!(norm.queries(), 1);
        assert!((n - a / model.lower_bound().edp).abs() / n < 1e-12);
        assert!(norm.model().problem().name.contains("conv1d"));
    }
}
