//! Phase 1, step 2: the differentiable surrogate `f*(m, p_id)`
//! (Section 4.1.2–4.1.3).
//!
//! The surrogate is an MLP whose input is the whitened
//! `problem-id ⊕ mapping` vector and whose output is the whitened,
//! lower-bound-normalized meta-statistics vector (per-level/per-tensor
//! energy, utilization, cycles, total energy). Because the MLP is
//! differentiable end-to-end, the gradient of the *predicted EDP* with
//! respect to the mapping values is available in closed form — that gradient
//! is what Phase 2 descends.

use mm_accel::{AlgorithmicMinimum, Architecture};
use mm_mapspace::{Encoding, Mapping, ProblemSpec};
use mm_nn::optim::Sgd;
use mm_nn::{Dataset, Mlp, Normalizer, TrainConfig, TrainHistory, Trainer};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::Phase1Config;
use crate::dataset::SurrogateDataset;
use crate::MindMappingsError;

/// A trained surrogate cost model for one (architecture, algorithm family)
/// pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Surrogate {
    mlp: Mlp,
    input_norm: Normalizer,
    output_norm: Normalizer,
    num_dims: usize,
    num_tensors: usize,
    arch: Architecture,
}

impl Surrogate {
    /// Train a surrogate on a generated dataset (Section 4.1: supervised
    /// regression with whitened inputs/outputs and — by default — the Huber
    /// loss and SGD with momentum).
    ///
    /// # Errors
    ///
    /// Returns [`MindMappingsError::Training`] if the dataset is empty.
    pub fn train<R: Rng>(
        arch: Architecture,
        dataset: &SurrogateDataset,
        config: &Phase1Config,
        rng: &mut R,
    ) -> Result<(Self, TrainHistory), MindMappingsError> {
        if dataset.is_empty() {
            return Err(MindMappingsError::Training {
                what: "empty dataset".to_string(),
            });
        }
        let input_norm = Normalizer::fit(&dataset.inputs);
        let output_norm = Normalizer::fit(&dataset.targets);
        let raw = Dataset::new(dataset.inputs.clone(), dataset.targets.clone()).map_err(|e| {
            MindMappingsError::Training {
                what: e.to_string(),
            }
        })?;
        let normalized = raw.normalized(&input_norm, &output_norm);

        let mut widths = Vec::with_capacity(config.hidden_layers.len() + 2);
        widths.push(dataset.input_len());
        widths.extend_from_slice(&config.hidden_layers);
        widths.push(dataset.target_len());
        let mut mlp = Mlp::new(&widths, rng);

        let mut trainer = Trainer::new(TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            test_fraction: config.test_fraction,
            lr_schedule: config.lr_schedule,
        });
        let mut optimizer = Sgd::new(config.learning_rate, config.momentum);
        let history = trainer.fit(&mut mlp, &normalized, &mut optimizer, config.loss, rng);

        Ok((
            Surrogate {
                mlp,
                input_norm,
                output_norm,
                num_dims: dataset.num_dims,
                num_tensors: dataset.num_tensors,
                arch,
            },
            history,
        ))
    }

    /// The architecture this surrogate models.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The trained MLP (read-only).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Number of problem dimensions of the family the surrogate was trained
    /// on.
    pub fn num_dims(&self) -> usize {
        self.num_dims
    }

    /// Number of tensors of the family.
    pub fn num_tensors(&self) -> usize {
        self.num_tensors
    }

    /// The encoding used for mapping vectors.
    pub fn encoding(&self) -> Encoding {
        Encoding {
            num_dims: self.num_dims,
            num_tensors: self.num_tensors,
        }
    }

    /// Check that `problem` has the same shape as the training family.
    ///
    /// # Errors
    ///
    /// Returns [`MindMappingsError::FamilyMismatch`] when the dimension or
    /// tensor counts differ.
    pub fn check_problem(&self, problem: &ProblemSpec) -> Result<(), MindMappingsError> {
        if problem.num_dims() != self.num_dims || problem.num_tensors() != self.num_tensors {
            return Err(MindMappingsError::FamilyMismatch {
                what: format!(
                    "surrogate trained for {} dims / {} tensors, problem '{}' has {} / {}",
                    self.num_dims,
                    self.num_tensors,
                    problem.name,
                    problem.num_dims(),
                    problem.num_tensors()
                ),
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Normalized-space encoding helpers used by Phase 2
    // ------------------------------------------------------------------

    /// Encode a mapping (plus problem id) into the surrogate's whitened input
    /// space.
    pub fn encode_normalized(&self, problem: &ProblemSpec, mapping: &Mapping) -> Vec<f32> {
        let raw = self.encoding().encode(problem, mapping);
        self.input_norm.transform(&raw)
    }

    /// Extract the raw (un-whitened) mapping portion of a whitened input
    /// vector; the result can be fed to
    /// [`MapSpace::project`](mm_mapspace::MapSpace::project).
    pub fn decode_normalized(&self, x_normalized: &[f32]) -> Vec<f32> {
        let raw = self.input_norm.inverse(x_normalized);
        raw[self.encoding().mapping_offset()..].to_vec()
    }

    // ------------------------------------------------------------------
    // Prediction
    // ------------------------------------------------------------------

    /// Predict the (de-normalized, lower-bound-relative) meta-statistics
    /// vector for a mapping.
    pub fn predict_meta(&self, problem: &ProblemSpec, mapping: &Mapping) -> Vec<f64> {
        let x = self.encode_normalized(problem, mapping);
        let z = self.mlp.predict(&x);
        self.output_norm
            .inverse(&z)
            .iter()
            .map(|&v| crate::dataset::denormalize_meta_element(v as f64))
            .collect()
    }

    /// Index of the relative-cycles output neuron.
    fn cycles_index(&self) -> usize {
        3 * self.num_tensors + 1
    }

    /// Index of the relative-total-energy output neuron.
    fn energy_index(&self) -> usize {
        3 * self.num_tensors + 2
    }

    /// Predicted EDP normalized to the problem's algorithmic minimum (the
    /// quantity Phase 2 minimizes, and the `y`-axis of Figures 5/6).
    pub fn predict_normalized_edp(&self, problem: &ProblemSpec, mapping: &Mapping) -> f64 {
        let x = self.encode_normalized(problem, mapping);
        self.predict_normalized_edp_from_input(&x)
    }

    /// Predicted absolute EDP in joule-seconds.
    pub fn predict_edp(&self, problem: &ProblemSpec, mapping: &Mapping) -> f64 {
        let lb = AlgorithmicMinimum::compute(&self.arch, problem);
        self.predict_normalized_edp(problem, mapping) * lb.edp
    }

    /// Predicted normalized EDP directly from a whitened input vector.
    pub fn predict_normalized_edp_from_input(&self, x_normalized: &[f32]) -> f64 {
        let (rel_energy, rel_cycles, _, _) = self.predict_energy_cycles(x_normalized);
        // EDP relative to the lower bound is the product of the relative
        // energy and relative delay.
        rel_energy * rel_cycles
    }

    /// Predicted normalized EDP for a whole batch of mappings in **one**
    /// forward pass ([`Mlp::predict_batch`]) — the surrogate's
    /// `evaluate_batch` fast path: one matrix traversal of the network
    /// instead of one per mapping.
    pub fn predict_normalized_edp_batch(
        &self,
        problem: &ProblemSpec,
        mappings: &[Mapping],
    ) -> Vec<f64> {
        let xs: Vec<Vec<f32>> = mappings
            .iter()
            .map(|m| self.encode_normalized(problem, m))
            .collect();
        self.mlp
            .predict_batch(&xs)
            .iter()
            .map(|z| {
                let (rel_energy, rel_cycles, _, _) = self.energy_cycles_from_output(z);
                rel_energy * rel_cycles
            })
            .collect()
    }

    /// Predicted lower-bound-relative energy and cycles plus the z-space
    /// standard deviations of the two output neurons (needed by the chain
    /// rule in [`normalized_edp_gradient`](Self::normalized_edp_gradient)).
    fn predict_energy_cycles(&self, x_normalized: &[f32]) -> (f64, f64, f64, f64) {
        let z = self.mlp.predict(x_normalized);
        self.energy_cycles_from_output(&z)
    }

    /// Decode one network-output row into lower-bound-relative energy and
    /// cycles (plus the z-space standard deviations of the two neurons).
    fn energy_cycles_from_output(&self, z: &[f32]) -> (f64, f64, f64, f64) {
        let ci = self.cycles_index();
        let ei = self.energy_index();
        // Invert z-scoring, then the ln(1 + x) target transform; clamp at a
        // small positive value since the network can extrapolate below zero
        // early in training.
        let log_cycles = self.output_norm.inverse_feature(ci, z[ci]) as f64;
        let log_energy = self.output_norm.inverse_feature(ei, z[ei]) as f64;
        let rel_cycles = crate::dataset::denormalize_meta_element(log_cycles).max(1e-6);
        let rel_energy = crate::dataset::denormalize_meta_element(log_energy).max(1e-6);
        let std_e = (self.output_norm.inverse_feature(ei, 1.0)
            - self.output_norm.inverse_feature(ei, 0.0)) as f64;
        let std_c = (self.output_norm.inverse_feature(ci, 1.0)
            - self.output_norm.inverse_feature(ci, 0.0)) as f64;
        (rel_energy, rel_cycles, std_e, std_c)
    }

    /// Gradient of the predicted normalized EDP with respect to the whitened
    /// input vector (problem id ⊕ mapping). Phase 2 only applies the mapping
    /// portion (the problem id is held fixed, Section 4.2).
    pub fn normalized_edp_gradient(&self, x_normalized: &[f32]) -> Vec<f32> {
        let ci = self.cycles_index();
        let ei = self.energy_index();
        let (rel_energy, rel_cycles, std_e, std_c) = self.predict_energy_cycles(x_normalized);
        // EDP = E · C with E = exp(std_E·z_E + mean_E) − 1 (and likewise C),
        // so dEDP/dz_E = C · std_E · (E + 1) and dEDP/dz_C = E · std_C · (C + 1).
        // Both terms are linear in the network output, so a single backward
        // pass with the combined output weights suffices.
        let mut weights = vec![0.0f32; self.mlp.output_dim()];
        weights[ei] = (rel_cycles * std_e * (rel_energy + 1.0)) as f32;
        weights[ci] = (rel_energy * std_c * (rel_cycles + 1.0)) as f32;
        self.mlp.input_gradient(x_normalized, &weights)
    }

    /// Mean-squared error of predicted vs. true normalized EDP over a set of
    /// labelled mappings — the surrogate-quality metric behind the "32.8×
    /// lower MSE" claim for the meta-statistics output representation.
    pub fn edp_mse(&self, samples: &[(ProblemSpec, Mapping, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (problem, mapping, true_normalized_edp) in samples {
            let pred = self.predict_normalized_edp(problem, mapping);
            let d = pred - true_normalized_edp;
            total += d * d;
        }
        total / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::generate_training_set;
    use mm_accel::CostModel;
    use mm_mapspace::MapSpace;
    use mm_workloads::conv1d::Conv1dFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_surrogate(seed: u64) -> (Surrogate, Architecture) {
        let arch = Architecture::example();
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate_training_set(&arch, &fam, 1500, 50, &mut rng).unwrap();
        let cfg = Phase1Config {
            num_samples: 1500,
            hidden_layers: vec![48, 48],
            epochs: 25,
            batch_size: 64,
            ..Phase1Config::quick()
        };
        let (s, hist) = Surrogate::train(arch.clone(), &ds, &cfg, &mut rng).unwrap();
        assert!(hist.final_train_loss().is_finite());
        (s, arch)
    }

    #[test]
    fn training_produces_finite_decreasing_loss() {
        let arch = Architecture::example();
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate_training_set(&arch, &fam, 800, 40, &mut rng).unwrap();
        let cfg = Phase1Config {
            hidden_layers: vec![32, 32],
            epochs: 15,
            ..Phase1Config::quick()
        };
        let (_s, hist) = Surrogate::train(arch, &ds, &cfg, &mut rng).unwrap();
        assert_eq!(hist.train_loss.len(), 15);
        assert!(hist.final_train_loss() < hist.train_loss[0]);
    }

    #[test]
    fn rejects_empty_dataset() {
        let arch = Architecture::example();
        let ds = SurrogateDataset {
            inputs: vec![],
            targets: vec![],
            num_dims: 2,
            num_tensors: 3,
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Surrogate::train(arch, &ds, &Phase1Config::quick(), &mut rng).is_err());
    }

    #[test]
    fn predictions_have_expected_shapes_and_signs() {
        let (s, arch) = quick_surrogate(2);
        let problem = ProblemSpec::conv1d(777, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(3);
        let m = space.random_mapping(&mut rng);
        let meta = s.predict_meta(&problem, &m);
        assert_eq!(meta.len(), 12);
        let edp = s.predict_normalized_edp(&problem, &m);
        assert!(edp.is_finite() && edp > 0.0);
        assert!(s.predict_edp(&problem, &m) > 0.0);
    }

    #[test]
    fn batch_prediction_matches_singles() {
        let (s, arch) = quick_surrogate(11);
        let problem = ProblemSpec::conv1d(640, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(12);
        let mappings: Vec<_> = (0..16).map(|_| space.random_mapping(&mut rng)).collect();
        let batched = s.predict_normalized_edp_batch(&problem, &mappings);
        assert_eq!(batched.len(), 16);
        for (m, b) in mappings.iter().zip(&batched) {
            assert_eq!(s.predict_normalized_edp(&problem, m), *b);
        }
        assert!(s.predict_normalized_edp_batch(&problem, &[]).is_empty());
    }

    #[test]
    fn surrogate_correlates_with_true_cost() {
        // The surrogate must rank mappings better than chance: across random
        // pairs, predicted ordering should agree with true ordering clearly
        // more than 50% of the time.
        let (s, arch) = quick_surrogate(4);
        let problem = ProblemSpec::conv1d(1024, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let mut agree = 0;
        let pairs = 150;
        for _ in 0..pairs {
            let a = space.random_mapping(&mut rng);
            let b = space.random_mapping(&mut rng);
            let true_order = model.edp(&a) < model.edp(&b);
            let pred_order =
                s.predict_normalized_edp(&problem, &a) < s.predict_normalized_edp(&problem, &b);
            if true_order == pred_order {
                agree += 1;
            }
        }
        let rate = agree as f64 / pairs as f64;
        assert!(rate > 0.6, "pairwise ranking agreement only {rate}");
    }

    #[test]
    fn gradient_matches_finite_difference_of_predicted_edp() {
        let (s, arch) = quick_surrogate(6);
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(7);
        let m = space.random_mapping(&mut rng);
        let x = s.encode_normalized(&problem, &m);
        let grad = s.normalized_edp_gradient(&x);
        assert_eq!(grad.len(), x.len());
        let base = s.predict_normalized_edp_from_input(&x);
        let eps = 1e-2f32;
        let mut checked = 0;
        for i in 0..x.len() {
            if grad[i].abs() < 1e-3 {
                continue;
            }
            let mut xp = x.clone();
            xp[i] += eps;
            let fd = (s.predict_normalized_edp_from_input(&xp) - base) / eps as f64;
            assert!(
                (fd - grad[i] as f64).abs() < 0.2 * (1.0 + grad[i].abs() as f64),
                "feature {i}: fd {fd} vs analytic {}",
                grad[i]
            );
            checked += 1;
            if checked > 5 {
                break;
            }
        }
        assert!(checked > 0, "no informative gradient entries found");
    }

    #[test]
    fn check_problem_rejects_wrong_family() {
        let (s, _) = quick_surrogate(8);
        let cnn = mm_workloads::cnn::CnnLayer::resnet_conv4().into_problem();
        assert!(s.check_problem(&cnn).is_err());
        assert!(s.check_problem(&ProblemSpec::conv1d(100, 3)).is_ok());
    }

    #[test]
    fn encode_decode_normalized_roundtrip() {
        let (s, arch) = quick_surrogate(9);
        let problem = ProblemSpec::conv1d(300, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(10);
        let m = space.random_mapping(&mut rng);
        let x = s.encode_normalized(&problem, &m);
        let raw_mapping = s.decode_normalized(&x);
        let enc = s.encoding();
        assert_eq!(raw_mapping.len(), enc.mapping_len());
        // Projecting the decoded vector must reproduce a valid mapping with
        // the same discrete structure.
        let m2 = space.project(&raw_mapping).unwrap();
        assert_eq!(m.tiles[0], m2.tiles[0]);
        assert_eq!(m.parallel, m2.parallel);
    }
}
