//! # mm-core — the Mind Mappings framework
//!
//! This crate implements the paper's primary contribution (*Mind Mappings:
//! Enabling Efficient Algorithm-Accelerator Mapping Space Search*, ASPLOS
//! 2021, Section 4): a two-phase, gradient-based mapping space search.
//!
//! * **Phase 1** ([`dataset`], [`surrogate`]): build a training set of
//!   `(mapping, problem-id, cost)` tuples by uniformly sampling valid
//!   mappings across a *family* of problems and labelling them with the
//!   reference cost model (`mm-accel`), then train a differentiable MLP
//!   surrogate `f*(m, p_id)` that predicts a vector of cost meta-statistics.
//! * **Phase 2** ([`gradient_search`]): starting from a random valid mapping,
//!   iteratively follow the surrogate's gradient with respect to the mapping
//!   (projected gradient descent), periodically injecting random mappings
//!   with a simulated-annealing-style acceptance rule to escape local minima.
//!
//! The [`MindMappings`] facade (module [`api`]) exposes the framework exactly
//! as Appendix B describes: `get_mapping`, `is_member`, `get_projection`, and
//! `search`.
//!
//! ```no_run
//! use mm_core::{MindMappings, Phase1Config, Phase2Config};
//! use mm_workloads::{cnn::CnnFamily, cnn::CnnLayer, evaluated_accelerator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let (mm, _history) = MindMappings::train(
//!     evaluated_accelerator(),
//!     &CnnFamily::default(),
//!     &Phase1Config::quick(),
//!     &mut rng,
//! ).unwrap();
//! let problem = CnnLayer::resnet_conv4().into_problem();
//! let trace = mm.search(&problem, 1000, &mut rng);
//! println!("best EDP found: {:.3e} J·s", trace.best_cost);
//! ```

pub mod api;
pub mod config;
pub mod dataset;
pub mod gradient_proposer;
pub mod gradient_search;
pub mod objective;
pub mod surrogate;

pub use api::MindMappings;
pub use config::{Phase1Config, Phase2Config};
pub use dataset::{generate_training_set, SurrogateDataset};
pub use gradient_proposer::GradientProposer;
pub use gradient_search::GradientSearch;
pub use objective::CostModelObjective;
pub use surrogate::Surrogate;

/// Errors produced by the Mind Mappings framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MindMappingsError {
    /// The surrogate was asked about a problem whose shape (number of
    /// dimensions / tensors) does not match the family it was trained on.
    FamilyMismatch {
        /// Description of the mismatch.
        what: String,
    },
    /// Training-set generation or training failed (e.g. zero samples).
    Training {
        /// Description of the failure.
        what: String,
    },
}

impl std::fmt::Display for MindMappingsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MindMappingsError::FamilyMismatch { what } => write!(f, "family mismatch: {what}"),
            MindMappingsError::Training { what } => write!(f, "training failed: {what}"),
        }
    }
}

impl std::error::Error for MindMappingsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(MindMappingsError::FamilyMismatch {
            what: "dims".into()
        }
        .to_string()
        .contains("dims"));
        assert!(MindMappingsError::Training { what: "0".into() }
            .to_string()
            .contains("0"));
    }
}
