//! Hyper-parameters for the two phases of Mind Mappings.
//!
//! The paper-scale defaults follow Sections 5.3/5.5 and Appendix A; the
//! `quick()` constructors are laptop-scale configurations (smaller network,
//! fewer samples) used by the examples, tests, and the default benchmark
//! harness, as documented in DESIGN.md and EXPERIMENTS.md.

use mm_nn::optim::StepLr;
use mm_nn::Loss;
use mm_search::SyncPolicy;
use serde::{Deserialize, Serialize};

/// Phase 1 (offline surrogate training) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase1Config {
    /// Number of `(mapping, problem, cost)` samples in the training set
    /// (the paper uses 10 M; `quick()` uses a few thousand).
    pub num_samples: usize,
    /// Number of mappings sampled per representative problem before a new
    /// problem is drawn from the family.
    pub mappings_per_problem: usize,
    /// Hidden-layer widths of the surrogate MLP (the paper uses
    /// `[64, 256, 1024, 2048, 2048, 1024, 256, 64]`).
    pub hidden_layers: Vec<usize>,
    /// Training epochs (the paper uses 100).
    pub epochs: usize,
    /// Mini-batch size (the paper uses 128).
    pub batch_size: usize,
    /// Initial learning rate (the paper uses 1e-2).
    pub learning_rate: f32,
    /// SGD momentum (the paper uses 0.9).
    pub momentum: f32,
    /// Learning-rate schedule (the paper decays ×0.1 every 25 epochs).
    pub lr_schedule: Option<StepLr>,
    /// Loss function (the paper selects Huber; see Figure 7b).
    pub loss: Loss,
    /// Held-out fraction for the test-loss curve of Figure 7a.
    pub test_fraction: f64,
}

impl Phase1Config {
    /// The paper-scale configuration (Section 5.5). Training this takes hours
    /// of CPU time; use [`Phase1Config::quick`] for interactive runs.
    pub fn paper_scale() -> Self {
        Phase1Config {
            num_samples: 10_000_000,
            mappings_per_problem: 1000,
            hidden_layers: vec![64, 256, 1024, 2048, 2048, 1024, 256, 64],
            epochs: 100,
            batch_size: 128,
            learning_rate: 1e-2,
            momentum: 0.9,
            lr_schedule: Some(StepLr {
                every_epochs: 25,
                gamma: 0.1,
            }),
            loss: Loss::Huber { delta: 1.0 },
            test_fraction: 0.05,
        }
    }

    /// A laptop-scale configuration: a few thousand samples and a small MLP,
    /// enough for the surrogate to be clearly better than chance and for the
    /// end-to-end pipeline to run in seconds.
    pub fn quick() -> Self {
        Phase1Config {
            num_samples: 4000,
            mappings_per_problem: 50,
            hidden_layers: vec![64, 128, 64],
            epochs: 30,
            batch_size: 64,
            learning_rate: 5e-3,
            momentum: 0.9,
            lr_schedule: Some(StepLr {
                every_epochs: 10,
                gamma: 0.3,
            }),
            loss: Loss::Huber { delta: 1.0 },
            test_fraction: 0.1,
        }
    }

    /// A medium configuration used by the benchmark harness by default.
    pub fn default_experiment() -> Self {
        Phase1Config {
            num_samples: 20_000,
            mappings_per_problem: 100,
            hidden_layers: vec![64, 256, 256, 64],
            epochs: 40,
            batch_size: 128,
            learning_rate: 1e-2,
            momentum: 0.9,
            lr_schedule: Some(StepLr {
                every_epochs: 15,
                gamma: 0.1,
            }),
            loss: Loss::Huber { delta: 1.0 },
            test_fraction: 0.1,
        }
    }
}

impl Default for Phase1Config {
    fn default() -> Self {
        Self::default_experiment()
    }
}

/// Phase 2 (online gradient search) configuration. Defaults follow
/// Appendix A: learning rate 1 (no decay), random injection every 10
/// iterations, initial acceptance temperature 50 annealed by ×0.75 every 50
/// injections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase2Config {
    /// Gradient-descent learning rate in normalized input space.
    pub learning_rate: f32,
    /// Normalize the gradient to unit L2 norm before stepping (keeps the
    /// step size meaningful across problems of very different cost scales).
    pub normalize_gradient: bool,
    /// Inject a random valid mapping every this many iterations.
    pub injection_interval: u64,
    /// Initial acceptance temperature for random injections.
    pub initial_temperature: f64,
    /// Multiplicative temperature decay factor.
    pub temperature_decay: f64,
    /// Number of injections between temperature decays.
    pub decay_every_injections: u64,
    /// Number of pairwise-disjoint map-space shards the online search covers
    /// (`MapSpace::shard`): 1 (the default) searches the full space with one
    /// trajectory; `n > 1` splits the iteration budget exactly across `n`
    /// disjoint shards, each searched by its own trajectory, for provably
    /// non-overlapping coverage. Clamped to the space's `shard_capacity`.
    pub shards: usize,
    /// How shard trajectories re-anchor on the incumbent best
    /// ([`SyncPolicy::Off`], the default: fully independent trajectories).
    /// With `shards > 1` the policy is consulted before each trajectory
    /// after the first: it may hand the running best mapping to the next
    /// shard's [`GradientProposer`](crate::GradientProposer) as its
    /// starting anchor (`Adopt`) or as a reseeded warm restart (`Restart`,
    /// which also resets the injection temperature schedule).
    pub sync: SyncPolicy,
    /// Horizon-compressed injection schedule (off by default): compress
    /// the annealed-injection temperature schedule into the evaluation
    /// horizon the driver begins each trajectory with — the exact
    /// per-shard budget share under the sharded Phase-2 search, or the
    /// shard-scaled hint (`MapSpaceView::horizon_hint`) when an
    /// orchestrator's own `shard_horizon` knob supplies one — instead of
    /// annealing at the fixed full-space cadence.
    pub shard_horizon: bool,
}

impl Default for Phase2Config {
    fn default() -> Self {
        Phase2Config {
            learning_rate: 1.0,
            normalize_gradient: true,
            injection_interval: 10,
            initial_temperature: 50.0,
            temperature_decay: 0.75,
            decay_every_injections: 50,
            shards: 1,
            sync: SyncPolicy::Off,
            shard_horizon: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_5_5() {
        let c = Phase1Config::paper_scale();
        assert_eq!(c.num_samples, 10_000_000);
        assert_eq!(
            c.hidden_layers,
            vec![64, 256, 1024, 2048, 2048, 1024, 256, 64]
        );
        assert_eq!(c.epochs, 100);
        assert_eq!(c.batch_size, 128);
        assert!((c.learning_rate - 1e-2).abs() < 1e-9);
        assert_eq!(c.lr_schedule.unwrap().every_epochs, 25);
    }

    #[test]
    fn phase2_defaults_match_appendix_a() {
        let c = Phase2Config::default();
        assert!((c.learning_rate - 1.0).abs() < 1e-9);
        assert_eq!(c.injection_interval, 10);
        assert!((c.initial_temperature - 50.0).abs() < 1e-9);
        assert!((c.temperature_decay - 0.75).abs() < 1e-9);
        assert_eq!(c.decay_every_injections, 50);
        assert_eq!(c.shards, 1, "sharding is off by default");
        assert_eq!(c.sync, SyncPolicy::Off, "sync is off by default");
        assert!(!c.shard_horizon, "horizon hints are off by default");
    }

    #[test]
    fn quick_config_is_small() {
        let c = Phase1Config::quick();
        assert!(c.num_samples <= 10_000);
        assert!(c.hidden_layers.iter().all(|&w| w <= 256));
    }
}
