//! [`GradientProposer`]: the Phase-2 gradient search as a stepwise
//! [`ProposalSearch`], for use with `mm-mapper`'s parallel orchestration.
//!
//! The monolithic [`GradientSearch`](crate::GradientSearch) owns its loop
//! and queries only the surrogate; true costs are filled in afterwards. The
//! proposer inverts that control: every [`propose`](ProposalSearch::propose)
//! call advances the surrogate-side trajectory (gradient step → projection →
//! periodic annealed random injection, exactly as Section 4.2 describes) and
//! emits the visited mappings as proposals for the orchestrator to evaluate
//! against the reference cost model.
//!
//! Crucially, the trajectory *never* depends on the reported true costs —
//! matching the paper's methodology, where the reference model only scores
//! visited mappings offline. That makes the gradient proposer the ideal
//! pipelining citizen: proposals can run arbitrarily far ahead of pending
//! evaluations ([`ProposalSearch::lookahead`] is large), keeping every
//! evaluation worker busy.

use mm_mapspace::{MapSpaceView, Mapping, ProblemSpec};
use mm_search::{ProposalBuf, ProposalSearch, SyncAction};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::Phase2Config;
use crate::surrogate::Surrogate;
use crate::MindMappingsError;

/// The live trajectory state of one run.
#[derive(Debug, Clone)]
struct TrajectoryState {
    /// Whitened input vector at the current point.
    x: Vec<f32>,
    /// Current (valid, projected) mapping.
    current: Mapping,
    /// Whether the initial mapping has been proposed yet.
    proposed_initial: bool,
    temperature: f64,
    injections: u64,
    iteration: u64,
    /// Injections between temperature decays for *this* run: the config
    /// value, or its horizon-compressed version when
    /// [`Phase2Config::shard_horizon`] applies (see
    /// [`ProposalSearch::begin`]).
    decay_every: u64,
}

/// Temperature decays the compressed injection schedule targets within a
/// hinted horizon: `0.75^16 ≈ 1%` of the initial temperature, the
/// effective end of the default annealing schedule.
const TARGET_DECAYS: u64 = 16;

/// The Phase-2 gradient search as a stepwise proposal source.
#[derive(Debug, Clone)]
pub struct GradientProposer {
    surrogate: Surrogate,
    problem: ProblemSpec,
    config: Phase2Config,
    state: Option<TrajectoryState>,
    /// An incumbent observed before [`ProposalSearch::begin`]: the next
    /// trajectory starts from it instead of a random mapping (used by the
    /// sequential sharded Phase-2 search to warm-start shard `s+1` on the
    /// best of shards `0..=s`).
    pending_anchor: Option<Mapping>,
}

impl GradientProposer {
    /// Create a proposer for `problem` using a trained `surrogate`.
    ///
    /// The surrogate is cloned in, so the proposer is `Send` and each mapper
    /// thread can own one.
    ///
    /// # Errors
    ///
    /// Returns [`MindMappingsError::FamilyMismatch`] if the problem's shape
    /// does not match the family the surrogate was trained on.
    pub fn new(
        surrogate: &Surrogate,
        problem: ProblemSpec,
        config: Phase2Config,
    ) -> Result<Self, MindMappingsError> {
        surrogate.check_problem(&problem)?;
        Ok(GradientProposer {
            surrogate: surrogate.clone(),
            problem,
            config,
            state: None,
            pending_anchor: None,
        })
    }

    /// Advance the surrogate trajectory by one iteration and return the
    /// resulting (projected, valid) mapping.
    fn step(&mut self, space: &dyn MapSpaceView, rng: &mut StdRng) -> Mapping {
        let cfg = &self.config;
        // mm-lint: allow(panic): calling the strategy outside a begin()
        // session is a driver bug, not a recoverable state.
        let state = self.state.as_mut().expect("begin() not called");
        state.iteration += 1;
        let mapping_offset = self.surrogate.encoding().mapping_offset();

        // Gradient of the surrogate's predicted cost w.r.t. the mapping.
        let mut grad = self.surrogate.normalized_edp_gradient(&state.x);
        // The problem id is held constant (Section 4.2): zero its gradient.
        for g in grad.iter_mut().take(mapping_offset) {
            *g = 0.0;
        }
        if cfg.normalize_gradient {
            let norm: f32 = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for g in &mut grad {
                    *g /= norm;
                }
            }
        }
        // Step in whitened space, then project back onto the map space.
        for (xi, gi) in state.x.iter_mut().zip(&grad) {
            *xi -= cfg.learning_rate * gi;
        }
        let raw = self.surrogate.decode_normalized(&state.x);
        state.current = space
            .project(&raw)
            .unwrap_or_else(|_| space.random_mapping(rng));
        state.x = self
            .surrogate
            .encode_normalized(&self.problem, &state.current);
        let projected_pred = self.surrogate.predict_normalized_edp_from_input(&state.x);

        // Periodic random injection with annealed acceptance (Appendix A).
        if cfg.injection_interval > 0 && state.iteration.is_multiple_of(cfg.injection_interval) {
            let candidate = space.random_mapping(rng);
            let cand_x = self.surrogate.encode_normalized(&self.problem, &candidate);
            let cand_pred = self.surrogate.predict_normalized_edp_from_input(&cand_x);
            let accept = cand_pred <= projected_pred || {
                let delta = cand_pred - projected_pred;
                rng.gen_range(0.0..1.0) < (-delta / state.temperature.max(1e-12)).exp()
            };
            if accept {
                state.current = candidate;
                state.x = cand_x;
            }
            state.injections += 1;
            if state.decay_every > 0 && state.injections.is_multiple_of(state.decay_every) {
                state.temperature *= cfg.temperature_decay;
            }
        }
        state.current.clone()
    }
}

impl ProposalSearch for GradientProposer {
    fn name(&self) -> &str {
        "MM"
    }

    fn begin(&mut self, space: &dyn MapSpaceView, horizon: Option<u64>, rng: &mut StdRng) {
        assert_eq!(
            (space.problem().num_dims(), space.problem().num_tensors()),
            (self.problem.num_dims(), self.problem.num_tensors()),
            "map space problem shape does not match the proposer's problem"
        );
        // Horizon-compressed injection schedule: ~TARGET_DECAYS temperature
        // decays land within the horizon the driver begun us with, instead
        // of annealing at the fixed cadence a full-space run would use. The
        // horizon is used *as handed over* — a driver with its own
        // `shard_horizon` knob (Mapper, serve scheduler) already passes the
        // shard-scaled hint, so scaling exactly once stays the driver's
        // job. Off by default (and inert when decay is disabled), so
        // un-hinted runs are bit-identical to before.
        let decay_every = match horizon {
            Some(h) if self.config.shard_horizon && self.config.decay_every_injections > 0 => {
                let injections = (h / self.config.injection_interval.max(1)).max(1);
                (injections / TARGET_DECAYS).max(1)
            }
            _ => self.config.decay_every_injections,
        };
        // Start from a stashed incumbent when a sync policy handed one
        // over before the run. The incumbent may come from another shard's
        // disjoint slice, and the first proposal is emitted verbatim — so
        // repair pins the anchor into this view before it seeds the
        // trajectory (later steps stay in-shard via `space.project`).
        let current = match self.pending_anchor.take() {
            Some(mut anchor) => {
                space.repair(&mut anchor);
                anchor
            }
            None => space.random_mapping(rng),
        };
        let x = self.surrogate.encode_normalized(&self.problem, &current);
        self.state = Some(TrajectoryState {
            x,
            current,
            proposed_initial: false,
            temperature: self.config.initial_temperature,
            injections: 0,
            iteration: 0,
            decay_every,
        });
    }

    /// The trajectory is independent of reported costs, so proposals can run
    /// far ahead of evaluations.
    fn lookahead(&self) -> usize {
        1024
    }

    fn propose(
        &mut self,
        space: &dyn MapSpaceView,
        rng: &mut StdRng,
        max: usize,
        out: &mut ProposalBuf,
    ) {
        {
            // mm-lint: allow(panic): see step() — outside-session calls are
            // driver bugs.
            let state = self.state.as_mut().expect("begin() not called");
            if !state.proposed_initial {
                state.proposed_initial = true;
                out.push(state.current.clone());
            }
        }
        // One surrogate iteration per proposal; skip consecutive duplicates
        // (a rounded-back gradient step) up to a bounded number of retries
        // so stuck trajectories still emit.
        let mut retries = 0usize;
        while out.len() < max.max(1) && retries < 4 * max.max(1) {
            let before = self
                .state
                .as_ref()
                // mm-lint: allow(panic): see step() — outside-session calls
                // are driver bugs.
                .expect("begin() not called")
                .current
                .clone();
            let next = self.step(space, rng);
            if next != before || out.is_empty() {
                out.push(next);
            } else {
                retries += 1;
            }
        }
    }

    /// True costs never steer the surrogate trajectory (paper methodology);
    /// best-so-far tracking lives in the orchestrator.
    fn report(&mut self, _mapping: &Mapping, _cost: f64, _rng: &mut StdRng) {}

    /// Re-anchor the trajectory on the incumbent: the current point (and
    /// its whitened encoding) jump to `mapping`, and
    /// [`SyncAction::Restart`] additionally resets the annealed-injection
    /// temperature schedule so the reseeded trajectory regains its early
    /// acceptance mobility. Observed before [`begin`](ProposalSearch::begin),
    /// the incumbent is stashed and becomes the next run's starting point
    /// (repaired into that run's view, which may be a different shard).
    fn observe_global_best(
        &mut self,
        _space: &dyn MapSpaceView,
        mapping: &Mapping,
        _cost: f64,
        action: SyncAction,
        _rng: &mut StdRng,
    ) {
        let initial_temperature = self.config.initial_temperature;
        match self.state.as_mut() {
            Some(state) => {
                state.current = mapping.clone();
                state.x = self.surrogate.encode_normalized(&self.problem, mapping);
                if action == SyncAction::Restart {
                    state.temperature = initial_temperature;
                    state.injections = 0;
                }
            }
            None => self.pending_anchor = Some(mapping.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Phase1Config;
    use crate::dataset::generate_training_set;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::MapSpace;
    use mm_search::{drive, Budget, FnObjective};
    use mm_workloads::conv1d::Conv1dFamily;
    use rand::SeedableRng;

    fn surrogate(seed: u64) -> Surrogate {
        let arch = Architecture::example();
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate_training_set(&arch, &fam, 1500, 50, &mut rng).unwrap();
        let cfg = Phase1Config {
            hidden_layers: vec![48, 48],
            epochs: 25,
            batch_size: 64,
            ..Phase1Config::quick()
        };
        Surrogate::train(arch, &ds, &cfg, &mut rng).unwrap().0
    }

    #[test]
    fn rejects_problems_from_another_family() {
        let s = surrogate(0);
        let cnn = mm_workloads::cnn::CnnLayer::alexnet_conv4().into_problem();
        assert!(GradientProposer::new(&s, cnn, Phase2Config::default()).is_err());
    }

    #[test]
    fn proposals_are_valid_and_batch_ahead() {
        let s = surrogate(1);
        let problem = mm_mapspace::ProblemSpec::conv1d(900, 7);
        let space = MapSpace::new(problem.clone(), s.arch().mapping_constraints());
        let mut gp = GradientProposer::new(&s, problem, Phase2Config::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        gp.begin(&space, None, &mut rng);
        let mut buf = ProposalBuf::new();
        gp.propose(&space, &mut rng, 32, &mut buf);
        assert!(!buf.is_empty(), "gradient proposer always makes progress");
        assert!(buf.len() <= 32);
        assert!(buf.iter().all(|m| space.is_member(m)));
        // No reports were needed to keep proposing: trajectory independence.
        buf.clear();
        gp.propose(&space, &mut rng, 32, &mut buf);
        assert!(!buf.is_empty());
    }

    #[test]
    fn shard_horizon_compresses_the_injection_schedule() {
        let s = surrogate(5);
        let problem = mm_mapspace::ProblemSpec::conv1d(900, 7);
        let space = MapSpace::new(problem.clone(), s.arch().mapping_constraints());
        let shard = space.shard(0, 4);
        let mut rng = StdRng::seed_from_u64(6);

        // Default cadence: 50 injections per decay regardless of horizon.
        let mut gp = GradientProposer::new(&s, problem.clone(), Phase2Config::default()).unwrap();
        gp.begin(&shard, Some(320), &mut rng);
        assert_eq!(gp.state.as_ref().unwrap().decay_every, 50);

        // Compressed: a 320-eval horizon (as handed by the driver — raw
        // share or an orchestrator's shard-scaled hint) fits the whole
        // ~16-decay schedule into the run: 320/10 injections / 16 = 2.
        let cfg = Phase2Config {
            shard_horizon: true,
            ..Phase2Config::default()
        };
        let mut gp = GradientProposer::new(&s, problem.clone(), cfg).unwrap();
        gp.begin(&shard, Some(320), &mut rng);
        let compressed = gp.state.as_ref().unwrap().decay_every;
        assert_eq!(compressed, 2, "cadence must compress to the horizon");
        // Disabled decay stays disabled.
        let cfg = Phase2Config {
            shard_horizon: true,
            decay_every_injections: 0,
            ..Phase2Config::default()
        };
        let mut gp = GradientProposer::new(&s, problem, cfg).unwrap();
        gp.begin(&shard, Some(320), &mut rng);
        assert_eq!(gp.state.as_ref().unwrap().decay_every, 0);
    }

    #[test]
    fn driven_gradient_search_beats_average_random_mapping() {
        let s = surrogate(3);
        let problem = mm_mapspace::ProblemSpec::conv1d(1200, 5);
        let space = MapSpace::new(problem.clone(), s.arch().mapping_constraints());
        let model = CostModel::new(s.arch().clone(), problem.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let mut mean = 0.0;
        let n = 30;
        for _ in 0..n {
            mean += model.edp(&space.random_mapping(&mut rng));
        }
        mean /= n as f64;

        let mut gp = GradientProposer::new(&s, problem, Phase2Config::default()).unwrap();
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let trace = drive(&mut gp, &space, &mut obj, Budget::iterations(400), &mut rng);
        assert_eq!(trace.method, "MM");
        assert!(
            trace.best_cost < mean,
            "MM proposer ({}) did not beat the random-mapping mean ({mean})",
            trace.best_cost
        );
        assert!(space.is_member(trace.best_mapping.as_ref().unwrap()));
    }
}
