//! The Mind Mappings API (Appendix B): a facade intended to be embedded in
//! compilers/frameworks targeting a specialized accelerator.
//!
//! The API requires three routines from the map space — `getMapping`,
//! `isMember`, and `getProjection` — all of which are provided by
//! `mm-mapspace` and re-exposed here per problem, plus the two-phase search
//! itself: [`MindMappings::train`] (Phase 1, offline, once per
//! algorithm-accelerator pair) and [`MindMappings::search`] /
//! [`MindMappings::best_mapping`] (Phase 2, online, per target problem).

use mm_accel::{Architecture, CostModel};
use mm_mapspace::problem::ProblemFamily;
use mm_mapspace::{MapSpace, Mapping, ProblemSpec};
use mm_nn::TrainHistory;
use mm_search::{Budget, SearchTrace};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::{Phase1Config, Phase2Config};
use crate::dataset::generate_training_set;
use crate::gradient_search::GradientSearch;
use crate::surrogate::Surrogate;
use crate::MindMappingsError;

/// The Mind Mappings optimization framework for one
/// (accelerator, algorithm family) pair.
#[derive(Debug, Clone)]
pub struct MindMappings {
    arch: Architecture,
    surrogate: Surrogate,
    phase2: Phase2Config,
}

impl MindMappings {
    /// Phase 1: generate a training set for `family` on `arch` and train the
    /// differentiable surrogate. Performed offline, once per target
    /// algorithm (Section 4.1); the returned history contains the train/test
    /// loss curves of Figure 7a.
    ///
    /// # Errors
    ///
    /// Returns an error if the training-set size is zero or training fails.
    pub fn train<F: ProblemFamily + ?Sized, R: Rng>(
        arch: Architecture,
        family: &F,
        config: &Phase1Config,
        rng: &mut R,
    ) -> Result<(Self, TrainHistory), MindMappingsError> {
        let dataset = generate_training_set(
            &arch,
            family,
            config.num_samples,
            config.mappings_per_problem,
            rng,
        )?;
        let (surrogate, history) = Surrogate::train(arch.clone(), &dataset, config, rng)?;
        Ok((
            MindMappings {
                arch,
                surrogate,
                phase2: Phase2Config::default(),
            },
            history,
        ))
    }

    /// Build a framework instance from an already-trained surrogate (e.g.
    /// one trained with a custom dataset), with the given Phase-2
    /// configuration.
    pub fn from_surrogate(surrogate: Surrogate, phase2: Phase2Config) -> Self {
        MindMappings {
            arch: surrogate.arch().clone(),
            surrogate,
            phase2,
        }
    }

    /// The accelerator this framework targets.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The trained surrogate.
    pub fn surrogate(&self) -> &Surrogate {
        &self.surrogate
    }

    /// The Phase-2 configuration.
    pub fn phase2_config(&self) -> &Phase2Config {
        &self.phase2
    }

    /// Replace the Phase-2 configuration.
    pub fn set_phase2_config(&mut self, config: Phase2Config) {
        self.phase2 = config;
    }

    /// The map space of `problem` on this accelerator.
    pub fn map_space(&self, problem: &ProblemSpec) -> MapSpace {
        MapSpace::new(problem.clone(), self.arch.mapping_constraints())
    }

    /// `getMapping`: a uniformly random valid mapping for `problem`.
    pub fn get_mapping<R: Rng>(&self, problem: &ProblemSpec, rng: &mut R) -> Mapping {
        self.map_space(problem).random_mapping(rng)
    }

    /// `isMember`: whether `mapping` is valid for `problem` on this
    /// accelerator.
    pub fn is_member(&self, problem: &ProblemSpec, mapping: &Mapping) -> bool {
        self.map_space(problem).is_member(mapping)
    }

    /// `getProjection`: the nearest valid mapping to an arbitrary encoded
    /// mapping vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector length does not match the problem's
    /// encoding.
    pub fn get_projection(
        &self,
        problem: &ProblemSpec,
        mapping_values: &[f32],
    ) -> Result<Mapping, mm_mapspace::MapSpaceError> {
        self.map_space(problem).project(mapping_values)
    }

    /// Phase 2 with full instrumentation: run the gradient search for
    /// `iterations` surrogate queries and return a trace whose costs are true
    /// EDPs (evaluated with the reference cost model after the timed loop).
    ///
    /// # Panics
    ///
    /// Panics if `problem` does not belong to the family the surrogate was
    /// trained for; use [`GradientSearch::new`] directly for a fallible
    /// variant.
    pub fn search(&self, problem: &ProblemSpec, iterations: u64, rng: &mut StdRng) -> SearchTrace {
        let gs = GradientSearch::new(&self.surrogate, problem.clone(), self.phase2)
            .expect("problem must belong to the surrogate's family");
        let evaluator = CostModel::new(self.arch.clone(), problem.clone());
        gs.run(Budget::iterations(iterations), &evaluator, rng)
    }

    /// Phase 2 with an arbitrary budget (iteration- and/or time-limited).
    ///
    /// # Errors
    ///
    /// Returns an error if the problem does not match the surrogate's family.
    pub fn search_with_budget(
        &self,
        problem: &ProblemSpec,
        budget: Budget,
        rng: &mut StdRng,
    ) -> Result<SearchTrace, MindMappingsError> {
        let gs = GradientSearch::new(&self.surrogate, problem.clone(), self.phase2)?;
        let evaluator = CostModel::new(self.arch.clone(), problem.clone());
        Ok(gs.run(budget, &evaluator, rng))
    }

    /// Deployment-mode Phase 2: return only the best mapping found, never
    /// touching the reference cost model (pure surrogate-guided search).
    ///
    /// # Errors
    ///
    /// Returns an error if the problem does not match the surrogate's family.
    pub fn best_mapping(
        &self,
        problem: &ProblemSpec,
        budget: Budget,
        rng: &mut StdRng,
    ) -> Result<Mapping, MindMappingsError> {
        let gs = GradientSearch::new(&self.surrogate, problem.clone(), self.phase2)?;
        Ok(gs.best_mapping(budget, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::Architecture;
    use mm_workloads::conv1d::Conv1dFamily;
    use rand::SeedableRng;

    fn quick_framework(seed: u64) -> MindMappings {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Phase1Config {
            num_samples: 1500,
            mappings_per_problem: 50,
            hidden_layers: vec![48, 48],
            epochs: 20,
            batch_size: 64,
            ..Phase1Config::quick()
        };
        MindMappings::train(
            Architecture::example(),
            &Conv1dFamily::default(),
            &cfg,
            &mut rng,
        )
        .unwrap()
        .0
    }

    #[test]
    fn api_routines_work_end_to_end() {
        let mm = quick_framework(11);
        let problem = ProblemSpec::conv1d(640, 5);
        let mut rng = StdRng::seed_from_u64(12);

        // getMapping / isMember
        let m = mm.get_mapping(&problem, &mut rng);
        assert!(mm.is_member(&problem, &m));

        // getProjection of random noise
        let enc = mm.surrogate().encoding();
        let noise: Vec<f32> = (0..enc.mapping_len())
            .map(|i| i as f32 * 3.7 - 10.0)
            .collect();
        let projected = mm.get_projection(&problem, &noise).unwrap();
        assert!(mm.is_member(&problem, &projected));

        // Phase 2 search
        let trace = mm.search(&problem, 200, &mut rng);
        assert!(trace.best_cost.is_finite() && trace.best_cost > 0.0);
        assert_eq!(trace.method, "MM");

        // Deployment mode
        let best = mm
            .best_mapping(&problem, Budget::iterations(100), &mut rng)
            .unwrap();
        assert!(mm.is_member(&problem, &best));
    }

    #[test]
    fn search_with_budget_rejects_foreign_family() {
        let mm = quick_framework(13);
        let cnn = mm_workloads::cnn::CnnLayer::resnet_conv3().into_problem();
        let mut rng = StdRng::seed_from_u64(14);
        assert!(mm
            .search_with_budget(&cnn, Budget::iterations(10), &mut rng)
            .is_err());
    }

    #[test]
    fn phase2_config_roundtrip() {
        let mut mm = quick_framework(15);
        let cfg = Phase2Config {
            learning_rate: 0.5,
            ..Phase2Config::default()
        };
        mm.set_phase2_config(cfg);
        assert!((mm.phase2_config().learning_rate - 0.5).abs() < 1e-9);
        assert_eq!(mm.arch().num_pes, 16);
    }
}
