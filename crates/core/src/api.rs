//! The Mind Mappings API (Appendix B): a facade intended to be embedded in
//! compilers/frameworks targeting a specialized accelerator.
//!
//! The API requires three routines from the map space — `getMapping`,
//! `isMember`, and `getProjection` — all of which are provided by
//! `mm-mapspace` and re-exposed here per problem, plus the two-phase search
//! itself: [`MindMappings::train`] (Phase 1, offline, once per
//! algorithm-accelerator pair) and [`MindMappings::search`] /
//! [`MindMappings::best_mapping`] (Phase 2, online, per target problem).

use mm_accel::{Architecture, CostModel};
use mm_mapspace::problem::ProblemFamily;
use mm_mapspace::{MapSpace, Mapping, ProblemSpec};
use mm_nn::TrainHistory;
use mm_search::{drive, split_evenly, Budget, FnObjective, SearchTrace, TracePoint};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::{Phase1Config, Phase2Config};
use crate::dataset::generate_training_set;
use crate::gradient_search::GradientSearch;
use crate::surrogate::Surrogate;
use crate::MindMappingsError;

/// The Mind Mappings optimization framework for one
/// (accelerator, algorithm family) pair.
#[derive(Debug, Clone)]
pub struct MindMappings {
    arch: Architecture,
    surrogate: Surrogate,
    phase2: Phase2Config,
}

impl MindMappings {
    /// Phase 1: generate a training set for `family` on `arch` and train the
    /// differentiable surrogate. Performed offline, once per target
    /// algorithm (Section 4.1); the returned history contains the train/test
    /// loss curves of Figure 7a.
    ///
    /// # Errors
    ///
    /// Returns an error if the training-set size is zero or training fails.
    pub fn train<F: ProblemFamily + ?Sized, R: Rng>(
        arch: Architecture,
        family: &F,
        config: &Phase1Config,
        rng: &mut R,
    ) -> Result<(Self, TrainHistory), MindMappingsError> {
        let dataset = generate_training_set(
            &arch,
            family,
            config.num_samples,
            config.mappings_per_problem,
            rng,
        )?;
        let (surrogate, history) = Surrogate::train(arch.clone(), &dataset, config, rng)?;
        Ok((
            MindMappings {
                arch,
                surrogate,
                phase2: Phase2Config::default(),
            },
            history,
        ))
    }

    /// Build a framework instance from an already-trained surrogate (e.g.
    /// one trained with a custom dataset), with the given Phase-2
    /// configuration.
    pub fn from_surrogate(surrogate: Surrogate, phase2: Phase2Config) -> Self {
        MindMappings {
            arch: surrogate.arch().clone(),
            surrogate,
            phase2,
        }
    }

    /// The accelerator this framework targets.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The trained surrogate.
    pub fn surrogate(&self) -> &Surrogate {
        &self.surrogate
    }

    /// The Phase-2 configuration.
    pub fn phase2_config(&self) -> &Phase2Config {
        &self.phase2
    }

    /// Replace the Phase-2 configuration.
    pub fn set_phase2_config(&mut self, config: Phase2Config) {
        self.phase2 = config;
    }

    /// The map space of `problem` on this accelerator.
    pub fn map_space(&self, problem: &ProblemSpec) -> MapSpace {
        MapSpace::new(problem.clone(), self.arch.mapping_constraints())
    }

    /// `getMapping`: a uniformly random valid mapping for `problem`.
    pub fn get_mapping<R: Rng>(&self, problem: &ProblemSpec, rng: &mut R) -> Mapping {
        self.map_space(problem).random_mapping(rng)
    }

    /// `isMember`: whether `mapping` is valid for `problem` on this
    /// accelerator.
    pub fn is_member(&self, problem: &ProblemSpec, mapping: &Mapping) -> bool {
        self.map_space(problem).is_member(mapping)
    }

    /// `getProjection`: the nearest valid mapping to an arbitrary encoded
    /// mapping vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector length does not match the problem's
    /// encoding.
    pub fn get_projection(
        &self,
        problem: &ProblemSpec,
        mapping_values: &[f32],
    ) -> Result<Mapping, mm_mapspace::MapSpaceError> {
        self.map_space(problem).project(mapping_values)
    }

    /// Phase 2 with full instrumentation: run the gradient search for
    /// `iterations` surrogate queries and return a trace whose costs are true
    /// EDPs (evaluated with the reference cost model after the timed loop).
    ///
    /// When [`Phase2Config::shards`] is greater than 1, the iteration budget
    /// is split exactly across that many pairwise-disjoint map-space shards
    /// ([`MapSpace::shard`]), each searched by its own gradient trajectory;
    /// the per-shard traces are merged in shard order.
    ///
    /// # Panics
    ///
    /// Panics if `problem` does not belong to the family the surrogate was
    /// trained for; use [`GradientSearch::new`] directly for a fallible
    /// variant.
    pub fn search(&self, problem: &ProblemSpec, iterations: u64, rng: &mut StdRng) -> SearchTrace {
        self.search_with_budget(problem, Budget::iterations(iterations), rng)
            // mm-lint: allow(panic): documented contract — the fallible
            // variant is `GradientSearch::new`, per the doc comment above.
            .expect("problem must belong to the surrogate's family")
    }

    /// The effective shard count for `space` under this framework's
    /// [`Phase2Config::shards`] knob.
    fn effective_shards(&self, space: &MapSpace) -> usize {
        space.clamp_shard_count(self.phase2.shards.max(1))
    }

    /// The per-shard slice of `budget`: queries split exactly via
    /// [`split_evenly`], any wall-clock limit divided evenly.
    fn shard_budget(budget: Budget, shard: usize, shards: usize) -> Budget {
        Budget {
            max_queries: if budget.max_queries == u64::MAX {
                u64::MAX
            } else {
                split_evenly(budget.max_queries, shard, shards)
            },
            max_time: budget.max_time.map(|t| t / shards as u32),
        }
    }

    /// Phase 2 over disjoint map-space shards: one gradient trajectory per
    /// shard, the budget split exactly, traces merged in shard order. Each
    /// proposal is scored by `objective` as it is visited.
    ///
    /// With [`Phase2Config::sync`] enabled, the policy is consulted before
    /// each trajectory after the first — stall counter = consecutive shards
    /// without a best improvement, progress = fraction of shards completed
    /// — and, when it acts, the running best mapping is handed to the next
    /// shard's proposer as its starting anchor (`Adopt`) or warm restart
    /// (`Restart`).
    fn search_sharded(
        &self,
        problem: &ProblemSpec,
        budget: Budget,
        objective: &mut dyn mm_search::Objective,
        rng: &mut StdRng,
    ) -> Result<SearchTrace, MindMappingsError> {
        /// Presents the shared objective with a per-shard query counter, so
        /// each shard's budget starts from zero instead of inheriting the
        /// previous shards' query count.
        struct OffsetObjective<'a> {
            inner: &'a mut dyn mm_search::Objective,
            base: u64,
        }
        impl mm_search::Objective for OffsetObjective<'_> {
            fn cost(&mut self, mapping: &Mapping) -> f64 {
                self.inner.cost(mapping)
            }
            fn queries(&self) -> u64 {
                self.inner.queries() - self.base
            }
        }

        let space = self.map_space(problem);
        let shards = self.effective_shards(&space);
        let mut merged = SearchTrace::new("MM");
        let mut sync_state = mm_search::SyncState::new();
        for s in 0..shards {
            let view = space.shard(s, shards);
            let mut proposer =
                crate::GradientProposer::new(&self.surrogate, problem.clone(), self.phase2)?;
            // One sync point per shard boundary: the stall counter tracks
            // consecutive shards that failed to improve the merged best,
            // and SyncState re-arms it whenever a restart fires.
            if self.phase2.sync.is_enabled() && s > 0 {
                if let Some(best) = &merged.best_mapping {
                    let progress = s as f64 / shards as f64;
                    if let Some(action) =
                        sync_state.decide(&self.phase2.sync, Some(merged.best_cost), progress, rng)
                    {
                        use mm_search::ProposalSearch;
                        proposer.observe_global_best(&view, best, merged.best_cost, action, rng);
                    }
                }
            }
            let mut shard_objective = OffsetObjective {
                base: objective.queries(),
                inner: objective,
            };
            let trace = drive(
                &mut proposer,
                &view,
                &mut shard_objective,
                Self::shard_budget(budget, s, shards),
                rng,
            );
            merge_trace(&mut merged, &trace);
        }
        Ok(merged)
    }

    /// Phase 2 with an arbitrary budget (iteration- and/or time-limited).
    ///
    /// With [`Phase2Config::shards`] greater than 1 the budget is split
    /// exactly across that many pairwise-disjoint map-space shards
    /// ([`MapSpace::shard`]), each searched by its own gradient trajectory
    /// (scored by the reference cost model as it goes); the per-shard traces
    /// are merged in shard order.
    ///
    /// # Errors
    ///
    /// Returns an error if the problem does not match the surrogate's family.
    pub fn search_with_budget(
        &self,
        problem: &ProblemSpec,
        budget: Budget,
        rng: &mut StdRng,
    ) -> Result<SearchTrace, MindMappingsError> {
        let evaluator = CostModel::new(self.arch.clone(), problem.clone());
        if self.phase2.shards > 1 {
            let mut objective = FnObjective::new(|m: &Mapping| evaluator.edp(m));
            return self.search_sharded(problem, budget, &mut objective, rng);
        }
        let gs = GradientSearch::new(&self.surrogate, problem.clone(), self.phase2)?;
        Ok(gs.run(budget, &evaluator, rng))
    }

    /// Deployment-mode Phase 2: return only the best mapping found, never
    /// touching the reference cost model (pure surrogate-guided search).
    ///
    /// With [`Phase2Config::shards`] greater than 1, one trajectory searches
    /// each disjoint shard and the candidate with the best *surrogate*
    /// prediction across shards is returned — the reference model is still
    /// never queried.
    ///
    /// # Errors
    ///
    /// Returns an error if the problem does not match the surrogate's family.
    pub fn best_mapping(
        &self,
        problem: &ProblemSpec,
        budget: Budget,
        rng: &mut StdRng,
    ) -> Result<Mapping, MindMappingsError> {
        if self.phase2.shards > 1 {
            // Score visited candidates with the surrogate only.
            let surrogate = &self.surrogate;
            let mut objective = FnObjective::new(|m: &Mapping| {
                let x = surrogate.encode_normalized(problem, m);
                surrogate.predict_normalized_edp_from_input(&x)
            });
            let trace = self.search_sharded(problem, budget, &mut objective, rng)?;
            if let Some(best) = trace.best_mapping {
                return Ok(best);
            }
            // Zero-budget runs fall through to a plain valid mapping.
            return Ok(self.map_space(problem).random_mapping(rng));
        }
        let gs = GradientSearch::new(&self.surrogate, problem.clone(), self.phase2)?;
        Ok(gs.best_mapping(budget, rng))
    }
}

/// Append `trace`'s points to `merged` (renumbering queries and rebuilding
/// the monotone best-so-far prefix) and merge the best mapping.
fn merge_trace(merged: &mut SearchTrace, trace: &SearchTrace) {
    let prev_best = merged.best_cost;
    for p in &trace.points {
        if p.cost < merged.best_cost {
            merged.best_cost = p.cost;
        }
        merged.points.push(TracePoint {
            queries: merged.points.len() as u64 + 1,
            cost: p.cost,
            best_cost: merged.best_cost,
            elapsed_s: merged.wall_time_s + p.elapsed_s,
        });
    }
    // Strictly-better-wins, so ties resolve to the earliest shard.
    if trace.best_mapping.is_some()
        && (merged.best_mapping.is_none() || trace.best_cost < prev_best)
    {
        merged.best_mapping = trace.best_mapping.clone();
    }
    merged.wall_time_s += trace.wall_time_s;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::Architecture;
    use mm_workloads::conv1d::Conv1dFamily;
    use rand::SeedableRng;

    fn quick_framework(seed: u64) -> MindMappings {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Phase1Config {
            num_samples: 1500,
            mappings_per_problem: 50,
            hidden_layers: vec![48, 48],
            epochs: 20,
            batch_size: 64,
            ..Phase1Config::quick()
        };
        MindMappings::train(
            Architecture::example(),
            &Conv1dFamily::default(),
            &cfg,
            &mut rng,
        )
        .unwrap()
        .0
    }

    #[test]
    fn api_routines_work_end_to_end() {
        let mm = quick_framework(11);
        let problem = ProblemSpec::conv1d(640, 5);
        let mut rng = StdRng::seed_from_u64(12);

        // getMapping / isMember
        let m = mm.get_mapping(&problem, &mut rng);
        assert!(mm.is_member(&problem, &m));

        // getProjection of random noise
        let enc = mm.surrogate().encoding();
        let noise: Vec<f32> = (0..enc.mapping_len())
            .map(|i| i as f32 * 3.7 - 10.0)
            .collect();
        let projected = mm.get_projection(&problem, &noise).unwrap();
        assert!(mm.is_member(&problem, &projected));

        // Phase 2 search
        let trace = mm.search(&problem, 200, &mut rng);
        assert!(trace.best_cost.is_finite() && trace.best_cost > 0.0);
        assert_eq!(trace.method, "MM");

        // Deployment mode
        let best = mm
            .best_mapping(&problem, Budget::iterations(100), &mut rng)
            .unwrap();
        assert!(mm.is_member(&problem, &best));
    }

    #[test]
    fn search_with_budget_rejects_foreign_family() {
        let mm = quick_framework(13);
        let cnn = mm_workloads::cnn::CnnLayer::resnet_conv3().into_problem();
        let mut rng = StdRng::seed_from_u64(14);
        assert!(mm
            .search_with_budget(&cnn, Budget::iterations(10), &mut rng)
            .is_err());
    }

    #[test]
    fn sharded_phase2_search_spends_the_exact_budget() {
        let mut mm = quick_framework(21);
        mm.set_phase2_config(Phase2Config {
            shards: 4,
            ..Phase2Config::default()
        });
        let problem = ProblemSpec::conv1d(640, 5);
        let mut rng = StdRng::seed_from_u64(22);
        let trace = mm.search(&problem, 202, &mut rng);
        assert_eq!(trace.method, "MM");
        assert_eq!(trace.len(), 202, "shard shares must sum to the budget");
        assert!(trace.best_cost.is_finite() && trace.best_cost > 0.0);
        assert!(mm.is_member(&problem, trace.best_mapping.as_ref().unwrap()));
        // Best-so-far prefix stays monotone across the shard boundary merge.
        for w in trace.points.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }

        // The other Phase-2 entry points honor the shards knob too.
        let budgeted = mm
            .search_with_budget(&problem, Budget::iterations(101), &mut rng)
            .unwrap();
        assert_eq!(budgeted.len(), 101);
        let deployed = mm
            .best_mapping(&problem, Budget::iterations(80), &mut rng)
            .unwrap();
        assert!(mm.is_member(&problem, &deployed));
    }

    #[test]
    fn synced_sharded_phase2_spends_the_exact_budget_and_stays_valid() {
        use mm_search::SyncPolicy;
        let mut mm = quick_framework(31);
        let problem = ProblemSpec::conv1d(640, 5);
        for sync in [
            SyncPolicy::Anchor,
            SyncPolicy::Restart { patience: 0 },
            SyncPolicy::Annealed {
                start: 1.0,
                end: 1.0,
            },
        ] {
            mm.set_phase2_config(Phase2Config {
                shards: 4,
                sync,
                ..Phase2Config::default()
            });
            let mut rng = StdRng::seed_from_u64(32);
            let trace = mm.search(&problem, 120, &mut rng);
            assert_eq!(trace.len(), 120, "{sync}: shard shares must sum");
            assert!(trace.best_cost.is_finite() && trace.best_cost > 0.0);
            assert!(mm.is_member(&problem, trace.best_mapping.as_ref().unwrap()));
            for w in trace.points.windows(2) {
                assert!(w[1].best_cost <= w[0].best_cost);
            }
        }
    }

    #[test]
    fn shard_budget_split_is_exact() {
        for (total, count) in [(10u64, 3usize), (202, 4), (7, 7), (5, 8), (0, 3), (100, 1)] {
            let shares: Vec<u64> = (0..count).map(|i| split_evenly(total, i, count)).collect();
            assert_eq!(shares.iter().sum::<u64>(), total, "{total}/{count}");
            let max = shares.iter().max().unwrap();
            let min = shares.iter().min().unwrap();
            assert!(max - min <= 1, "{total}/{count}: {shares:?}");
        }
    }

    #[test]
    fn phase2_config_roundtrip() {
        let mut mm = quick_framework(15);
        let cfg = Phase2Config {
            learning_rate: 0.5,
            ..Phase2Config::default()
        };
        mm.set_phase2_config(cfg);
        assert!((mm.phase2_config().learning_rate - 0.5).abs() < 1e-9);
        assert_eq!(mm.arch().num_pes, 16);
    }
}
