//! Phase 2: gradient search on the surrogate (Section 4.2).
//!
//! Starting from a random valid mapping, each iteration
//!
//! 1. evaluates the surrogate's predicted cost `c* = f*(m@t, p_target)`;
//! 2. back-propagates through the surrogate to obtain `∇ = ∂f*/∂m@t`;
//! 3. steps `m@t+1 = m@t − α∇` in the whitened input space;
//! 4. projects the result back onto the valid map space (rounding every
//!    attribute to its domain and repairing capacity violations);
//! 5. every `N` iterations proposes a random valid mapping and accepts it
//!    with a simulated-annealing-style probability whose temperature decays
//!    over time (Appendix A: interval 10, T₀ = 50, ×0.75 every 50
//!    injections).
//!
//! Crucially the loop only ever queries the **surrogate**; the expensive
//! reference cost model is not needed during the search, which is what gives
//! Mind Mappings its iso-time advantage (Section 5.4.2). The true cost of the
//! visited candidates is filled in *after* the timed loop so that the
//! returned [`SearchTrace`] can be compared against the baselines.

use std::time::Instant;

use mm_accel::CostModel;
use mm_mapspace::{MapSpace, Mapping, ProblemSpec};
use mm_search::{Budget, SearchTrace};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::Phase2Config;
use crate::surrogate::Surrogate;
use crate::MindMappingsError;

/// One iteration of the Phase-2 loop, recorded for post-hoc evaluation.
#[derive(Debug, Clone)]
struct IterationRecord {
    /// The candidate mapping the search sits at after this iteration.
    /// `None` means "unchanged from the previous iteration" (e.g. the
    /// gradient step rounded back to the same point).
    candidate: Option<Mapping>,
    /// Wall-clock seconds elapsed since the search started.
    elapsed_s: f64,
    /// Surrogate-predicted normalized EDP of the current candidate.
    predicted: f64,
}

/// The Phase-2 gradient searcher, bound to a surrogate and a target problem.
#[derive(Debug, Clone)]
pub struct GradientSearch<'a> {
    surrogate: &'a Surrogate,
    space: MapSpace,
    problem: ProblemSpec,
    config: Phase2Config,
}

impl<'a> GradientSearch<'a> {
    /// Create a gradient search for `problem` using a trained `surrogate`.
    ///
    /// # Errors
    ///
    /// Returns [`MindMappingsError::FamilyMismatch`] if the problem's shape
    /// does not match the family the surrogate was trained on.
    pub fn new(
        surrogate: &'a Surrogate,
        problem: ProblemSpec,
        config: Phase2Config,
    ) -> Result<Self, MindMappingsError> {
        surrogate.check_problem(&problem)?;
        let space = MapSpace::new(problem.clone(), surrogate.arch().mapping_constraints());
        Ok(GradientSearch {
            surrogate,
            space,
            problem,
            config,
        })
    }

    /// The map space being searched.
    pub fn space(&self) -> &MapSpace {
        &self.space
    }

    /// Run the search for at most `budget` surrogate iterations (and/or
    /// wall-clock time), returning the per-iteration trace. Trace costs are
    /// true EDPs (joule-seconds) obtained from `evaluator` **after** the
    /// timed loop — the reference cost model never influences the search
    /// itself, matching the paper's evaluation methodology where the visited
    /// mappings are scored offline for plotting (Section 5.2).
    pub fn run(&self, budget: Budget, evaluator: &CostModel, rng: &mut StdRng) -> SearchTrace {
        let (records, _) = self.run_surrogate_only(budget, rng);
        self.fill_trace(records, evaluator)
    }

    /// Run the timed surrogate-only loop. Returns the iteration records and
    /// the best mapping by surrogate prediction.
    fn run_surrogate_only(
        &self,
        budget: Budget,
        rng: &mut StdRng,
    ) -> (Vec<IterationRecord>, Option<Mapping>) {
        let cfg = &self.config;
        let start = Instant::now();
        let mut records: Vec<IterationRecord> = Vec::new();

        let mut current = self.space.random_mapping(rng);
        let mut x = self.surrogate.encode_normalized(&self.problem, &current);
        let mapping_offset = self.surrogate.encoding().mapping_offset();

        let mut best_pred = f64::INFINITY;
        let mut best_mapping: Option<Mapping> = None;
        let mut temperature = cfg.initial_temperature;
        let mut injections: u64 = 0;
        let mut iteration: u64 = 0;

        while !budget.exhausted(iteration, start.elapsed()) {
            iteration += 1;

            // Steps 2-3: predicted cost and gradient at the current point.
            let predicted = self.surrogate.predict_normalized_edp_from_input(&x);
            let mut grad = self.surrogate.normalized_edp_gradient(&x);
            // The problem id is held constant (Section 4.2): zero its grad.
            for g in grad.iter_mut().take(mapping_offset) {
                *g = 0.0;
            }
            if cfg.normalize_gradient {
                let norm: f32 = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
                if norm > 1e-12 {
                    for g in &mut grad {
                        *g /= norm;
                    }
                }
            }
            // Step 4: gradient step in whitened space.
            for (xi, gi) in x.iter_mut().zip(&grad) {
                *xi -= cfg.learning_rate * gi;
            }

            // Step 5: project back to the valid map space.
            let raw_mapping = self.surrogate.decode_normalized(&x);
            let previous = current.clone();
            current = self
                .space
                .project(&raw_mapping)
                .unwrap_or_else(|_| self.space.random_mapping(rng));
            x = self.surrogate.encode_normalized(&self.problem, &current);
            let mut projected_pred = self.surrogate.predict_normalized_edp_from_input(&x);

            // Track the best-so-far candidate by surrogate prediction (the
            // mapping the deployment-mode API would return).
            if projected_pred < best_pred {
                best_pred = projected_pred;
                best_mapping = Some(current.clone());
            }

            // Step 6: periodic random injection with annealed acceptance.
            if cfg.injection_interval > 0 && iteration.is_multiple_of(cfg.injection_interval) {
                let candidate = self.space.random_mapping(rng);
                let cand_x = self.surrogate.encode_normalized(&self.problem, &candidate);
                let cand_pred = self.surrogate.predict_normalized_edp_from_input(&cand_x);
                let accept = cand_pred <= projected_pred || {
                    let delta = cand_pred - projected_pred;
                    rng.gen_range(0.0..1.0) < (-delta / temperature.max(1e-12)).exp()
                };
                if accept {
                    current = candidate;
                    x = cand_x;
                    projected_pred = cand_pred;
                    if cand_pred < best_pred {
                        best_pred = cand_pred;
                        best_mapping = Some(current.clone());
                    }
                }
                injections += 1;
                if cfg.decay_every_injections > 0
                    && injections.is_multiple_of(cfg.decay_every_injections)
                {
                    temperature *= cfg.temperature_decay;
                }
            }

            records.push(IterationRecord {
                candidate: if current == previous {
                    None
                } else {
                    Some(current.clone())
                },
                elapsed_s: start.elapsed().as_secs_f64(),
                predicted: predicted.min(projected_pred),
            });
        }
        (records, best_mapping)
    }

    /// Convert iteration records into a [`SearchTrace`] by evaluating the
    /// true cost of every mapping the search visited (this is the offline
    /// scoring step used to produce Figures 5/6; it does not influence the
    /// search).
    fn fill_trace(&self, records: Vec<IterationRecord>, evaluator: &CostModel) -> SearchTrace {
        let mut trace = SearchTrace::new("MM");
        let mut last: Option<(f64, Mapping)> = None;
        for rec in records {
            if let Some(mapping) = rec.candidate {
                let cost = evaluator.edp(&mapping);
                last = Some((cost, mapping));
            }
            if let Some((cost, mapping)) = &last {
                trace.record(
                    *cost,
                    mapping,
                    std::time::Duration::from_secs_f64(rec.elapsed_s),
                );
            }
            let _ = rec.predicted;
        }
        trace
    }

    /// Surrogate-only search returning just the best mapping found (no true
    /// cost evaluation at all); this is the deployment-mode entry point used
    /// by the `MindMappings` API.
    pub fn best_mapping(&self, budget: Budget, rng: &mut StdRng) -> Mapping {
        let (_, best) = self.run_surrogate_only(budget, rng);
        best.unwrap_or_else(|| Mapping::minimal(&self.problem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Phase1Config;
    use crate::dataset::generate_training_set;
    use mm_accel::Architecture;
    use mm_workloads::conv1d::Conv1dFamily;
    use rand::SeedableRng;

    fn surrogate(seed: u64) -> Surrogate {
        let arch = Architecture::example();
        let fam = Conv1dFamily::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate_training_set(&arch, &fam, 1500, 50, &mut rng).unwrap();
        let cfg = Phase1Config {
            hidden_layers: vec![48, 48],
            epochs: 25,
            batch_size: 64,
            ..Phase1Config::quick()
        };
        Surrogate::train(arch, &ds, &cfg, &mut rng).unwrap().0
    }

    #[test]
    fn rejects_problems_from_another_family() {
        let s = surrogate(0);
        let cnn = mm_workloads::cnn::CnnLayer::alexnet_conv4().into_problem();
        assert!(GradientSearch::new(&s, cnn, Phase2Config::default()).is_err());
    }

    #[test]
    fn search_produces_monotone_trace_of_valid_mappings() {
        let s = surrogate(1);
        let problem = ProblemSpec::conv1d(900, 7);
        let gs = GradientSearch::new(&s, problem.clone(), Phase2Config::default()).unwrap();
        let model = CostModel::new(s.arch().clone(), problem);
        let mut rng = StdRng::seed_from_u64(2);
        let trace = gs.run(Budget::iterations(300), &model, &mut rng);
        assert!(!trace.is_empty());
        assert!(trace.best_cost.is_finite());
        for w in trace.points.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
        let best = trace.best_mapping.as_ref().unwrap();
        assert!(gs.space().is_member(best));
    }

    #[test]
    fn search_beats_average_random_mapping() {
        let s = surrogate(3);
        let problem = ProblemSpec::conv1d(1200, 5);
        let gs = GradientSearch::new(&s, problem.clone(), Phase2Config::default()).unwrap();
        let model = CostModel::new(s.arch().clone(), problem.clone());
        let space = gs.space().clone();
        let mut rng = StdRng::seed_from_u64(4);
        let mut mean = 0.0;
        let n = 30;
        for _ in 0..n {
            mean += model.edp(&space.random_mapping(&mut rng));
        }
        mean /= n as f64;
        let trace = gs.run(Budget::iterations(400), &model, &mut rng);
        assert!(
            trace.best_cost < mean,
            "MM ({}) did not beat the random-mapping mean ({mean})",
            trace.best_cost
        );
    }

    #[test]
    fn best_mapping_is_valid_without_evaluator() {
        let s = surrogate(5);
        let problem = ProblemSpec::conv1d(600, 9);
        let gs = GradientSearch::new(&s, problem, Phase2Config::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let best = gs.best_mapping(Budget::iterations(150), &mut rng);
        assert!(gs.space().is_member(&best));
    }

    #[test]
    fn time_budget_is_respected() {
        let s = surrogate(7);
        let problem = ProblemSpec::conv1d(800, 5);
        let gs = GradientSearch::new(&s, problem, Phase2Config::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let start = std::time::Instant::now();
        let _ = gs.best_mapping(
            Budget::time(std::time::Duration::from_millis(100)),
            &mut rng,
        );
        assert!(start.elapsed() < std::time::Duration::from_secs(10));
    }
}
