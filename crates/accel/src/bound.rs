//! The *algorithmic minimum*: a possibly-unachievable theoretical lower
//! bound on energy, delay, and EDP (Appendix A).
//!
//! * **Minimum energy** assumes perfect reuse: every input word is read once
//!   and every output word written once at each level of the (inclusive)
//!   memory hierarchy, plus the irreducible MAC energy.
//! * **Minimum cycles** assumes perfect utilization: all PEs busy every
//!   cycle, i.e. `required_macs / (macs_per_pe × num_pes)`.
//!
//! The bound is used (a) as the EDP normalization baseline in Figures 5/6,
//! and (b) to normalize the surrogate's output meta-statistics
//! (Section 4.1.3), which reduces output variance across problems.

use mm_mapspace::ProblemSpec;
use serde::{Deserialize, Serialize};

use crate::arch::Architecture;

/// The algorithmic-minimum bound for one (architecture, problem) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmicMinimum {
    /// Lower bound on energy, in picojoules.
    pub energy_pj: f64,
    /// Lower bound on execution cycles.
    pub cycles: f64,
    /// Lower bound on EDP, in joule-seconds (product of the two bounds, which
    /// is generally unachievable simultaneously).
    pub edp: f64,
}

impl AlgorithmicMinimum {
    /// Compute the bound for `problem` on `arch`.
    pub fn compute(arch: &Architecture, problem: &ProblemSpec) -> Self {
        let macs = problem.total_macs() as f64;
        let per_word = arch.energy_per_word_through_hierarchy_pj();
        let total_words: f64 = (0..problem.num_tensors())
            .map(|t| problem.tensor_size(t) as f64)
            .sum();
        let energy_pj = total_words * per_word + macs * arch.mac_energy_pj;
        let cycles = (macs / arch.peak_macs_per_cycle() as f64).max(1.0);
        let edp = energy_pj * 1e-12 * cycles * arch.cycle_time_s();
        AlgorithmicMinimum {
            energy_pj,
            cycles,
            edp,
        }
    }

    /// Per-tensor, per-level lower-bound energy (pJ): each word of tensor `t`
    /// accessed exactly once at the given level. Used to normalize the
    /// surrogate's per-tensor output neurons.
    pub fn tensor_level_energy_pj(
        arch: &Architecture,
        problem: &ProblemSpec,
        level: mm_mapspace::mapping::Level,
        t: usize,
    ) -> f64 {
        problem.tensor_size(t) as f64 * arch.level(level).energy_per_access_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_mapspace::mapping::Level;

    #[test]
    fn bound_is_positive_and_scales_with_problem() {
        let arch = Architecture::example();
        let small = AlgorithmicMinimum::compute(&arch, &ProblemSpec::conv1d(64, 3));
        let large = AlgorithmicMinimum::compute(&arch, &ProblemSpec::conv1d(4096, 9));
        assert!(small.energy_pj > 0.0 && small.cycles >= 1.0 && small.edp > 0.0);
        assert!(large.energy_pj > small.energy_pj);
        assert!(large.cycles > small.cycles);
        assert!(large.edp > small.edp);
    }

    #[test]
    fn cycles_bound_matches_formula() {
        let arch = Architecture::example(); // 16 PEs, 1 MAC/PE/cycle
        let p = ProblemSpec::conv1d(128, 7); // 122 * 7 = 854 MACs
        let b = AlgorithmicMinimum::compute(&arch, &p);
        assert!((b.cycles - 854.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn energy_bound_matches_formula() {
        let arch = Architecture::example();
        let p = ProblemSpec::conv1d(64, 5);
        let b = AlgorithmicMinimum::compute(&arch, &p);
        let words = (64 + 5 + 60) as f64;
        let expect = words * (1.0 + 5.0 + 200.0) + (60.0 * 5.0) * 1.0;
        assert!((b.energy_pj - expect).abs() < 1e-9);
    }

    #[test]
    fn per_tensor_level_energy() {
        let arch = Architecture::example();
        let p = ProblemSpec::conv1d(64, 5);
        let e = AlgorithmicMinimum::tensor_level_energy_pj(&arch, &p, Level::Dram, 1);
        assert!((e - 5.0 * 200.0).abs() < 1e-9);
    }
}
