//! The accelerator cost model: energy, cycles, utilization, and EDP for a
//! mapping (the reference cost function `f(a, m)` of Equation 1).

use mm_mapspace::mapping::Level;
use mm_mapspace::{Mapping, ProblemSpec};
use serde::{Deserialize, Serialize};

use crate::arch::Architecture;
use crate::bound::AlgorithmicMinimum;
use crate::reuse::{count_accesses_into, AccessCounts, LoopSpec, TiledNest};

/// Full cost breakdown for one mapping, matching the "meta-statistics" output
/// representation of Section 4.1.3: per-level, per-tensor energy plus total
/// energy, cycles, and compute utilization.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Energy (pJ) spent accessing each memory level for each tensor:
    /// `energy_pj[level][tensor]` with levels ordered `[L1, L2, DRAM]`.
    pub energy_pj: Vec<Vec<f64>>,
    /// Energy (pJ) spent in the MAC datapath.
    pub compute_energy_pj: f64,
    /// Total energy in picojoules.
    pub total_energy_pj: f64,
    /// Execution time in cycles (max of compute- and bandwidth-limited time).
    pub cycles: f64,
    /// Compute utilization in `[0, 1]`: achieved MACs/cycle over peak.
    pub utilization: f64,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
    /// Raw access counts backing the energy numbers.
    pub accesses: AccessCounts,
}

impl CostBreakdown {
    /// The meta-statistics vector used to train the surrogate
    /// (Section 4.1.3): per-level energy for each tensor, followed by compute
    /// utilization, total cycles, and total energy. Length is
    /// `3 * num_tensors + 3` — 12 for CNN-Layer (3 tensors), 15 for MTTKRP
    /// (4 tensors), as reported in Section 5.5.
    pub fn meta_statistics(&self) -> Vec<f64> {
        // Capacity from the actual row lengths: indexing `energy_pj[0]` would
        // panic on an empty breakdown and under-reserve for ragged rows.
        let cells: usize = self.energy_pj.iter().map(Vec::len).sum();
        let mut v = Vec::with_capacity(cells + 3);
        for level in &self.energy_pj {
            for &e in level {
                v.push(e);
            }
        }
        v.push(self.utilization);
        v.push(self.cycles);
        v.push(self.total_energy_pj);
        v
    }

    /// Delay in seconds given the architecture's clock.
    pub fn delay_s(&self, arch: &Architecture) -> f64 {
        self.cycles * arch.cycle_time_s()
    }
}

/// Scalar cost summary of one evaluation: everything a search loop needs to
/// rank a mapping, without the per-level/per-tensor detail (which stays in
/// the [`EvalScratch`] that produced it). `Copy`, so the hot path moves no
/// heap data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    /// Energy (pJ) spent in the MAC datapath.
    pub compute_energy_pj: f64,
    /// Total energy in picojoules.
    pub total_energy_pj: f64,
    /// Execution time in cycles (max of compute- and bandwidth-limited time).
    pub cycles: f64,
    /// Compute utilization in `[0, 1]`.
    pub utilization: f64,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
    /// Total accesses to the last (DRAM) level.
    pub last_level_accesses: u128,
}

/// Reusable working memory for [`CostModel::evaluate_into`]: the lowered
/// loop nest, access counts, and energy rows of the *most recent*
/// evaluation. One scratch per evaluation thread; after warmup (first call
/// per problem shape) evaluations through it perform zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    nest: TiledNest,
    loops_above_l1: Vec<LoopSpec>,
    counts: AccessCounts,
    energy_pj: Vec<Vec<f64>>,
}

impl EvalScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access counts of the most recent [`CostModel::evaluate_into`] call.
    pub fn accesses(&self) -> &AccessCounts {
        &self.counts
    }

    /// Per-level, per-tensor energy (pJ) of the most recent evaluation,
    /// levels ordered `[L1, L2, DRAM]`.
    pub fn energy_pj(&self) -> &[Vec<f64>] {
        &self.energy_pj
    }

    /// Assemble the full [`CostBreakdown`] of the most recent evaluation,
    /// *moving* the detail buffers out of the scratch (they regrow on the
    /// next evaluation). `summary` must be the value that evaluation
    /// returned.
    pub fn take_breakdown(&mut self, summary: CostSummary) -> CostBreakdown {
        CostBreakdown {
            energy_pj: std::mem::take(&mut self.energy_pj),
            compute_energy_pj: summary.compute_energy_pj,
            total_energy_pj: summary.total_energy_pj,
            cycles: summary.cycles,
            utilization: summary.utilization,
            edp: summary.edp,
            accesses: std::mem::take(&mut self.counts),
        }
    }
}

/// Structure-of-arrays cost columns for a whole proposal batch, filled by
/// [`CostModel::evaluate_batch_into`]. Column `i` holds the cost of
/// `mappings[i]`; values are bit-identical to per-mapping
/// [`CostModel::evaluate`] calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchCosts {
    /// Datapath (MAC) energy in picojoules, per mapping.
    pub compute_energy_pj: Vec<f64>,
    /// Total energy in picojoules, per mapping.
    pub total_energy_pj: Vec<f64>,
    /// Execution time in cycles, per mapping.
    pub cycles: Vec<f64>,
    /// Compute utilization in `[0, 1]`, per mapping.
    pub utilization: Vec<f64>,
    /// Energy-delay product in joule-seconds, per mapping.
    pub edp: Vec<f64>,
    /// Total DRAM accesses, per mapping.
    pub last_level_accesses: Vec<u128>,
}

impl BatchCosts {
    /// An empty column set; columns are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mappings scored.
    pub fn len(&self) -> usize {
        self.edp.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.edp.is_empty()
    }

    /// Drop all rows, keeping column capacity.
    pub fn clear(&mut self) {
        self.compute_energy_pj.clear();
        self.total_energy_pj.clear();
        self.cycles.clear();
        self.utilization.clear();
        self.edp.clear();
        self.last_level_accesses.clear();
    }

    /// Reserve room for `n` more rows in every column.
    pub fn reserve(&mut self, n: usize) {
        self.compute_energy_pj.reserve(n);
        self.total_energy_pj.reserve(n);
        self.cycles.reserve(n);
        self.utilization.reserve(n);
        self.edp.reserve(n);
        self.last_level_accesses.reserve(n);
    }

    /// Append one mapping's summary as a new row.
    pub fn push(&mut self, s: CostSummary) {
        self.compute_energy_pj.push(s.compute_energy_pj);
        self.total_energy_pj.push(s.total_energy_pj);
        self.cycles.push(s.cycles);
        self.utilization.push(s.utilization);
        self.edp.push(s.edp);
        self.last_level_accesses.push(s.last_level_accesses);
    }

    /// Reassemble row `i` as a [`CostSummary`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn summary(&self, i: usize) -> CostSummary {
        CostSummary {
            compute_energy_pj: self.compute_energy_pj[i],
            total_energy_pj: self.total_energy_pj[i],
            cycles: self.cycles[i],
            utilization: self.utilization[i],
            edp: self.edp[i],
            last_level_accesses: self.last_level_accesses[i],
        }
    }
}

/// The analytical cost model: an [`Architecture`] bound to a [`ProblemSpec`].
///
/// Cloneable and cheap to construct; evaluation is a pure function of the
/// mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    arch: Architecture,
    problem: ProblemSpec,
    lower_bound: AlgorithmicMinimum,
}

impl CostModel {
    /// Bind an architecture to a problem.
    pub fn new(arch: Architecture, problem: ProblemSpec) -> Self {
        let lower_bound = AlgorithmicMinimum::compute(&arch, &problem);
        Self {
            arch,
            problem,
            lower_bound,
        }
    }

    /// The architecture being modelled.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The problem being mapped.
    pub fn problem(&self) -> &ProblemSpec {
        &self.problem
    }

    /// The (possibly unachievable) theoretical lower bound for this problem
    /// on this architecture (Appendix A).
    pub fn lower_bound(&self) -> &AlgorithmicMinimum {
        &self.lower_bound
    }

    /// Evaluate the full cost breakdown of a mapping.
    ///
    /// The mapping is taken at face value: callers are expected to have
    /// validated it against the map space (invalid mappings still produce a
    /// finite cost, which is useful for penalty-based search, but the numbers
    /// are only meaningful for valid mappings).
    pub fn evaluate(&self, mapping: &Mapping) -> CostBreakdown {
        let mut scratch = EvalScratch::new();
        let summary = self.evaluate_into(&mut scratch, mapping);
        scratch.take_breakdown(summary)
    }

    /// The allocation-free hot entry point: evaluate `mapping` using the
    /// reusable buffers in `scratch`, returning the scalar [`CostSummary`].
    /// Per-level/per-tensor detail stays readable in `scratch` until the
    /// next call.
    ///
    /// Bit-identical to [`evaluate`](Self::evaluate) (which is a thin
    /// allocating wrapper around this): same arithmetic in the same order.
    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    pub fn evaluate_into(&self, scratch: &mut EvalScratch, mapping: &Mapping) -> CostSummary {
        let p = &self.problem;
        let a = &self.arch;
        let nt = p.num_tensors();
        scratch.nest.fill_from_mapping(p, mapping);
        scratch
            .nest
            .loops_above_l1_into(&mut scratch.loops_above_l1);
        count_accesses_into(
            p,
            mapping,
            &scratch.nest,
            &scratch.loops_above_l1,
            &mut scratch.counts,
        );
        let accesses = &scratch.counts;

        // mm-lint: allow(hot-path): Vec::new is alloc-free; the three rows
        // are created once per scratch and reused across calls.
        scratch.energy_pj.resize_with(3, Vec::new);
        for level in Level::ALL {
            let epa = a.level(level).energy_per_access_pj;
            let row = &mut scratch.energy_pj[level.index()];
            row.clear();
            row.resize(nt, 0.0);
            for (t, e) in row.iter_mut().enumerate() {
                *e = accesses.tensor_at(level, t) as f64 * epa;
            }
        }

        let padded_macs = mapping.padded_macs(p) as f64;
        let compute_energy_pj = padded_macs * a.mac_energy_pj;
        let total_energy_pj: f64 =
            scratch.energy_pj.iter().flatten().sum::<f64>() + compute_energy_pj;

        // Compute-limited time. A mapping/architecture pair with no MAC
        // throughput (zero PEs or zero-rate PEs) can never finish: it gets
        // an explicit worst-case cost rather than a silently clamped
        // denominator. `active_pes * rate` is a product of integers, so the
        // guard changes nothing for any functioning configuration.
        let active_pes = (mapping.active_pes().min(a.num_pes)) as f64;
        let mac_rate = active_pes * a.macs_per_pe_per_cycle as f64;
        let (cycles, utilization) = if mac_rate > 0.0 {
            let mut cycles = padded_macs / mac_rate;
            // Bandwidth-limited time per level.
            for level in Level::ALL {
                let bw = a.level(level).bandwidth_words_per_cycle.max(1e-9);
                let mem_cycles = accesses.total_at(level) as f64 / bw;
                if mem_cycles > cycles {
                    cycles = mem_cycles;
                }
            }
            let actual_macs = p.total_macs() as f64;
            let utilization =
                ((actual_macs / cycles) / a.peak_macs_per_cycle() as f64).clamp(0.0, 1.0);
            (cycles, utilization)
        } else {
            (f64::INFINITY, 0.0)
        };

        let energy_j = total_energy_pj * 1e-12;
        let delay_s = cycles * a.cycle_time_s();
        let edp = energy_j * delay_s;

        CostSummary {
            compute_energy_pj,
            total_energy_pj,
            cycles,
            utilization,
            edp,
            last_level_accesses: accesses.total_at(Level::Dram),
        }
    }

    /// Batch form of [`evaluate_into`](Self::evaluate_into): score every
    /// mapping through one scratch, appending structure-of-arrays cost
    /// columns to `out` (cleared first). The nest lowering, count, and
    /// energy buffers are reused across the whole batch, so the per-mapping
    /// steady state allocates nothing beyond the (caller-reusable) output
    /// columns.
    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    pub fn evaluate_batch_into(
        &self,
        scratch: &mut EvalScratch,
        mappings: &[Mapping],
        out: &mut BatchCosts,
    ) {
        out.clear();
        out.reserve(mappings.len());
        for mapping in mappings {
            let summary = self.evaluate_into(scratch, mapping);
            out.push(summary);
        }
    }

    /// Convenience: just the EDP (joule-seconds) of a mapping.
    pub fn edp(&self, mapping: &Mapping) -> f64 {
        self.evaluate(mapping).edp
    }

    /// EDP normalized to the algorithmic minimum (≥ 1 for valid mappings,
    /// barring lower-bound slack). This is the `y`-axis of Figures 5 and 6.
    pub fn normalized_edp(&self, mapping: &Mapping) -> f64 {
        self.edp(mapping) / self.lower_bound.edp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_mapspace::MapSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> CostModel {
        CostModel::new(Architecture::example(), ProblemSpec::conv1d(128, 7))
    }

    fn space(model: &CostModel) -> MapSpace {
        MapSpace::new(model.problem().clone(), model.arch().mapping_constraints())
    }

    #[test]
    fn evaluate_produces_positive_costs() {
        let m = model();
        let cost = m.evaluate(&Mapping::minimal(m.problem()));
        assert!(cost.total_energy_pj > 0.0);
        assert!(cost.cycles > 0.0);
        assert!(cost.edp > 0.0);
        assert!(cost.utilization > 0.0 && cost.utilization <= 1.0);
    }

    #[test]
    fn meta_statistics_length_matches_paper() {
        // 3 tensors (conv) -> 3*3 + 3 = 12 outputs; 4 tensors -> 15.
        let m = model();
        let cost = m.evaluate(&Mapping::minimal(m.problem()));
        assert_eq!(cost.meta_statistics().len(), 12);
    }

    #[test]
    fn edp_equals_energy_times_delay() {
        let m = model();
        let cost = m.evaluate(&Mapping::minimal(m.problem()));
        let expect = cost.total_energy_pj * 1e-12 * cost.delay_s(m.arch());
        assert!((cost.edp - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn valid_mappings_never_beat_lower_bound_energy() {
        let m = model();
        let s = space(&m);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let mapping = s.random_mapping(&mut rng);
            let cost = m.evaluate(&mapping);
            assert!(
                cost.total_energy_pj >= m.lower_bound().energy_pj * 0.999,
                "energy {} below lower bound {}",
                cost.total_energy_pj,
                m.lower_bound().energy_pj
            );
            assert!(cost.cycles >= m.lower_bound().cycles * 0.999);
            assert!(m.normalized_edp(&mapping) >= 0.999);
        }
    }

    #[test]
    fn parallelism_reduces_cycles() {
        let m = model();
        let mut serial = Mapping::minimal(m.problem());
        serial.tiles[0] = vec![4, 7];
        serial.tiles[1] = vec![16, 7];
        let mut par = serial.clone();
        par.parallel = vec![8, 1];
        par.tiles[1] = vec![32, 7];
        let cs = m.evaluate(&serial);
        let cp = m.evaluate(&par);
        assert!(
            cp.cycles < cs.cycles,
            "parallel mapping should be faster: {} vs {}",
            cp.cycles,
            cs.cycles
        );
    }

    #[test]
    fn better_reuse_reduces_energy() {
        let m = model();
        // Tiny L2 tiles (lots of refetch) vs. large L2 tiles (good reuse).
        let mut small = Mapping::minimal(m.problem());
        small.tiles[0] = vec![1, 1];
        small.tiles[1] = vec![2, 1];
        let mut large = Mapping::minimal(m.problem());
        large.tiles[0] = vec![4, 7];
        large.tiles[1] = vec![61, 7];
        let cs = m.evaluate(&small);
        let cl = m.evaluate(&large);
        assert!(
            cl.total_energy_pj < cs.total_energy_pj,
            "better reuse should reduce energy: {} vs {}",
            cl.total_energy_pj,
            cs.total_energy_pj
        );
    }

    #[test]
    fn cost_depends_on_loop_order() {
        let m = model();
        let mut a = Mapping::minimal(m.problem());
        a.tiles[0] = vec![1, 1];
        a.tiles[1] = vec![4, 1];
        let mut b = a.clone();
        b.loop_orders[2] = vec![1, 0];
        let ca = m.evaluate(&a);
        let cb = m.evaluate(&b);
        assert_ne!(ca.total_energy_pj, cb.total_energy_pj);
    }

    #[test]
    fn cost_surface_is_non_smooth() {
        // Scanning a tile size produces at least one large relative jump
        // between adjacent sizes (the "spiky" surface of Figure 3).
        let m = model();
        let s = space(&m);
        let mut prev: Option<f64> = None;
        let mut max_jump: f64 = 0.0;
        for t in 1..=61u64 {
            let mut mapping = Mapping::minimal(m.problem());
            mapping.tiles[0] = vec![t.min(8), 7];
            mapping.tiles[1] = vec![t * 2, 7];
            s.repair(&mut mapping);
            let edp = m.edp(&mapping);
            if let Some(p) = prev {
                let jump = (edp - p).abs() / p.min(edp);
                if jump > max_jump {
                    max_jump = jump;
                }
            }
            prev = Some(edp);
        }
        assert!(
            max_jump > 0.05,
            "expected a non-smooth cost surface, max relative jump {max_jump}"
        );
    }

    #[test]
    fn evaluate_is_deterministic() {
        let m = model();
        let s = space(&m);
        let mut rng = StdRng::seed_from_u64(42);
        let mapping = s.random_mapping(&mut rng);
        let a = m.evaluate(&mapping);
        let b = m.evaluate(&mapping);
        assert_eq!(a, b);
    }

    #[test]
    fn evaluate_into_is_bit_identical_to_evaluate() {
        let m = model();
        let s = space(&m);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut scratch = EvalScratch::new();
        for _ in 0..64 {
            let mapping = s.random_mapping(&mut rng);
            let baseline = m.evaluate(&mapping);
            let summary = m.evaluate_into(&mut scratch, &mapping);
            assert_eq!(
                summary.total_energy_pj.to_bits(),
                baseline.total_energy_pj.to_bits()
            );
            assert_eq!(summary.cycles.to_bits(), baseline.cycles.to_bits());
            assert_eq!(
                summary.utilization.to_bits(),
                baseline.utilization.to_bits()
            );
            assert_eq!(summary.edp.to_bits(), baseline.edp.to_bits());
            assert_eq!(
                summary.compute_energy_pj.to_bits(),
                baseline.compute_energy_pj.to_bits()
            );
            assert_eq!(
                summary.last_level_accesses,
                baseline.accesses.total_at(Level::Dram)
            );
            // The detailed view in scratch must also match.
            let detailed = m.evaluate_into(&mut scratch, &mapping);
            assert_eq!(scratch.energy_pj(), baseline.energy_pj.as_slice());
            assert_eq!(scratch.accesses(), &baseline.accesses);
            assert_eq!(detailed, summary);
        }
    }

    #[test]
    fn evaluate_batch_into_matches_scalar_path() {
        let m = model();
        let s = space(&m);
        let mut rng = StdRng::seed_from_u64(77);
        let mappings: Vec<Mapping> = (0..16).map(|_| s.random_mapping(&mut rng)).collect();
        let mut scratch = EvalScratch::new();
        let mut batch = BatchCosts::new();
        m.evaluate_batch_into(&mut scratch, &mappings, &mut batch);
        assert_eq!(batch.len(), mappings.len());
        for (i, mapping) in mappings.iter().enumerate() {
            let baseline = m.evaluate(mapping);
            assert_eq!(
                batch.total_energy_pj[i].to_bits(),
                baseline.total_energy_pj.to_bits()
            );
            assert_eq!(batch.cycles[i].to_bits(), baseline.cycles.to_bits());
            assert_eq!(
                batch.utilization[i].to_bits(),
                baseline.utilization.to_bits()
            );
            assert_eq!(batch.edp[i].to_bits(), baseline.edp.to_bits());
            assert_eq!(
                batch.last_level_accesses[i],
                baseline.accesses.total_at(Level::Dram)
            );
        }
        // Reusing the same BatchCosts must clear stale columns.
        m.evaluate_batch_into(&mut scratch, &mappings[..3], &mut batch);
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn zero_throughput_architecture_gets_worst_case_cost() {
        // An accelerator with PEs that retire zero MACs per cycle can never
        // finish any workload: the cost model must report an explicit
        // worst-case cost, not a silently clamped finite one.
        let mut arch = Architecture::example();
        arch.macs_per_pe_per_cycle = 0;
        let m = CostModel::new(arch, ProblemSpec::conv1d(128, 7));
        let cost = m.evaluate(&Mapping::minimal(m.problem()));
        assert!(cost.cycles.is_infinite());
        assert_eq!(cost.utilization, 0.0);
        assert!(cost.edp.is_infinite());
        // Energy accounting is still well-defined.
        assert!(cost.total_energy_pj.is_finite() && cost.total_energy_pj > 0.0);
    }

    #[test]
    fn meta_statistics_handles_degenerate_breakdowns() {
        // An empty breakdown (no levels at all) must not panic.
        let empty = CostBreakdown::default();
        let stats = empty.meta_statistics();
        assert_eq!(stats.len(), 3);
        // Ragged rows (levels with differing tensor counts) must count every
        // cell, not assume row 0's width times the row count.
        let ragged = CostBreakdown {
            energy_pj: vec![vec![1.0, 2.0, 3.0], vec![4.0], vec![]],
            compute_energy_pj: 5.0,
            total_energy_pj: 15.0,
            cycles: 10.0,
            utilization: 0.5,
            edp: 1.5e-10,
            accesses: AccessCounts::default(),
        };
        let stats = ragged.meta_statistics();
        assert_eq!(stats.len(), 4 + 3);
    }
}
