//! The accelerator cost model: energy, cycles, utilization, and EDP for a
//! mapping (the reference cost function `f(a, m)` of Equation 1).

use mm_mapspace::mapping::Level;
use mm_mapspace::{Mapping, ProblemSpec};
use serde::{Deserialize, Serialize};

use crate::arch::Architecture;
use crate::bound::AlgorithmicMinimum;
use crate::reuse::{count_accesses, AccessCounts};

/// Full cost breakdown for one mapping, matching the "meta-statistics" output
/// representation of Section 4.1.3: per-level, per-tensor energy plus total
/// energy, cycles, and compute utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Energy (pJ) spent accessing each memory level for each tensor:
    /// `energy_pj[level][tensor]` with levels ordered `[L1, L2, DRAM]`.
    pub energy_pj: Vec<Vec<f64>>,
    /// Energy (pJ) spent in the MAC datapath.
    pub compute_energy_pj: f64,
    /// Total energy in picojoules.
    pub total_energy_pj: f64,
    /// Execution time in cycles (max of compute- and bandwidth-limited time).
    pub cycles: f64,
    /// Compute utilization in `[0, 1]`: achieved MACs/cycle over peak.
    pub utilization: f64,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
    /// Raw access counts backing the energy numbers.
    pub accesses: AccessCounts,
}

impl CostBreakdown {
    /// The meta-statistics vector used to train the surrogate
    /// (Section 4.1.3): per-level energy for each tensor, followed by compute
    /// utilization, total cycles, and total energy. Length is
    /// `3 * num_tensors + 3` — 12 for CNN-Layer (3 tensors), 15 for MTTKRP
    /// (4 tensors), as reported in Section 5.5.
    pub fn meta_statistics(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.energy_pj.len() * self.energy_pj[0].len() + 3);
        for level in &self.energy_pj {
            for &e in level {
                v.push(e);
            }
        }
        v.push(self.utilization);
        v.push(self.cycles);
        v.push(self.total_energy_pj);
        v
    }

    /// Delay in seconds given the architecture's clock.
    pub fn delay_s(&self, arch: &Architecture) -> f64 {
        self.cycles * arch.cycle_time_s()
    }
}

/// The analytical cost model: an [`Architecture`] bound to a [`ProblemSpec`].
///
/// Cloneable and cheap to construct; evaluation is a pure function of the
/// mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    arch: Architecture,
    problem: ProblemSpec,
    lower_bound: AlgorithmicMinimum,
}

impl CostModel {
    /// Bind an architecture to a problem.
    pub fn new(arch: Architecture, problem: ProblemSpec) -> Self {
        let lower_bound = AlgorithmicMinimum::compute(&arch, &problem);
        Self {
            arch,
            problem,
            lower_bound,
        }
    }

    /// The architecture being modelled.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The problem being mapped.
    pub fn problem(&self) -> &ProblemSpec {
        &self.problem
    }

    /// The (possibly unachievable) theoretical lower bound for this problem
    /// on this architecture (Appendix A).
    pub fn lower_bound(&self) -> &AlgorithmicMinimum {
        &self.lower_bound
    }

    /// Evaluate the full cost breakdown of a mapping.
    ///
    /// The mapping is taken at face value: callers are expected to have
    /// validated it against the map space (invalid mappings still produce a
    /// finite cost, which is useful for penalty-based search, but the numbers
    /// are only meaningful for valid mappings).
    pub fn evaluate(&self, mapping: &Mapping) -> CostBreakdown {
        let p = &self.problem;
        let a = &self.arch;
        let nt = p.num_tensors();
        let accesses = count_accesses(p, mapping);

        let mut energy_pj = vec![vec![0.0f64; nt]; 3];
        for level in Level::ALL {
            let epa = a.level(level).energy_per_access_pj;
            for (t, e) in energy_pj[level.index()].iter_mut().enumerate() {
                *e = accesses.tensor_at(level, t) as f64 * epa;
            }
        }

        let padded_macs = mapping.padded_macs(p) as f64;
        let compute_energy_pj = padded_macs * a.mac_energy_pj;
        let total_energy_pj: f64 = energy_pj.iter().flatten().sum::<f64>() + compute_energy_pj;

        // Compute-limited time.
        let active_pes = (mapping.active_pes().min(a.num_pes)) as f64;
        let compute_cycles = padded_macs / (active_pes * a.macs_per_pe_per_cycle as f64).max(1.0);
        // Bandwidth-limited time per level.
        let mut cycles = compute_cycles;
        for level in Level::ALL {
            let bw = a.level(level).bandwidth_words_per_cycle.max(1e-9);
            let mem_cycles = accesses.total_at(level) as f64 / bw;
            if mem_cycles > cycles {
                cycles = mem_cycles;
            }
        }

        let actual_macs = p.total_macs() as f64;
        let utilization =
            ((actual_macs / cycles.max(1.0)) / a.peak_macs_per_cycle() as f64).clamp(0.0, 1.0);

        let energy_j = total_energy_pj * 1e-12;
        let delay_s = cycles * a.cycle_time_s();
        let edp = energy_j * delay_s;

        CostBreakdown {
            energy_pj,
            compute_energy_pj,
            total_energy_pj,
            cycles,
            utilization,
            edp,
            accesses,
        }
    }

    /// Convenience: just the EDP (joule-seconds) of a mapping.
    pub fn edp(&self, mapping: &Mapping) -> f64 {
        self.evaluate(mapping).edp
    }

    /// EDP normalized to the algorithmic minimum (≥ 1 for valid mappings,
    /// barring lower-bound slack). This is the `y`-axis of Figures 5 and 6.
    pub fn normalized_edp(&self, mapping: &Mapping) -> f64 {
        self.edp(mapping) / self.lower_bound.edp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_mapspace::MapSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> CostModel {
        CostModel::new(Architecture::example(), ProblemSpec::conv1d(128, 7))
    }

    fn space(model: &CostModel) -> MapSpace {
        MapSpace::new(model.problem().clone(), model.arch().mapping_constraints())
    }

    #[test]
    fn evaluate_produces_positive_costs() {
        let m = model();
        let cost = m.evaluate(&Mapping::minimal(m.problem()));
        assert!(cost.total_energy_pj > 0.0);
        assert!(cost.cycles > 0.0);
        assert!(cost.edp > 0.0);
        assert!(cost.utilization > 0.0 && cost.utilization <= 1.0);
    }

    #[test]
    fn meta_statistics_length_matches_paper() {
        // 3 tensors (conv) -> 3*3 + 3 = 12 outputs; 4 tensors -> 15.
        let m = model();
        let cost = m.evaluate(&Mapping::minimal(m.problem()));
        assert_eq!(cost.meta_statistics().len(), 12);
    }

    #[test]
    fn edp_equals_energy_times_delay() {
        let m = model();
        let cost = m.evaluate(&Mapping::minimal(m.problem()));
        let expect = cost.total_energy_pj * 1e-12 * cost.delay_s(m.arch());
        assert!((cost.edp - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn valid_mappings_never_beat_lower_bound_energy() {
        let m = model();
        let s = space(&m);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let mapping = s.random_mapping(&mut rng);
            let cost = m.evaluate(&mapping);
            assert!(
                cost.total_energy_pj >= m.lower_bound().energy_pj * 0.999,
                "energy {} below lower bound {}",
                cost.total_energy_pj,
                m.lower_bound().energy_pj
            );
            assert!(cost.cycles >= m.lower_bound().cycles * 0.999);
            assert!(m.normalized_edp(&mapping) >= 0.999);
        }
    }

    #[test]
    fn parallelism_reduces_cycles() {
        let m = model();
        let mut serial = Mapping::minimal(m.problem());
        serial.tiles[0] = vec![4, 7];
        serial.tiles[1] = vec![16, 7];
        let mut par = serial.clone();
        par.parallel = vec![8, 1];
        par.tiles[1] = vec![32, 7];
        let cs = m.evaluate(&serial);
        let cp = m.evaluate(&par);
        assert!(
            cp.cycles < cs.cycles,
            "parallel mapping should be faster: {} vs {}",
            cp.cycles,
            cs.cycles
        );
    }

    #[test]
    fn better_reuse_reduces_energy() {
        let m = model();
        // Tiny L2 tiles (lots of refetch) vs. large L2 tiles (good reuse).
        let mut small = Mapping::minimal(m.problem());
        small.tiles[0] = vec![1, 1];
        small.tiles[1] = vec![2, 1];
        let mut large = Mapping::minimal(m.problem());
        large.tiles[0] = vec![4, 7];
        large.tiles[1] = vec![61, 7];
        let cs = m.evaluate(&small);
        let cl = m.evaluate(&large);
        assert!(
            cl.total_energy_pj < cs.total_energy_pj,
            "better reuse should reduce energy: {} vs {}",
            cl.total_energy_pj,
            cs.total_energy_pj
        );
    }

    #[test]
    fn cost_depends_on_loop_order() {
        let m = model();
        let mut a = Mapping::minimal(m.problem());
        a.tiles[0] = vec![1, 1];
        a.tiles[1] = vec![4, 1];
        let mut b = a.clone();
        b.loop_orders[2] = vec![1, 0];
        let ca = m.evaluate(&a);
        let cb = m.evaluate(&b);
        assert_ne!(ca.total_energy_pj, cb.total_energy_pj);
    }

    #[test]
    fn cost_surface_is_non_smooth() {
        // Scanning a tile size produces at least one large relative jump
        // between adjacent sizes (the "spiky" surface of Figure 3).
        let m = model();
        let s = space(&m);
        let mut prev: Option<f64> = None;
        let mut max_jump: f64 = 0.0;
        for t in 1..=61u64 {
            let mut mapping = Mapping::minimal(m.problem());
            mapping.tiles[0] = vec![t.min(8), 7];
            mapping.tiles[1] = vec![t * 2, 7];
            s.repair(&mut mapping);
            let edp = m.edp(&mapping);
            if let Some(p) = prev {
                let jump = (edp - p).abs() / p.min(edp);
                if jump > max_jump {
                    max_jump = jump;
                }
            }
            prev = Some(edp);
        }
        assert!(
            max_jump > 0.05,
            "expected a non-smooth cost surface, max relative jump {max_jump}"
        );
    }

    #[test]
    fn evaluate_is_deterministic() {
        let m = model();
        let s = space(&m);
        let mut rng = StdRng::seed_from_u64(42);
        let mapping = s.random_mapping(&mut rng);
        let a = m.evaluate(&mapping);
        let b = m.evaluate(&mapping);
        assert_eq!(a, b);
    }
}
