//! Loop-nest reuse analysis: per-level, per-tensor access counting.
//!
//! This module implements the core of the analytical cost model. Given a
//! mapping's tiled loop nest, it determines, for every tensor and every
//! buffer level, how many words must cross that level boundary. The analysis
//! follows the standard stationarity argument used by Timeloop-class models:
//!
//! * a tensor's tile at level ℓ stays resident while loops *irrelevant* to
//!   the tensor iterate **innermost** of the loops above ℓ (temporal reuse);
//! * as soon as a relevant loop iterates — or an irrelevant loop sits outside
//!   a relevant one — the tile must be refetched;
//! * spatial parallelism over a dimension irrelevant to a tensor lets the NoC
//!   multicast/broadcast the same data to many PEs, so the shared-buffer read
//!   count does not scale with the fan-out for that tensor.

use mm_mapspace::mapping::{Level, Mapping};
use mm_mapspace::problem::{DimId, ProblemSpec};
use serde::{Deserialize, Serialize};

/// One temporal loop of the tiled nest: the dimension it iterates and its
/// trip count, at a particular level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopSpec {
    /// Problem dimension iterated by the loop.
    pub dim: DimId,
    /// Trip count (number of iterations).
    pub trips: u64,
}

/// The tiled loop nest implied by a mapping, split by level.
/// Loops within each level are ordered outermost-first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TiledNest {
    /// Temporal loops at the DRAM level (outermost).
    pub dram_loops: Vec<LoopSpec>,
    /// Temporal loops at the L2 level.
    pub l2_loops: Vec<LoopSpec>,
    /// Temporal loops at the L1 level (innermost).
    pub l1_loops: Vec<LoopSpec>,
    /// Spatial fan-out per dimension (unordered).
    pub spatial: Vec<(DimId, u64)>,
}

impl TiledNest {
    /// Lower a mapping into its tiled loop nest for `problem`.
    pub fn from_mapping(problem: &ProblemSpec, m: &Mapping) -> Self {
        let mut nest = TiledNest::default();
        nest.fill_from_mapping(problem, m);
        nest
    }

    /// In-place form of [`from_mapping`](Self::from_mapping): rewrite this
    /// nest for `m`, reusing the loop vectors. The allocation-free lowering
    /// used by `CostModel::evaluate_into`.
    pub fn fill_from_mapping(&mut self, problem: &ProblemSpec, m: &Mapping) {
        let fill = |out: &mut Vec<LoopSpec>, level: Level| {
            out.clear();
            out.extend(m.order(level).iter().map(|&d| LoopSpec {
                dim: DimId(d),
                trips: m.trip_count(problem, level, DimId(d)),
            }));
        };
        fill(&mut self.dram_loops, Level::Dram);
        fill(&mut self.l2_loops, Level::L2);
        fill(&mut self.l1_loops, Level::L1);
        self.spatial.clear();
        self.spatial
            .extend(problem.dims().map(|d| (d, m.parallelism(d))));
    }

    /// All temporal loops above the L1 tile (DRAM then L2), outermost first.
    pub fn loops_above_l1(&self) -> Vec<LoopSpec> {
        let mut v = self.dram_loops.clone();
        v.extend(self.l2_loops.iter().copied());
        v
    }

    /// In-place form of [`loops_above_l1`](Self::loops_above_l1).
    pub fn loops_above_l1_into(&self, out: &mut Vec<LoopSpec>) {
        out.clear();
        out.extend_from_slice(&self.dram_loops);
        out.extend_from_slice(&self.l2_loops);
    }

    /// Total trip-count product of a slice of loops.
    pub fn product(loops: &[LoopSpec]) -> u128 {
        loops.iter().map(|l| l.trips as u128).product()
    }
}

/// Result of the stationarity analysis for one tensor over one loop block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseFactors {
    /// Number of times the tensor's tile below this loop block must be
    /// (re)loaded: the product of all loop trip counts except the innermost
    /// contiguous run of irrelevant loops.
    pub reloads: u128,
    /// Number of *distinct* tiles touched: the product of relevant loop trip
    /// counts only. `reloads >= distinct`; the difference is redundant
    /// refetching (for outputs: partial-sum spills and refills).
    pub distinct: u128,
}

/// Analyze one loop block (outermost first) for a tensor whose relevance to
/// each dimension is given by `relevant`.
pub fn reuse_factors(loops: &[LoopSpec], relevant: impl Fn(DimId) -> bool) -> ReuseFactors {
    // Find the innermost relevant loop with a trip count > 1; loops strictly
    // inside it that are irrelevant give temporal reuse (no reloads).
    let last_relevant = loops
        .iter()
        .rposition(|l| relevant(l.dim) && l.trips > 1)
        .map(|i| i + 1)
        .unwrap_or(0);
    let reloads = loops[..last_relevant]
        .iter()
        .map(|l| l.trips as u128)
        .product::<u128>()
        .max(1);
    let distinct = loops
        .iter()
        .filter(|l| relevant(l.dim))
        .map(|l| l.trips as u128)
        .product::<u128>()
        .max(1);
    ReuseFactors { reloads, distinct }
}

/// Per-tensor, per-level word-transfer counts produced by the reuse analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Words read from DRAM (per tensor).
    pub dram_reads: Vec<u128>,
    /// Words written to DRAM (per tensor; nonzero only for outputs).
    pub dram_writes: Vec<u128>,
    /// Words read from the shared L2 buffer (per tensor).
    pub l2_reads: Vec<u128>,
    /// Words written into the shared L2 buffer (per tensor).
    pub l2_writes: Vec<u128>,
    /// Words read from the private L1 buffers, summed over PEs (per tensor).
    pub l1_reads: Vec<u128>,
    /// Words written into the private L1 buffers, summed over PEs (per tensor).
    pub l1_writes: Vec<u128>,
}

impl AccessCounts {
    /// Total accesses (reads + writes) at a level, summed over tensors.
    pub fn total_at(&self, level: Level) -> u128 {
        let (r, w) = match level {
            Level::L1 => (&self.l1_reads, &self.l1_writes),
            Level::L2 => (&self.l2_reads, &self.l2_writes),
            Level::Dram => (&self.dram_reads, &self.dram_writes),
        };
        r.iter().sum::<u128>() + w.iter().sum::<u128>()
    }

    /// Total accesses (reads + writes) at a level for one tensor.
    pub fn tensor_at(&self, level: Level, t: usize) -> u128 {
        match level {
            Level::L1 => self.l1_reads[t] + self.l1_writes[t],
            Level::L2 => self.l2_reads[t] + self.l2_writes[t],
            Level::Dram => self.dram_reads[t] + self.dram_writes[t],
        }
    }

    /// Reset every per-tensor count vector to `nt` zeros, reusing capacity.
    pub fn reset(&mut self, nt: usize) {
        for v in [
            &mut self.dram_reads,
            &mut self.dram_writes,
            &mut self.l2_reads,
            &mut self.l2_writes,
            &mut self.l1_reads,
            &mut self.l1_writes,
        ] {
            v.clear();
            v.resize(nt, 0);
        }
    }
}

/// Run the full reuse analysis for `mapping` on `problem`.
pub fn count_accesses(problem: &ProblemSpec, mapping: &Mapping) -> AccessCounts {
    let nest = TiledNest::from_mapping(problem, mapping);
    let loops_above_l1 = nest.loops_above_l1();
    let mut counts = AccessCounts::default();
    count_accesses_into(problem, mapping, &nest, &loops_above_l1, &mut counts);
    counts
}

/// In-place form of [`count_accesses`]: run the reuse analysis with a
/// caller-provided (already lowered) `nest` and its `loops_above_l1` slice,
/// writing into `counts`. Allocation-free once `counts` has warmed up to the
/// problem's tensor count.
pub fn count_accesses_into(
    problem: &ProblemSpec,
    mapping: &Mapping,
    nest: &TiledNest,
    loops_above_l1: &[LoopSpec],
    counts: &mut AccessCounts,
) {
    let nt = problem.num_tensors();
    let out_idx = problem.output_tensor();
    let padded_macs = mapping.padded_macs(problem);
    let active_pes = mapping.active_pes() as u128;
    counts.reset(nt);

    for (t, tensor) in problem.tensors.iter().enumerate() {
        let relevant = |d: DimId| tensor.is_relevant(d);
        let is_output = t == out_idx;

        // Footprints.
        let l1_fp = mapping.l1_footprint(problem, t) as u128;
        // Spatial footprint at L2-read granularity: extents grow only along
        // dimensions relevant to the tensor (irrelevant spatial fan-out is a
        // multicast of the same words).
        let spatial_fp = tensor.footprint(|d| {
            mapping
                .l1_tile(d)
                .saturating_mul(mapping.parallelism(d))
                .min(problem.dim_size(d).max(1))
        }) as u128;
        let l2_fp = mapping.l2_footprint(problem, t) as u128;

        // --- DRAM <-> L2 boundary: governed by the DRAM-level loops.
        let dram = reuse_factors(&nest.dram_loops, relevant);
        if is_output {
            // Each (re)load of the output L2 tile implies a write-back; loads
            // beyond the first per distinct tile also require re-reading the
            // previously spilled partial sums.
            counts.dram_writes[t] = dram.reloads * l2_fp;
            counts.dram_reads[t] = dram.reloads.saturating_sub(dram.distinct) * l2_fp;
            // Writing back to DRAM reads the tile out of L2.
            counts.l2_reads[t] += dram.reloads * l2_fp;
            // Re-filling spilled partials writes them back into L2.
            counts.l2_writes[t] += dram.reloads.saturating_sub(dram.distinct) * l2_fp;
        } else {
            counts.dram_reads[t] = dram.reloads * l2_fp;
            // Fills coming from DRAM are writes into L2.
            counts.l2_writes[t] += dram.reloads * l2_fp;
        }

        // --- L2 <-> L1 boundary: governed by all loops above L1.
        let inner = reuse_factors(loops_above_l1, relevant);
        if is_output {
            // PEs push completed/partial output tiles up into L2 …
            counts.l2_writes[t] += inner.reloads * spatial_fp;
            // … and pull previously accumulated partials back down when the
            // same tile is revisited.
            counts.l2_reads[t] += inner.reloads.saturating_sub(inner.distinct) * spatial_fp;
            // L1 side of the same transfers.
            counts.l1_reads[t] += inner.reloads * l1_fp * active_pes;
            counts.l1_writes[t] +=
                inner.reloads.saturating_sub(inner.distinct) * l1_fp * active_pes;
        } else {
            counts.l2_reads[t] += inner.reloads * spatial_fp;
            // Every PE stores its own copy of the (possibly multicast) tile.
            counts.l1_writes[t] += inner.reloads * l1_fp * active_pes;
        }

        // --- L1 <-> datapath: one operand read per MAC; outputs are
        // read-modify-write.
        if is_output {
            counts.l1_reads[t] += padded_macs;
            counts.l1_writes[t] += padded_macs;
        } else {
            counts.l1_reads[t] += padded_macs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_mapspace::{MapSpace, MappingConstraints};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv() -> ProblemSpec {
        ProblemSpec::conv1d(64, 5)
    }

    #[test]
    fn reuse_factors_basic_stationarity() {
        // Loops (outer->inner): A(4), B(3) where the tensor depends only on A.
        let loops = [
            LoopSpec {
                dim: DimId(0),
                trips: 4,
            },
            LoopSpec {
                dim: DimId(1),
                trips: 3,
            },
        ];
        let f = reuse_factors(&loops, |d| d == DimId(0));
        // B innermost and irrelevant -> reused; only 4 reloads.
        assert_eq!(f.reloads, 4);
        assert_eq!(f.distinct, 4);

        // Swap the order: irrelevant loop outside forces refetching.
        let loops = [
            LoopSpec {
                dim: DimId(1),
                trips: 3,
            },
            LoopSpec {
                dim: DimId(0),
                trips: 4,
            },
        ];
        let f = reuse_factors(&loops, |d| d == DimId(0));
        assert_eq!(f.reloads, 12);
        assert_eq!(f.distinct, 4);
    }

    #[test]
    fn reuse_factors_no_relevant_loops() {
        let loops = [LoopSpec {
            dim: DimId(1),
            trips: 9,
        }];
        let f = reuse_factors(&loops, |d| d == DimId(0));
        assert_eq!(f.reloads, 1);
        assert_eq!(f.distinct, 1);
    }

    #[test]
    fn reuse_factors_ignores_unit_trip_relevant_loops() {
        let loops = [
            LoopSpec {
                dim: DimId(0),
                trips: 1,
            },
            LoopSpec {
                dim: DimId(1),
                trips: 5,
            },
        ];
        let f = reuse_factors(&loops, |d| d == DimId(0));
        assert_eq!(f.reloads, 1);
        assert_eq!(f.distinct, 1);
    }

    #[test]
    fn minimal_mapping_access_counts_are_positive() {
        let p = conv();
        let m = Mapping::minimal(&p);
        let c = count_accesses(&p, &m);
        for t in 0..p.num_tensors() {
            assert!(c.l1_reads[t] > 0, "tensor {t} should be read at L1");
        }
        assert!(c.total_at(Level::Dram) > 0);
        assert!(c.total_at(Level::L2) > 0);
    }

    #[test]
    fn inputs_are_never_written_to_dram() {
        let p = conv();
        let mut rng = StdRng::seed_from_u64(3);
        let space = MapSpace::new(p.clone(), MappingConstraints::example());
        for _ in 0..20 {
            let m = space.random_mapping(&mut rng);
            let c = count_accesses(&p, &m);
            assert_eq!(c.dram_writes[0], 0);
            assert_eq!(c.dram_writes[1], 0);
            assert!(c.dram_writes[p.output_tensor()] > 0);
        }
    }

    #[test]
    fn dram_reads_at_least_tensor_size() {
        // Every input word must be read from DRAM at least once.
        let p = conv();
        let mut rng = StdRng::seed_from_u64(5);
        let space = MapSpace::new(p.clone(), MappingConstraints::example());
        for _ in 0..20 {
            let m = space.random_mapping(&mut rng);
            let c = count_accesses(&p, &m);
            for t in 0..p.num_tensors() {
                if t == p.output_tensor() {
                    assert!(c.dram_writes[t] >= p.tensor_size(t) as u128);
                } else {
                    assert!(
                        c.dram_reads[t] >= p.tensor_size(t) as u128,
                        "tensor {t}: {} < {}",
                        c.dram_reads[t],
                        p.tensor_size(t)
                    );
                }
            }
        }
    }

    #[test]
    fn larger_l2_tiles_reduce_dram_traffic_for_stationary_tensor() {
        // With the full problem resident in L2 (tiles = full dims), each
        // tensor is read from DRAM exactly once.
        let p = conv();
        let mut m = Mapping::minimal(&p);
        m.tiles[1] = vec![60, 5];
        let c = count_accesses(&p, &m);
        assert_eq!(c.dram_reads[0], p.tensor_size(0) as u128);
        assert_eq!(c.dram_reads[1], p.tensor_size(1) as u128);
        assert_eq!(c.dram_writes[2], p.tensor_size(2) as u128);
    }

    #[test]
    fn loop_order_changes_traffic() {
        // Tiny L2 tiles force refetch; which tensor suffers depends on the
        // DRAM loop order.
        let p = conv();
        let mut a = Mapping::minimal(&p);
        a.tiles[0] = vec![1, 1];
        a.tiles[1] = vec![4, 1];
        a.loop_orders[2] = vec![0, 1]; // X outer, R inner
        let mut b = a.clone();
        b.loop_orders[2] = vec![1, 0]; // R outer, X inner
        let ca = count_accesses(&p, &a);
        let cb = count_accesses(&p, &b);
        assert_ne!(
            ca.dram_reads, cb.dram_reads,
            "loop order must influence DRAM traffic"
        );
    }

    #[test]
    fn multicast_keeps_l2_reads_constant_for_irrelevant_parallelism() {
        // Parallelizing over X does not increase L2 reads of the filter F
        // (it is broadcast), but does increase L1 fill writes.
        let p = conv();
        let mut serial = Mapping::minimal(&p);
        serial.tiles[0] = vec![2, 5];
        serial.tiles[1] = vec![8, 5];
        let mut par = serial.clone();
        par.parallel = vec![4, 1];
        par.tiles[1] = vec![8, 5];
        let cs = count_accesses(&p, &serial);
        let cp = count_accesses(&p, &par);
        let f = 1; // filter tensor index
        assert_eq!(cs.l2_reads[f], cp.l2_reads[f]);
        assert!(cp.l1_writes[f] > cs.l1_writes[f]);
    }

    #[test]
    fn total_at_matches_tensor_sum() {
        let p = conv();
        let m = Mapping::minimal(&p);
        let c = count_accesses(&p, &m);
        for level in Level::ALL {
            let total: u128 = (0..p.num_tensors()).map(|t| c.tensor_at(level, t)).sum();
            assert_eq!(total, c.total_at(level));
        }
    }
}
