//! Architecture description: the hardware parameters that, together with a
//! mapping, determine cost.
//!
//! The template mirrors the accelerator of Figure 2 / Section 5.1.2: `P`
//! processing elements with private L1 buffers, a shared banked L2 buffer,
//! and DRAM, plus datapath and clock parameters. Per-access energies follow
//! the usual technology-scaling intuition (register-file-sized L1 ≪ SRAM L2 ≪
//! DRAM), which is all the search-method comparison depends on.

use mm_mapspace::mapping::Level;
use mm_mapspace::MappingConstraints;
use serde::{Deserialize, Serialize};

/// Parameters of one memory level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemLevelSpec {
    /// Capacity in data words (`u64::MAX` for DRAM, i.e. effectively
    /// unbounded).
    pub capacity_words: u64,
    /// Number of allocatable banks (1 for DRAM).
    pub banks: u64,
    /// Energy per word accessed, in picojoules.
    pub energy_per_access_pj: f64,
    /// Sustained bandwidth in words per cycle (aggregate).
    pub bandwidth_words_per_cycle: f64,
}

/// A complete accelerator description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Human-readable name.
    pub name: String,
    /// Number of processing elements.
    pub num_pes: u64,
    /// Multiply-accumulates each PE can perform per cycle.
    pub macs_per_pe_per_cycle: u64,
    /// Energy of a single MAC operation, in picojoules.
    pub mac_energy_pj: f64,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Word size in bytes (all tensors use the same word size).
    pub word_bytes: u64,
    /// Private per-PE buffer (innermost level).
    pub l1: MemLevelSpec,
    /// Shared on-chip buffer.
    pub l2: MemLevelSpec,
    /// Off-chip DRAM.
    pub dram: MemLevelSpec,
}

impl Architecture {
    /// The accelerator evaluated in Section 5: 256 PEs at 1 GHz, 64 KB private
    /// L1 per PE, 512 KB shared L2. Energy-per-access values are
    /// representative 45 nm-class numbers (≈1 pJ register-file word, ≈6 pJ
    /// large SRAM word, ≈200 pJ DRAM word, ≈1 pJ MAC).
    pub fn paper_accelerator() -> Self {
        Architecture {
            name: "mind-mappings-eval-256pe".to_string(),
            num_pes: 256,
            macs_per_pe_per_cycle: 1,
            mac_energy_pj: 1.0,
            clock_ghz: 1.0,
            word_bytes: 4,
            l1: MemLevelSpec {
                capacity_words: 64 * 1024 / 4,
                banks: 16,
                energy_per_access_pj: 1.2,
                bandwidth_words_per_cycle: 2.0 * 256.0,
            },
            l2: MemLevelSpec {
                capacity_words: 512 * 1024 / 4,
                banks: 32,
                energy_per_access_pj: 6.0,
                bandwidth_words_per_cycle: 64.0,
            },
            dram: MemLevelSpec {
                capacity_words: u64::MAX,
                banks: 1,
                energy_per_access_pj: 200.0,
                bandwidth_words_per_cycle: 16.0,
            },
        }
    }

    /// A small accelerator for unit tests and doc examples (16 PEs, small
    /// buffers) so that exhaustive-ish checks stay fast.
    pub fn example() -> Self {
        Architecture {
            name: "example-16pe".to_string(),
            num_pes: 16,
            macs_per_pe_per_cycle: 1,
            mac_energy_pj: 1.0,
            clock_ghz: 1.0,
            word_bytes: 4,
            l1: MemLevelSpec {
                capacity_words: 1024,
                banks: 8,
                energy_per_access_pj: 1.0,
                bandwidth_words_per_cycle: 32.0,
            },
            l2: MemLevelSpec {
                capacity_words: 16 * 1024,
                banks: 16,
                energy_per_access_pj: 5.0,
                bandwidth_words_per_cycle: 16.0,
            },
            dram: MemLevelSpec {
                capacity_words: u64::MAX,
                banks: 1,
                energy_per_access_pj: 200.0,
                bandwidth_words_per_cycle: 8.0,
            },
        }
    }

    /// The memory level spec for a [`Level`].
    pub fn level(&self, level: Level) -> &MemLevelSpec {
        match level {
            Level::L1 => &self.l1,
            Level::L2 => &self.l2,
            Level::Dram => &self.dram,
        }
    }

    /// Energy, in picojoules, to move one word through every level of the
    /// (inclusive) hierarchy once: the per-word cost used by the algorithmic
    /// minimum (Section 4.1.3 / Appendix A).
    pub fn energy_per_word_through_hierarchy_pj(&self) -> f64 {
        self.l1.energy_per_access_pj + self.l2.energy_per_access_pj + self.dram.energy_per_access_pj
    }

    /// Peak MACs per cycle across the whole accelerator.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.num_pes * self.macs_per_pe_per_cycle
    }

    /// Seconds per cycle.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / (self.clock_ghz * 1e9)
    }

    /// The subset of parameters that constrain mapping validity, shared with
    /// `mm-mapspace`.
    pub fn mapping_constraints(&self) -> MappingConstraints {
        MappingConstraints {
            num_pes: self.num_pes,
            l1_capacity_words: self.l1.capacity_words,
            l2_capacity_words: self.l2.capacity_words,
            l1_banks: self.l1.banks,
            l2_banks: self.l2.banks,
        }
    }
}

impl Default for Architecture {
    fn default() -> Self {
        Self::paper_accelerator()
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} PEs @ {} GHz, L1 {} KB/PE, L2 {} KB)",
            self.name,
            self.num_pes,
            self.clock_ghz,
            self.l1.capacity_words * self.word_bytes / 1024,
            self.l2.capacity_words * self.word_bytes / 1024,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_accelerator_matches_section_5() {
        let a = Architecture::paper_accelerator();
        assert_eq!(a.num_pes, 256);
        assert_eq!(a.clock_ghz, 1.0);
        // 64 KB L1, 512 KB L2 with 4-byte words.
        assert_eq!(a.l1.capacity_words * a.word_bytes, 64 * 1024);
        assert_eq!(a.l2.capacity_words * a.word_bytes, 512 * 1024);
    }

    #[test]
    fn energy_ordering_is_physical() {
        for a in [Architecture::paper_accelerator(), Architecture::example()] {
            assert!(a.l1.energy_per_access_pj < a.l2.energy_per_access_pj);
            assert!(a.l2.energy_per_access_pj < a.dram.energy_per_access_pj);
        }
    }

    #[test]
    fn mapping_constraints_are_consistent() {
        let a = Architecture::paper_accelerator();
        let c = a.mapping_constraints();
        assert_eq!(c.num_pes, a.num_pes);
        assert_eq!(c.l1_capacity_words, a.l1.capacity_words);
        assert_eq!(c.l2_capacity_words, a.l2.capacity_words);
    }

    #[test]
    fn hierarchy_energy_is_sum_of_levels() {
        let a = Architecture::example();
        assert!(
            (a.energy_per_word_through_hierarchy_pj() - (1.0 + 5.0 + 200.0)).abs() < f64::EPSILON
        );
    }

    #[test]
    fn display_mentions_pe_count() {
        let a = Architecture::paper_accelerator();
        assert!(a.to_string().contains("256"));
    }

    #[test]
    fn level_lookup() {
        let a = Architecture::example();
        assert_eq!(a.level(Level::L1).capacity_words, 1024);
        assert_eq!(a.level(Level::Dram).banks, 1);
        assert_eq!(a.peak_macs_per_cycle(), 16);
        assert!((a.cycle_time_s() - 1e-9).abs() < 1e-15);
    }
}
