//! # mm-accel
//!
//! A Timeloop-style analytical cost model for flexible spatial accelerators,
//! used as the reference cost function `f(a, m)` of *Mind Mappings*
//! (ASPLOS 2021, Sections 2.3 and 5.1.2).
//!
//! The accelerator template matches Figure 2 / Section 5.1.2 of the paper: an
//! array of processing elements (PEs), each with a private L1 buffer, sharing
//! a banked L2 buffer below DRAM, connected by a NoC that can unicast,
//! multicast, or broadcast operands. Given a [`ProblemSpec`] and a
//! [`Mapping`], [`CostModel::evaluate`] performs a loop-nest reuse analysis
//! (per-level, per-tensor access counting that is aware of loop order,
//! tiling, and spatial parallelism) and produces a [`CostBreakdown`]: energy
//! per level per tensor, total energy, execution cycles, compute utilization,
//! and energy-delay product (EDP).
//!
//! The cost surface over mappings is deliberately **non-smooth and
//! non-convex** — buffer-capacity cliffs, discrete loop-order decisions, and
//! integer tile effects — which is exactly the property that motivates the
//! differentiable surrogate of Mind Mappings.
//!
//! ```
//! use mm_accel::{Architecture, CostModel};
//! use mm_mapspace::{Mapping, ProblemSpec};
//!
//! let problem = ProblemSpec::conv1d(256, 9);
//! let arch = Architecture::example();
//! let model = CostModel::new(arch, problem);
//! let mapping = Mapping::minimal(model.problem());
//! let cost = model.evaluate(&mapping);
//! assert!(cost.edp > 0.0);
//! ```
//!
//! [`ProblemSpec`]: mm_mapspace::ProblemSpec
//! [`Mapping`]: mm_mapspace::Mapping

pub mod arch;
pub mod bound;
pub mod cost;
pub mod reuse;

pub use arch::{Architecture, MemLevelSpec};
pub use bound::AlgorithmicMinimum;
pub use cost::{BatchCosts, CostBreakdown, CostModel, CostSummary, EvalScratch};

#[cfg(test)]
mod tests {
    #[test]
    fn crate_reexports_compile() {
        let _ = crate::Architecture::example();
    }
}
