//! Reinforcement-learning baseline: a deep-deterministic-policy-gradient
//! (DDPG) actor–critic agent, following the HAQ-derived setup described in
//! Appendix A.
//!
//! The mapping problem is modelled as an MDP whose states are encoded
//! mappings. The actor proposes a continuous perturbation of the current
//! (normalized) mapping vector; the environment projects the perturbed vector
//! back onto the valid map space, evaluates its cost, and returns
//! `-log10(cost)` as the reward. The critic learns `Q(s, a)` and the actor is
//! updated along `∂Q/∂a`, exactly as in DDPG (actor and critic are
//! fully-connected networks, with soft-updated target copies).
//!
//! The agent is a stepwise state machine implementing [`ProposalSearch`]:
//! [`propose`](ProposalSearch::propose) runs the actor (plus exploration
//! noise) and emits the projected next mapping; the matching
//! [`report`](ProposalSearch::report) turns the evaluated cost into the
//! reward, stores the transition, and performs one learning step. Each
//! proposal depends on the previous transition, so
//! [`ProposalSearch::lookahead`] is 1 — and the blanket impl recovers the
//! classic monolithic [`Searcher`](crate::Searcher) loop for free.
//!
//! Under a [`SyncPolicy`](crate::SyncPolicy), [`SyncAction::Adopt`]
//! re-anchors the current episode state on the shared incumbent, and
//! [`SyncAction::Restart`] additionally resets the exploration-noise
//! schedule and starts a fresh episode from the incumbent.

use mm_mapspace::{Encoding, MapSpaceView, Mapping, ProblemSpec};
use mm_nn::optim::{Adam, Optimizer};
use mm_nn::{Activation, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::proposal::{ProposalBuf, ProposalSearch};
use crate::sync::SyncAction;

/// DDPG hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// Hidden width of the actor and critic networks (the paper uses 300).
    pub hidden: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Soft target-update rate.
    pub tau: f32,
    /// Learning rate for the actor.
    pub actor_lr: f32,
    /// Learning rate for the critic.
    pub critic_lr: f32,
    /// Replay-buffer capacity.
    pub replay_capacity: usize,
    /// Mini-batch size for updates.
    pub batch_size: usize,
    /// Number of environment steps before learning starts.
    pub warmup: usize,
    /// Episode length (steps before resetting to a fresh random mapping).
    pub episode_len: usize,
    /// Scale of the actor's action in normalized state units.
    pub action_scale: f32,
    /// Initial standard deviation of the exploration noise.
    pub exploration_noise: f32,
    /// Multiplicative decay of the exploration noise per episode.
    pub noise_decay: f32,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            hidden: 64,
            gamma: 0.95,
            tau: 0.01,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            replay_capacity: 4096,
            batch_size: 32,
            warmup: 64,
            episode_len: 32,
            action_scale: 0.25,
            exploration_noise: 0.4,
            noise_decay: 0.97,
        }
    }
}

/// One replay-buffer transition.
#[derive(Debug, Clone)]
struct Transition {
    state: Vec<f32>,
    action: Vec<f32>,
    reward: f32,
    next_state: Vec<f32>,
}

/// The live state of one DDPG run (networks, replay buffer, episode).
#[derive(Debug, Clone)]
struct DdpgState {
    problem: ProblemSpec,
    enc: Encoding,
    scales: Vec<f32>,
    dim: usize,
    actor: Mlp,
    critic: Mlp,
    actor_target: Mlp,
    critic_target: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    replay: Vec<Transition>,
    replay_next: usize,
    noise: f32,
    /// Normalized encoding of the current episode state.
    state_vec: Vec<f32>,
    /// The (state, action) pair of the proposal in flight (lookahead is 1).
    pending: Option<(Vec<f32>, Vec<f32>)>,
    steps_in_episode: usize,
    /// Start the next proposal from a fresh random mapping (episode reset,
    /// deferred to the next `propose` call where the map space is at hand).
    reset_pending: bool,
}

/// DDPG-style actor–critic searcher.
#[derive(Debug, Clone)]
pub struct DdpgAgent {
    config: DdpgConfig,
    state: Option<DdpgState>,
}

impl DdpgAgent {
    /// Create a DDPG agent.
    pub fn new(config: DdpgConfig) -> Self {
        DdpgAgent {
            config,
            state: None,
        }
    }
}

impl Default for DdpgAgent {
    fn default() -> Self {
        Self::new(DdpgConfig::default())
    }
}

/// Per-feature scales mapping raw encoded mapping values into roughly unit
/// range (and back).
fn feature_scales(space: &dyn MapSpaceView, enc: &Encoding) -> Vec<f32> {
    let p = space.problem();
    let d = enc.num_dims;
    let t = enc.num_tensors;
    let mut scales = Vec::with_capacity(enc.mapping_len());
    // Tile factors for 3 levels.
    for _level in 0..3 {
        for dim in 0..d {
            scales.push(p.dim_sizes[dim] as f32);
        }
    }
    // Parallelism.
    for dim in 0..d {
        scales.push((p.dim_sizes[dim].min(space.constraints().num_pes)) as f32);
    }
    // Loop-order positions.
    for _level in 0..3 {
        for _dim in 0..d {
            scales.push(d.max(1) as f32);
        }
    }
    // Buffer allocation fractions are already in [0, 1].
    scales.extend(std::iter::repeat_n(1.0, 2 * t));
    scales.iter().map(|&s| s.max(1.0)).collect()
}

fn normalize(raw: &[f32], scales: &[f32]) -> Vec<f32> {
    raw.iter().zip(scales).map(|(&v, &s)| v / s).collect()
}

fn denormalize(state: &[f32], scales: &[f32]) -> Vec<f32> {
    state.iter().zip(scales).map(|(&v, &s)| v * s).collect()
}

/// Soft update: `target ← tau · source + (1 − tau) · target`.
fn soft_update(target: &mut Mlp, source: &Mlp, tau: f32) {
    for (tl, sl) in target.layers_mut().iter_mut().zip(source.layers()) {
        for (t, s) in tl
            .weight
            .as_mut_slice()
            .iter_mut()
            .zip(sl.weight.as_slice())
        {
            *t = tau * s + (1.0 - tau) * *t;
        }
        for (t, s) in tl.bias.iter_mut().zip(&sl.bias) {
            *t = tau * s + (1.0 - tau) * *t;
        }
    }
}

impl DdpgState {
    /// The normalized encoding of `mapping`.
    fn encode(&self, mapping: &Mapping) -> Vec<f32> {
        normalize(
            &self.enc.encode_mapping(&self.problem, mapping),
            &self.scales,
        )
    }

    /// One DDPG learning step over a sampled replay mini-batch (critic TD
    /// update, actor ascent along `∂Q/∂a`, soft target updates).
    fn learn(&mut self, cfg: &DdpgConfig, rng: &mut StdRng) {
        if self.replay.len() < cfg.warmup.max(cfg.batch_size) {
            return;
        }
        let dim = self.dim;
        let batch: Vec<Transition> = (0..cfg.batch_size)
            .map(|_| self.replay[rng.gen_range(0..self.replay.len())].clone())
            .collect();

        // Critic update: y = r + gamma * Q'(s', a'(s')).
        let next_states = Matrix::from_rows(
            &batch
                .iter()
                .map(|t| t.next_state.clone())
                .collect::<Vec<_>>(),
        );
        let next_actions = self.actor_target.forward(&next_states);
        let mut next_sa_rows = Vec::with_capacity(batch.len());
        for (i, t) in batch.iter().enumerate() {
            let mut row = t.next_state.clone();
            row.extend_from_slice(next_actions.row(i));
            next_sa_rows.push(row);
        }
        let q_next = self
            .critic_target
            .forward(&Matrix::from_rows(&next_sa_rows));
        let targets: Vec<Vec<f32>> = batch
            .iter()
            .enumerate()
            .map(|(i, t)| vec![t.reward + cfg.gamma * q_next.get(i, 0)])
            .collect();
        let sa_rows: Vec<Vec<f32>> = batch
            .iter()
            .map(|t| {
                let mut row = t.state.clone();
                row.extend_from_slice(&t.action);
                row
            })
            .collect();
        let sa = Matrix::from_rows(&sa_rows);
        let target_m = Matrix::from_rows(&targets);
        let cache = self.critic.forward_cached(&sa);
        let loss_grad = {
            // MSE gradient.
            let mut g = cache.output().clone();
            for (gv, tv) in g.as_mut_slice().iter_mut().zip(target_m.as_slice()) {
                *gv = 2.0 * (*gv - tv) / batch.len() as f32;
            }
            g
        };
        let (critic_grads, _) = self.critic.backward(&cache, &loss_grad);
        self.critic_opt.step(&mut self.critic, &critic_grads);

        // Actor update: ascend ∂Q(s, π(s))/∂θ_π.
        let states = Matrix::from_rows(&batch.iter().map(|t| t.state.clone()).collect::<Vec<_>>());
        let actor_cache = self.actor.forward_cached(&states);
        let proposed = actor_cache.output().clone();
        let mut sa_pi_rows = Vec::with_capacity(batch.len());
        for (i, t) in batch.iter().enumerate() {
            let mut row = t.state.clone();
            row.extend_from_slice(proposed.row(i));
            sa_pi_rows.push(row);
        }
        let sa_pi = Matrix::from_rows(&sa_pi_rows);
        let critic_cache = self.critic.forward_cached(&sa_pi);
        // dQ/d[s;a], we want -dQ/da (gradient ascent on Q).
        let ones = Matrix::from_vec(batch.len(), 1, vec![-1.0 / batch.len() as f32; batch.len()]);
        let (_, grad_sa) = self.critic.backward(&critic_cache, &ones);
        let mut grad_action = Matrix::zeros(batch.len(), dim);
        for i in 0..batch.len() {
            for j in 0..dim {
                grad_action.set(i, j, grad_sa.get(i, dim + j));
            }
        }
        let (actor_grads, _) = self.actor.backward(&actor_cache, &grad_action);
        self.actor_opt.step(&mut self.actor, &actor_grads);

        // Soft-update the targets.
        soft_update(&mut self.actor_target, &self.actor, cfg.tau);
        soft_update(&mut self.critic_target, &self.critic, cfg.tau);
    }
}

impl ProposalSearch for DdpgAgent {
    fn name(&self) -> &str {
        "RL"
    }

    fn begin(&mut self, space: &dyn MapSpaceView, _horizon: Option<u64>, rng: &mut StdRng) {
        let cfg = self.config;
        let problem = space.problem().clone();
        let enc = Encoding::for_problem(&problem);
        let dim = enc.mapping_len();
        let scales = feature_scales(space, &enc);

        let actor = Mlp::with_activations(
            &[dim, cfg.hidden, cfg.hidden, dim],
            Activation::Relu,
            Activation::Tanh,
            rng,
        );
        let critic = Mlp::new(&[2 * dim, cfg.hidden, cfg.hidden, 1], rng);
        let actor_target = actor.clone();
        let critic_target = critic.clone();

        let current = space.random_mapping(rng);
        let raw = enc.encode_mapping(&problem, &current);
        let state_vec = normalize(&raw, &scales);
        self.state = Some(DdpgState {
            problem,
            enc,
            scales,
            dim,
            actor,
            critic,
            actor_target,
            critic_target,
            actor_opt: Adam::new(cfg.actor_lr),
            critic_opt: Adam::new(cfg.critic_lr),
            replay: Vec::with_capacity(cfg.replay_capacity),
            replay_next: 0,
            noise: cfg.exploration_noise,
            state_vec,
            pending: None,
            steps_in_episode: 0,
            reset_pending: false,
        });
    }

    fn propose(
        &mut self,
        space: &dyn MapSpaceView,
        rng: &mut StdRng,
        _max: usize,
        out: &mut ProposalBuf,
    ) {
        let cfg = self.config;
        // mm-lint: allow(panic): calling the strategy outside a begin()
        // session is a driver bug, not a recoverable state.
        let state = self.state.as_mut().expect("begin() not called");
        if state.pending.is_some() {
            return;
        }
        if state.reset_pending {
            state.reset_pending = false;
            let fresh = space.random_mapping(rng);
            state.state_vec = state.encode(&fresh);
        }

        // Actor proposes a perturbation; add exploration noise.
        let mut action = state.actor.predict(&state.state_vec);
        for a in &mut action {
            *a = (*a + rng.gen_range(-1.0f32..1.0) * state.noise).clamp(-1.0, 1.0);
        }
        // Environment step: apply the action in normalized space and
        // project back to a valid mapping.
        let mut next_raw: Vec<f32> = state
            .state_vec
            .iter()
            .zip(&action)
            .map(|(&s, &a)| s + a * cfg.action_scale)
            .collect();
        next_raw = denormalize(&next_raw, &state.scales);
        let next_mapping = match space.project(&next_raw) {
            Ok(m) => m,
            Err(_) => space.random_mapping(rng),
        };
        state.pending = Some((state.state_vec.clone(), action));
        out.push(next_mapping);
        static PROPOSED: std::sync::OnceLock<std::sync::Arc<mm_telemetry::Counter>> =
            std::sync::OnceLock::new();
        crate::tele_counter(&PROPOSED, "search.ddpg.proposed").bump(1);
    }

    fn report(&mut self, mapping: &Mapping, cost: f64, rng: &mut StdRng) {
        let cfg = self.config;
        // mm-lint: allow(panic): calling the strategy outside a begin()
        // session is a driver bug, not a recoverable state.
        let state = self.state.as_mut().expect("begin() not called");
        let Some((prev_state, action)) = state.pending.take() else {
            return;
        };
        let reward = -(cost.max(1e-300)).log10() as f32;
        let next_state = state.encode(mapping);

        // Store the transition.
        let transition = Transition {
            state: prev_state,
            action,
            reward,
            next_state: next_state.clone(),
        };
        if state.replay.len() < cfg.replay_capacity {
            state.replay.push(transition);
        } else {
            let slot = state.replay_next % cfg.replay_capacity;
            state.replay[slot] = transition;
            state.replay_next += 1;
        }

        state.learn(&cfg, rng);

        // Advance the episode.
        state.state_vec = next_state;
        state.steps_in_episode += 1;
        if state.steps_in_episode >= cfg.episode_len {
            state.steps_in_episode = 0;
            state.noise *= cfg.noise_decay;
            state.reset_pending = true;
        }
    }

    /// [`SyncAction::Adopt`] re-anchors the current episode on the shared
    /// incumbent (the next actor step starts from it);
    /// [`SyncAction::Restart`] additionally resets the exploration noise to
    /// its initial level and begins a fresh episode at the incumbent.
    fn observe_global_best(
        &mut self,
        _space: &dyn MapSpaceView,
        mapping: &Mapping,
        _cost: f64,
        action: SyncAction,
        _rng: &mut StdRng,
    ) {
        let initial_noise = self.config.exploration_noise;
        let Some(state) = self.state.as_mut() else {
            return;
        };
        state.state_vec = state.encode(mapping);
        state.reset_pending = false;
        if action == SyncAction::Restart {
            state.noise = initial_noise;
            state.steps_in_episode = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Budget, FnObjective, Searcher};
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{MapSpace, Mapping, ProblemSpec};
    use rand::SeedableRng;

    fn setup() -> (MapSpace, CostModel) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        (space, CostModel::new(arch, problem))
    }

    #[test]
    fn feature_scales_cover_encoding() {
        let (space, _) = setup();
        let enc = Encoding::for_problem(space.problem());
        let scales = feature_scales(&space, &enc);
        assert_eq!(scales.len(), enc.mapping_len());
        assert!(scales.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn normalization_roundtrip() {
        let raw = vec![10.0, 4.0, 0.5];
        let scales = vec![10.0, 2.0, 1.0];
        let n = normalize(&raw, &scales);
        assert_eq!(n, vec![1.0, 2.0, 0.5]);
        assert_eq!(denormalize(&n, &scales), raw);
    }

    #[test]
    fn soft_update_blends_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Mlp::new(&[2, 3, 1], &mut rng);
        let b = Mlp::new(&[2, 3, 1], &mut rng);
        let mut target = b.clone();
        soft_update(&mut target, &a, 1.0);
        // tau = 1 copies the source exactly.
        assert_eq!(target.layers()[0].weight, a.layers()[0].weight);
        let mut target = b.clone();
        soft_update(&mut target, &a, 0.0);
        assert_eq!(target.layers()[0].weight, b.layers()[0].weight);
    }

    #[test]
    fn agent_respects_budget_and_returns_valid_best() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut agent = DdpgAgent::new(DdpgConfig {
            warmup: 8,
            batch_size: 4,
            ..DdpgConfig::default()
        });
        let trace = agent.search(&space, &mut obj, Budget::iterations(60), &mut rng);
        assert_eq!(trace.len(), 60);
        assert!(space.is_member(trace.best_mapping.as_ref().unwrap()));
        assert!(trace.best_cost.is_finite());
    }

    #[test]
    fn proposes_one_at_a_time_until_reported() {
        let (space, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut agent = DdpgAgent::default();
        agent.begin(&space, Some(100), &mut rng);
        let mut buf = ProposalBuf::new();
        agent.propose(&space, &mut rng, 16, &mut buf);
        assert_eq!(buf.len(), 1, "DDPG is strictly sequential");
        let pending = buf[0].clone();
        assert!(space.is_member(&pending));
        buf.clear();
        agent.propose(&space, &mut rng, 16, &mut buf);
        assert!(buf.is_empty(), "no new proposal while one is in flight");
        agent.report(&pending, 1.0, &mut rng);
        agent.propose(&space, &mut rng, 16, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn restart_resets_noise_and_episode_at_the_incumbent() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut agent = DdpgAgent::new(DdpgConfig {
            episode_len: 4,
            warmup: 1000, // skip learning: this test drives episodes only
            ..DdpgConfig::default()
        });
        agent.begin(&space, Some(100), &mut rng);
        let mut buf = ProposalBuf::new();
        for _ in 0..9 {
            buf.clear();
            agent.propose(&space, &mut rng, 1, &mut buf);
            let cost = model.edp(&buf[0]);
            agent.report(&buf[0].clone(), cost, &mut rng);
        }
        let decayed = agent.state.as_ref().unwrap().noise;
        assert!(
            decayed < DdpgConfig::default().exploration_noise,
            "noise must decay over episodes"
        );

        let incumbent = space.random_mapping(&mut rng);
        agent.observe_global_best(&space, &incumbent, 1e-6, SyncAction::Restart, &mut rng);
        let state = agent.state.as_ref().unwrap();
        assert_eq!(state.noise, DdpgConfig::default().exploration_noise);
        assert_eq!(state.steps_in_episode, 0);
        assert_eq!(
            state.state_vec,
            state.encode(&incumbent),
            "episode re-anchored at the incumbent"
        );
        // Adopt keeps the (decayed-from-initial) schedule untouched.
        let mut adopted = DdpgAgent::new(DdpgConfig {
            episode_len: 4,
            warmup: 1000,
            ..DdpgConfig::default()
        });
        adopted.begin(&space, Some(100), &mut rng);
        adopted.observe_global_best(&space, &incumbent, 1e-6, SyncAction::Adopt, &mut rng);
        let state = adopted.state.as_ref().unwrap();
        assert_eq!(state.state_vec, state.encode(&incumbent));
    }
}
