// mm-lint: identity — this file feeds canonical output; the determinism rule applies.
//! Global-best synchronization policies: [`SyncPolicy`] and [`SyncAction`].
//!
//! Parallel drivers (the `mm-mapper` `Mapper`, the `mm-serve` scheduler,
//! the sharded Phase-2 search in `mm-core`) periodically surface a shared
//! incumbent — the best mapping any search unit has found so far — to every
//! searcher. *How* a searcher re-anchors on that incumbent dominates
//! iso-budget quality: blind adoption collapses diversity early, never
//! adopting wastes the information entirely, and the useful middle ground
//! depends on the search method and the remaining budget.
//!
//! [`SyncPolicy`] is the driver-side half of the protocol: at every sync
//! point it turns shard-local state (a stall counter, the budget progress,
//! the shard's own RNG stream) into an optional [`SyncAction`]. The
//! searcher-side half is
//! [`ProposalSearch::observe_global_best`](crate::ProposalSearch::observe_global_best),
//! which implements the *mechanics* of the chosen action: re-anchoring the
//! current trajectory (`Adopt`) or restarting it from the incumbent with a
//! reseeded schedule (`Restart`).
//!
//! Because the decision consumes only deterministic, shard-local inputs,
//! policies compose with deterministic orchestration: a driver that
//! delivers incumbents at deterministic rendezvous points (see
//! `mm-mapper`'s barrier rounds) keeps its reports byte-identical across
//! worker counts under every policy.

use std::fmt;
use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Interned telemetry counters for the drivers' shared sync protocol.
/// Observation only: the decision stream and its RNG draws are untouched.
fn tele_sync(kind: &str) -> &'static Arc<mm_telemetry::Counter> {
    static DECIDES: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    static ADOPTS: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    static RESTARTS: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    let (cell, name) = match kind {
        "adopts" => (&ADOPTS, "sync.adopts"),
        "restarts" => (&RESTARTS, "sync.restarts"),
        _ => (&DECIDES, "sync.decides"),
    };
    cell.get_or_init(|| mm_telemetry::counter(name))
}

/// What a searcher should do with an observed global-best mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncAction {
    /// Re-anchor the current trajectory on the incumbent (SA-style: make it
    /// the current point; GA-style: inject it into the population).
    Adopt,
    /// Restart from the incumbent with a reseeded trajectory — reset
    /// schedules (SA temperature, DDPG exploration noise, annealed
    /// injection temperature) and search outward from the incumbent again.
    Restart,
}

/// When and how a search shard re-anchors on the shared global best.
///
/// The policy is consulted at every sync point (every
/// `sync_interval` evaluations in the mapper, every completed cadence in
/// the serve scheduler) with the shard's *stall counter* (consecutive sync
/// points without a shard-local best improvement), its *budget progress*
/// in `[0, 1]`, and its own RNG stream. All inputs are shard-local and
/// deterministic, so the decision stream is too.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SyncPolicy {
    /// Never observe the global best (fully independent shards).
    #[default]
    Off,
    /// Always adopt: re-anchor on the incumbent at every sync point
    /// (today's SA-style re-anchoring, made explicit).
    Anchor,
    /// Restart a *stalled* shard from the global best with a reseeded
    /// trajectory: after `patience` consecutive sync points without a
    /// shard-local improvement, deliver [`SyncAction::Restart`].
    Restart {
        /// Consecutive non-improving sync points tolerated before the
        /// restart fires.
        patience: u64,
    },
    /// Adopt with a probability that anneals linearly over the budget:
    /// `p = start + (end - start) · progress`. A decaying schedule
    /// (`start > end`) explores greedily early and preserves diversity
    /// late; an increasing one does the opposite.
    Annealed {
        /// Adoption probability at progress 0.
        start: f64,
        /// Adoption probability at progress 1.
        end: f64,
    },
}

impl SyncPolicy {
    /// Whether the policy ever produces an action (`false` only for
    /// [`SyncPolicy::Off`]). Drivers skip sync bookkeeping entirely when
    /// this is `false`.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, SyncPolicy::Off)
    }

    /// Decide what to do at one sync point.
    ///
    /// * `stalled_syncs` — consecutive sync points without a shard-local
    ///   best improvement (0 when the shard improved since the last sync);
    /// * `progress` — fraction of the shard's evaluation budget spent,
    ///   clamped to `[0, 1]`;
    /// * `rng` — the shard's own RNG stream ([`SyncPolicy::Annealed`] draws
    ///   one sample; the other variants draw none).
    pub fn decide(
        &self,
        stalled_syncs: u64,
        progress: f64,
        rng: &mut StdRng,
    ) -> Option<SyncAction> {
        match *self {
            SyncPolicy::Off => None,
            SyncPolicy::Anchor => Some(SyncAction::Adopt),
            SyncPolicy::Restart { patience } => {
                (stalled_syncs >= patience).then_some(SyncAction::Restart)
            }
            SyncPolicy::Annealed { start, end } => {
                let t = progress.clamp(0.0, 1.0);
                let p = (start + (end - start) * t).clamp(0.0, 1.0);
                (rng.gen_range(0.0..1.0) < p).then_some(SyncAction::Adopt)
            }
        }
    }

    /// A stable, human-readable rendering used wherever the policy
    /// participates in deterministic identity: `MapperReport`
    /// canonical strings and the `mm-serve` result-cache fingerprint.
    /// Distinct policies (including distinct parameters of the same
    /// variant) always render distinctly.
    pub fn canonical_string(&self) -> String {
        match *self {
            SyncPolicy::Off => "off".to_string(),
            SyncPolicy::Anchor => "anchor".to_string(),
            SyncPolicy::Restart { patience } => format!("restart(patience={patience})"),
            SyncPolicy::Annealed { start, end } => format!("annealed(start={start},end={end})"),
        }
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical_string())
    }
}

/// Per-search-unit stall bookkeeping for the drivers' sync points.
///
/// Every parallel driver (the `mm-mapper` shard loop, the `mm-serve`
/// scheduler's jobs, the sharded Phase-2 search in `mm-core`) runs the
/// same three-step protocol at a sync point: compare the unit's own best
/// against its value at the previous sync point to update the stall
/// counter, consult [`SyncPolicy::decide`], and re-arm the patience
/// window when a [`SyncAction::Restart`] fires. `SyncState` centralizes
/// that protocol so the drivers cannot drift apart.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncState {
    stalled_syncs: u64,
    last_best: Option<f64>,
}

impl SyncState {
    /// Fresh state: no sync points seen, no best recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run one sync point: update the stall counter from `own_best` (the
    /// unit's best primary cost so far, `None` when it has none yet),
    /// consult the policy, and re-arm the counter when a restart fires so
    /// the restarted trajectory gets a full patience window before the
    /// next restart can fire.
    pub fn decide(
        &mut self,
        policy: &SyncPolicy,
        own_best: Option<f64>,
        progress: f64,
        rng: &mut StdRng,
    ) -> Option<SyncAction> {
        let improved = match (own_best, self.last_best) {
            (Some(now), Some(prev)) => now < prev,
            (Some(_), None) => true,
            _ => false,
        };
        self.stalled_syncs = if improved { 0 } else { self.stalled_syncs + 1 };
        self.last_best = own_best;
        let action = policy.decide(self.stalled_syncs, progress, rng);
        if action == Some(SyncAction::Restart) {
            self.stalled_syncs = 0;
        }
        tele_sync("decides").bump(1);
        match action {
            Some(SyncAction::Adopt) => tele_sync("adopts").bump(1),
            Some(SyncAction::Restart) => {
                tele_sync("restarts").bump(1);
                mm_telemetry::event("sync.restart", || {
                    format!("policy={policy} progress={progress:.3}")
                });
            }
            None => {}
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn off_never_acts_and_anchor_always_adopts() {
        let mut rng = StdRng::seed_from_u64(0);
        for stalled in [0, 5, 1000] {
            for progress in [0.0, 0.5, 1.0] {
                assert_eq!(SyncPolicy::Off.decide(stalled, progress, &mut rng), None);
                assert_eq!(
                    SyncPolicy::Anchor.decide(stalled, progress, &mut rng),
                    Some(SyncAction::Adopt)
                );
            }
        }
    }

    #[test]
    fn restart_fires_only_after_patience() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = SyncPolicy::Restart { patience: 3 };
        assert_eq!(p.decide(0, 0.5, &mut rng), None);
        assert_eq!(p.decide(2, 0.5, &mut rng), None);
        assert_eq!(p.decide(3, 0.5, &mut rng), Some(SyncAction::Restart));
        assert_eq!(p.decide(10, 0.5, &mut rng), Some(SyncAction::Restart));
    }

    #[test]
    fn annealed_probability_tracks_progress() {
        // p = 1 at progress 0, p = 0 at progress 1 (start=1, end=0): the
        // endpoints are decidable without sampling statistics.
        let p = SyncPolicy::Annealed {
            start: 1.0,
            end: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(p.decide(0, 0.0, &mut rng), Some(SyncAction::Adopt));
            assert_eq!(p.decide(0, 1.0, &mut rng), None);
        }
        // Out-of-range progress clamps instead of extrapolating.
        for _ in 0..50 {
            assert_eq!(p.decide(0, -3.0, &mut rng), Some(SyncAction::Adopt));
            assert_eq!(p.decide(0, 7.0, &mut rng), None);
        }
        // Mid-budget the decision is genuinely probabilistic: both outcomes
        // occur over a deterministic seeded stream.
        let adopted = (0..200)
            .filter(|_| p.decide(0, 0.5, &mut rng) == Some(SyncAction::Adopt))
            .count();
        assert!(adopted > 50 && adopted < 150, "p≈0.5, got {adopted}/200");
    }

    #[test]
    fn sync_state_rearms_patience_after_restart() {
        let mut rng = StdRng::seed_from_u64(3);
        let policy = SyncPolicy::Restart { patience: 2 };
        let mut state = SyncState::new();
        // First sighting of a best counts as an improvement.
        assert_eq!(state.decide(&policy, Some(1.0), 0.1, &mut rng), None);
        // Two consecutive non-improving sync points fire the restart…
        assert_eq!(state.decide(&policy, Some(1.0), 0.2, &mut rng), None);
        assert_eq!(
            state.decide(&policy, Some(1.0), 0.3, &mut rng),
            Some(SyncAction::Restart)
        );
        // …and the counter re-arms: the next restart needs a fresh stall
        // window instead of firing on every subsequent sync point.
        assert_eq!(state.decide(&policy, Some(1.0), 0.4, &mut rng), None);
        assert_eq!(
            state.decide(&policy, Some(1.0), 0.5, &mut rng),
            Some(SyncAction::Restart)
        );
        // An improvement resets the stall count too.
        assert_eq!(state.decide(&policy, Some(0.5), 0.6, &mut rng), None);
        assert_eq!(state.decide(&policy, Some(0.5), 0.7, &mut rng), None);
        // No best yet never counts as an improvement.
        let mut fresh = SyncState::new();
        assert_eq!(fresh.decide(&policy, None, 0.0, &mut rng), None);
        assert_eq!(
            fresh.decide(&policy, None, 0.0, &mut rng),
            Some(SyncAction::Restart)
        );
    }

    #[test]
    fn canonical_strings_are_distinct_and_stable() {
        let policies = [
            SyncPolicy::Off,
            SyncPolicy::Anchor,
            SyncPolicy::Restart { patience: 2 },
            SyncPolicy::Restart { patience: 3 },
            SyncPolicy::Annealed {
                start: 0.9,
                end: 0.1,
            },
            SyncPolicy::Annealed {
                start: 0.5,
                end: 0.1,
            },
        ];
        let rendered: Vec<String> = policies.iter().map(SyncPolicy::canonical_string).collect();
        for (i, a) in rendered.iter().enumerate() {
            for b in rendered.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(rendered[0], "off");
        assert_eq!(rendered[2], "restart(patience=2)");
        assert_eq!(
            SyncPolicy::Annealed {
                start: 0.9,
                end: 0.1
            }
            .to_string(),
            "annealed(start=0.9,end=0.1)"
        );
        assert_eq!(SyncPolicy::default(), SyncPolicy::Off);
    }
}
