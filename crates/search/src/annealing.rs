//! Simulated Annealing (Kirkpatrick et al.), the `simanneal`-style baseline
//! of Appendix A.
//!
//! The implementation mirrors the library used by the paper: a geometric
//! cooling schedule between an automatically chosen initial temperature and a
//! small final temperature, Metropolis acceptance of uphill moves, and the
//! map space's single-attribute perturbation as the neighbourhood move.

use std::time::Instant;

use mm_mapspace::MapSpace;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::objective::{Budget, Objective, Searcher};
use crate::trace::SearchTrace;

/// Simulated Annealing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealingConfig {
    /// Initial temperature. When `None`, the temperature is auto-tuned from
    /// the cost spread of a handful of random mappings (the `simanneal`
    /// auto-tuning behaviour referenced in Appendix A).
    pub initial_temperature: Option<f64>,
    /// Final temperature as a fraction of the initial temperature.
    pub final_temperature_fraction: f64,
    /// Number of neighbourhood moves per temperature step.
    pub moves_per_temperature: u64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            initial_temperature: None,
            final_temperature_fraction: 1e-4,
            moves_per_temperature: 10,
        }
    }
}

/// Simulated Annealing searcher.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    config: AnnealingConfig,
}

impl SimulatedAnnealing {
    /// Create a simulated-annealing searcher.
    pub fn new(config: AnnealingConfig) -> Self {
        SimulatedAnnealing { config }
    }
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self::new(AnnealingConfig::default())
    }
}

impl Searcher for SimulatedAnnealing {
    fn name(&self) -> &str {
        "SA"
    }

    fn search(
        &mut self,
        space: &MapSpace,
        objective: &mut dyn Objective,
        budget: Budget,
        rng: &mut StdRng,
    ) -> SearchTrace {
        let start = Instant::now();
        let mut trace = SearchTrace::new(self.name());

        let mut current = space.random_mapping(rng);
        let mut current_cost = objective.cost(&current);
        trace.record(current_cost, &current, start.elapsed());

        // Auto-tune the initial temperature from a few probe moves so that a
        // typical uphill move is accepted with ~60% probability initially.
        let t0 = self.config.initial_temperature.unwrap_or_else(|| {
            let mut spread = 0.0f64;
            let probes = 8u64;
            for _ in 0..probes {
                if budget.exhausted(objective.queries(), start.elapsed()) {
                    break;
                }
                let n = space.neighbor(&current, rng);
                let c = objective.cost(&n);
                trace.record(c, &n, start.elapsed());
                spread += (c - current_cost).abs();
            }
            (spread / probes as f64).max(current_cost.abs() * 1e-3).max(1e-30) / 0.5
        });
        let t_final = (t0 * self.config.final_temperature_fraction).max(1e-300);

        // Geometric cooling sized to the remaining query budget.
        let remaining = budget
            .max_queries
            .saturating_sub(objective.queries())
            .max(1);
        let steps = (remaining / self.config.moves_per_temperature.max(1)).max(1);
        let alpha = (t_final / t0).powf(1.0 / steps as f64);

        let mut temperature = t0;
        'outer: loop {
            for _ in 0..self.config.moves_per_temperature {
                if budget.exhausted(objective.queries(), start.elapsed()) {
                    break 'outer;
                }
                let candidate = space.neighbor(&current, rng);
                let cost = objective.cost(&candidate);
                trace.record(cost, &candidate, start.elapsed());
                let delta = cost - current_cost;
                let accept = delta <= 0.0
                    || rng.gen_range(0.0..1.0) < (-delta / temperature.max(1e-300)).exp();
                if accept {
                    current = candidate;
                    current_cost = cost;
                }
            }
            temperature = (temperature * alpha).max(t_final);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{Mapping, ProblemSpec};
    use rand::SeedableRng;

    fn setup() -> (MapSpace, CostModel) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        (space, CostModel::new(arch, problem))
    }

    #[test]
    fn respects_query_budget() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut sa = SimulatedAnnealing::default();
        let trace = sa.search(&space, &mut obj, Budget::iterations(100), &mut rng);
        assert_eq!(obj.queries(), 100);
        assert_eq!(trace.len(), 100);
    }

    #[test]
    fn improves_over_initial_mapping() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut sa = SimulatedAnnealing::default();
        let trace = sa.search(&space, &mut obj, Budget::iterations(400), &mut rng);
        assert!(trace.best_cost < trace.points[0].cost);
        assert!(space.is_member(trace.best_mapping.as_ref().unwrap()));
    }

    #[test]
    fn best_so_far_is_monotone() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut sa = SimulatedAnnealing::new(AnnealingConfig {
            initial_temperature: Some(1e-3),
            ..AnnealingConfig::default()
        });
        let trace = sa.search(&space, &mut obj, Budget::iterations(200), &mut rng);
        for w in trace.points.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
    }

    #[test]
    fn time_budget_terminates_quickly() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut sa = SimulatedAnnealing::default();
        let start = std::time::Instant::now();
        let _ = sa.search(
            &space,
            &mut obj,
            Budget::time(std::time::Duration::from_millis(50)),
            &mut rng,
        );
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }
}
