//! Simulated Annealing (Kirkpatrick et al.), the `simanneal`-style baseline
//! of Appendix A.
//!
//! The implementation mirrors the library used by the paper: a geometric
//! cooling schedule between an automatically chosen initial temperature and a
//! small final temperature, Metropolis acceptance of uphill moves, and the
//! map space's single-attribute perturbation as the neighbourhood move.
//!
//! The searcher is a stepwise state machine implementing [`ProposalSearch`]:
//! it proposes one neighbour at a time (its trajectory depends on every
//! acceptance decision, so [`ProposalSearch::lookahead`] is 1) and applies
//! the Metropolis rule when the evaluated cost is reported back.
//!
//! Under a [`SyncPolicy`](crate::SyncPolicy), [`SyncAction::Adopt`] moves
//! the walk's current point to the shared incumbent when that improves it
//! (classic SA re-anchoring), and [`SyncAction::Restart`] performs a *warm
//! restart*: current point to the incumbent **and** the cooling schedule
//! reinstalled from the initial temperature over the remaining horizon, so
//! a stalled walk regains the mobility to escape the incumbent's basin.

use mm_mapspace::{MapSpaceView, Mapping};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::proposal::{ProposalBuf, ProposalSearch};
use crate::sync::SyncAction;

/// Simulated Annealing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealingConfig {
    /// Initial temperature. When `None`, the temperature is auto-tuned from
    /// the cost spread of a handful of random mappings (the `simanneal`
    /// auto-tuning behaviour referenced in Appendix A).
    pub initial_temperature: Option<f64>,
    /// Final temperature as a fraction of the initial temperature.
    pub final_temperature_fraction: f64,
    /// Number of neighbourhood moves per temperature step.
    pub moves_per_temperature: u64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            initial_temperature: None,
            final_temperature_fraction: 1e-4,
            moves_per_temperature: 10,
        }
    }
}

/// Number of probe moves used to auto-tune the initial temperature.
const PROBES: u64 = 8;

/// Default schedule horizon when the driver cannot bound the number of
/// evaluations (e.g. a pure wall-clock budget).
const DEFAULT_HORIZON: u64 = 10_000;

/// Which part of the annealing run the next report belongs to.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Waiting for the initial random mapping's cost.
    Init,
    /// Auto-tuning probes: `done` of [`PROBES`] reported, `spread`
    /// accumulated.
    Probe { done: u64, spread: f64 },
    /// Metropolis walk under the geometric cooling schedule.
    Anneal,
}

#[derive(Debug, Clone)]
struct SaState {
    phase: Phase,
    current: Option<(Mapping, f64)>,
    /// Whether a proposal is in flight (lookahead is 1).
    outstanding: bool,
    temperature: f64,
    /// The initial temperature the schedule was installed with (0 until
    /// known); warm restarts reinstall from it.
    t0: f64,
    t_final: f64,
    alpha: f64,
    moves_at_temperature: u64,
    reports: u64,
    horizon: u64,
}

/// Simulated Annealing searcher.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    config: AnnealingConfig,
    state: Option<SaState>,
}

impl SimulatedAnnealing {
    /// Create a simulated-annealing searcher.
    pub fn new(config: AnnealingConfig) -> Self {
        SimulatedAnnealing {
            config,
            state: None,
        }
    }

    /// Install the cooling schedule once the initial temperature is known.
    fn install_schedule(&mut self, t0: f64) {
        // mm-lint: allow(panic): calling the strategy outside a begin()
        // session is a driver bug, not a recoverable state.
        let state = self.state.as_mut().expect("begin() not called");
        let t_final = (t0 * self.config.final_temperature_fraction).max(1e-300);
        let remaining = state.horizon.saturating_sub(state.reports).max(1);
        let steps = (remaining / self.config.moves_per_temperature.max(1)).max(1);
        state.t0 = t0;
        state.temperature = t0;
        state.t_final = t_final;
        state.alpha = (t_final / t0).powf(1.0 / steps as f64);
        state.moves_at_temperature = 0;
        state.phase = Phase::Anneal;
    }
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self::new(AnnealingConfig::default())
    }
}

impl ProposalSearch for SimulatedAnnealing {
    fn name(&self) -> &str {
        "SA"
    }

    fn begin(&mut self, _space: &dyn MapSpaceView, horizon: Option<u64>, _rng: &mut StdRng) {
        self.state = Some(SaState {
            phase: Phase::Init,
            current: None,
            outstanding: false,
            temperature: 0.0,
            t0: 0.0,
            t_final: 0.0,
            alpha: 1.0,
            moves_at_temperature: 0,
            reports: 0,
            horizon: horizon.unwrap_or(DEFAULT_HORIZON),
        });
    }

    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    fn propose(
        &mut self,
        space: &dyn MapSpaceView,
        rng: &mut StdRng,
        _max: usize,
        out: &mut ProposalBuf,
    ) {
        // mm-lint: allow(panic): calling the strategy outside a begin()
        // session is a driver bug, not a recoverable state.
        let state = self.state.as_mut().expect("begin() not called");
        if state.outstanding {
            return;
        }
        match &state.current {
            None => space.random_mapping_into(out.next_slot(), rng),
            Some((current, _)) => space.neighbor_into(current, out.next_slot(), rng),
        }
        state.outstanding = true;
        static PROPOSED: std::sync::OnceLock<std::sync::Arc<mm_telemetry::Counter>> =
            std::sync::OnceLock::new();
        crate::tele_counter(&PROPOSED, "search.sa.proposed").bump(1);
    }

    fn report(&mut self, mapping: &Mapping, cost: f64, rng: &mut StdRng) {
        // mm-lint: allow(panic): calling the strategy outside a begin()
        // session is a driver bug, not a recoverable state.
        let state = self.state.as_mut().expect("begin() not called");
        state.outstanding = false;
        state.reports += 1;
        match state.phase.clone() {
            Phase::Init => {
                state.current = Some((mapping.clone(), cost));
                match self.config.initial_temperature {
                    Some(t0) => self.install_schedule(t0),
                    None => {
                        state.phase = Phase::Probe {
                            done: 0,
                            spread: 0.0,
                        }
                    }
                }
            }
            Phase::Probe { done, spread } => {
                let current_cost = state.current.as_ref().map_or(0.0, |(_, c)| *c);
                let spread = spread + (cost - current_cost).abs();
                let done = done + 1;
                if done >= PROBES {
                    // Aim for ~60% initial acceptance of a typical uphill
                    // move, exactly as the monolithic implementation did.
                    let t0 = (spread / PROBES as f64)
                        .max(current_cost.abs() * 1e-3)
                        .max(1e-30)
                        / 0.5;
                    self.install_schedule(t0);
                } else {
                    state.phase = Phase::Probe { done, spread };
                }
            }
            Phase::Anneal => {
                let current_cost = state.current.as_ref().map_or(f64::INFINITY, |(_, c)| *c);
                let delta = cost - current_cost;
                let accept = delta <= 0.0
                    || rng.gen_range(0.0..1.0) < (-delta / state.temperature.max(1e-300)).exp();
                if accept {
                    state.current = Some((mapping.clone(), cost));
                    static ACCEPTED: std::sync::OnceLock<std::sync::Arc<mm_telemetry::Counter>> =
                        std::sync::OnceLock::new();
                    crate::tele_counter(&ACCEPTED, "search.sa.accepted").bump(1);
                }
                state.moves_at_temperature += 1;
                if state.moves_at_temperature >= self.config.moves_per_temperature.max(1) {
                    state.moves_at_temperature = 0;
                    state.temperature = (state.temperature * state.alpha).max(state.t_final);
                }
            }
        }
    }

    /// [`SyncAction::Adopt`] re-anchors the walk on the incumbent when that
    /// improves the current point; [`SyncAction::Restart`] re-anchors
    /// unconditionally *and* reinstalls the cooling schedule from the
    /// initial temperature over the remaining horizon (warm restart).
    fn observe_global_best(
        &mut self,
        _space: &dyn MapSpaceView,
        mapping: &Mapping,
        cost: f64,
        action: SyncAction,
        _rng: &mut StdRng,
    ) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        match action {
            SyncAction::Adopt => {
                let improves = match &state.current {
                    None => true,
                    Some((_, current_cost)) => cost < *current_cost,
                };
                if improves {
                    state.current = Some((mapping.clone(), cost));
                }
            }
            SyncAction::Restart => {
                state.current = Some((mapping.clone(), cost));
                let t0 = state.t0;
                // Before the schedule exists (init/probe phases) there is
                // nothing to reheat; the anchor alone suffices.
                if t0 > 0.0 && state.phase == Phase::Anneal {
                    self.install_schedule(t0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Budget, FnObjective, Objective, Searcher};
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{MapSpace, Mapping, ProblemSpec};
    use rand::SeedableRng;

    fn setup() -> (MapSpace, CostModel) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        (space, CostModel::new(arch, problem))
    }

    #[test]
    fn respects_query_budget() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut sa = SimulatedAnnealing::default();
        let trace = sa.search(&space, &mut obj, Budget::iterations(100), &mut rng);
        assert_eq!(obj.queries(), 100);
        assert_eq!(trace.len(), 100);
    }

    #[test]
    fn improves_over_initial_mapping() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut sa = SimulatedAnnealing::default();
        let trace = sa.search(&space, &mut obj, Budget::iterations(400), &mut rng);
        assert!(trace.best_cost < trace.points[0].cost);
        assert!(space.is_member(trace.best_mapping.as_ref().unwrap()));
    }

    #[test]
    fn best_so_far_is_monotone() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut sa = SimulatedAnnealing::new(AnnealingConfig {
            initial_temperature: Some(1e-3),
            ..AnnealingConfig::default()
        });
        let trace = sa.search(&space, &mut obj, Budget::iterations(200), &mut rng);
        for w in trace.points.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
    }

    #[test]
    fn time_budget_terminates_quickly() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut sa = SimulatedAnnealing::default();
        let start = std::time::Instant::now();
        let _ = sa.search(
            &space,
            &mut obj,
            Budget::time(std::time::Duration::from_millis(50)),
            &mut rng,
        );
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn restart_reheats_the_schedule_and_adopt_improves_the_anchor() {
        let (space, _) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut sa = SimulatedAnnealing::new(AnnealingConfig {
            initial_temperature: Some(4.0),
            moves_per_temperature: 1,
            ..AnnealingConfig::default()
        });
        sa.begin(&space, Some(50), &mut rng);
        let mut buf = ProposalBuf::new();
        // Burn some moves so the temperature decays below t0.
        for _ in 0..10 {
            buf.clear();
            sa.propose(&space, &mut rng, 1, &mut buf);
            sa.report(&buf[0].clone(), 10.0, &mut rng);
        }
        let cooled = sa.state.as_ref().unwrap().temperature;
        assert!(cooled < 4.0, "schedule must have cooled, got {cooled}");

        // Adopt: a worse incumbent is ignored, a better one becomes current.
        let incumbent = space.random_mapping(&mut rng);
        sa.observe_global_best(&space, &incumbent, 99.0, SyncAction::Adopt, &mut rng);
        assert_ne!(
            sa.state.as_ref().unwrap().current.as_ref().unwrap().1,
            99.0,
            "worse incumbent must not be adopted"
        );
        sa.observe_global_best(&space, &incumbent, 0.5, SyncAction::Adopt, &mut rng);
        let state = sa.state.as_ref().unwrap();
        assert_eq!(state.current.as_ref().unwrap().1, 0.5);
        assert!(
            (state.temperature - cooled).abs() < 1e-12,
            "adopt never reheats"
        );

        // Restart: re-anchor and reheat to t0.
        sa.observe_global_best(&space, &incumbent, 0.4, SyncAction::Restart, &mut rng);
        let state = sa.state.as_ref().unwrap();
        assert_eq!(state.current.as_ref().unwrap().1, 0.4);
        assert_eq!(state.temperature, 4.0, "warm restart reheats to t0");
    }

    #[test]
    fn proposes_one_at_a_time_until_reported() {
        let (space, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut sa = SimulatedAnnealing::default();
        sa.begin(&space, Some(100), &mut rng);
        let mut buf = ProposalBuf::new();
        sa.propose(&space, &mut rng, 16, &mut buf);
        assert_eq!(buf.len(), 1, "SA is strictly sequential");
        let pending = buf[0].clone();
        buf.clear();
        sa.propose(&space, &mut rng, 16, &mut buf);
        assert!(buf.is_empty(), "no new proposal while one is in flight");
        sa.report(&pending, 1.0, &mut rng);
        sa.propose(&space, &mut rng, 16, &mut buf);
        assert_eq!(buf.len(), 1);
    }
}
