//! The [`Objective`] and [`Searcher`] abstractions shared by all search
//! methods, plus the search [`Budget`].

use std::time::Duration;

use mm_mapspace::{MapSpaceView, Mapping};
use rand::rngs::StdRng;

use crate::trace::SearchTrace;

/// A cost function over mappings (Equation 1's `f(a, m)`): lower is better.
///
/// Implementations count their queries so that iso-iteration comparisons can
/// bound the number of cost-function evaluations rather than loop iterations.
pub trait Objective {
    /// Evaluate the cost of a mapping.
    fn cost(&mut self, mapping: &Mapping) -> f64;

    /// Number of cost evaluations performed so far.
    fn queries(&self) -> u64;
}

/// Wrap any closure as an [`Objective`].
pub struct FnObjective<F> {
    f: F,
    queries: u64,
}

impl<F: FnMut(&Mapping) -> f64> FnObjective<F> {
    /// Wrap `f` as an objective.
    pub fn new(f: F) -> Self {
        FnObjective { f, queries: 0 }
    }
}

impl<F: FnMut(&Mapping) -> f64> Objective for FnObjective<F> {
    fn cost(&mut self, mapping: &Mapping) -> f64 {
        self.queries += 1;
        (self.f)(mapping)
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// Exact budget split: share `index` of `count` receives `total / count`
/// plus one of the `total % count` leftovers (lowest indices first). The
/// shares always sum to `total` exactly and differ by at most one — no
/// share silently gets a different budget.
///
/// The single source of truth for budget splitting across the workspace:
/// mapper shard shares (`TerminationPolicy::per_shard_search_size`), serve
/// per-shard job budgets, and the Phase-2 sharded gradient search all call
/// this.
pub fn split_evenly(total: u64, index: usize, count: usize) -> u64 {
    let count = count.max(1) as u64;
    let base = total / count;
    let extra = u64::from((index as u64) < total % count);
    base + extra
}

/// Search termination criteria: a maximum number of cost-function queries
/// (iso-iteration), an optional wall-clock limit (iso-time), or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of cost-function queries.
    pub max_queries: u64,
    /// Optional wall-clock limit.
    pub max_time: Option<Duration>,
}

impl Budget {
    /// Iso-iteration budget: a fixed number of cost-function queries.
    pub fn iterations(max_queries: u64) -> Self {
        Budget {
            max_queries,
            max_time: None,
        }
    }

    /// Iso-time budget: a wall-clock limit (with a generous query cap so the
    /// time limit is the binding constraint).
    pub fn time(limit: Duration) -> Self {
        Budget {
            max_queries: u64::MAX,
            max_time: Some(limit),
        }
    }

    /// Both a query cap and a time limit.
    pub fn queries_and_time(max_queries: u64, limit: Duration) -> Self {
        Budget {
            max_queries,
            max_time: Some(limit),
        }
    }

    /// Whether the budget is exhausted given the queries used so far and the
    /// elapsed wall-clock time.
    pub fn exhausted(&self, queries: u64, elapsed: Duration) -> bool {
        if queries >= self.max_queries {
            return true;
        }
        if let Some(limit) = self.max_time {
            if elapsed >= limit {
                return true;
            }
        }
        false
    }
}

/// A mapping-space search method.
pub trait Searcher {
    /// Short method name used in reports (e.g. `"SA"`, `"GA"`, `"RL"`,
    /// `"MM"`).
    fn name(&self) -> &str;

    /// Run the search over `space` — the full [`mm_mapspace::MapSpace`]
    /// or one shard of it — querying `objective` until `budget` is
    /// exhausted, and return the best-so-far trace.
    fn search(
        &mut self,
        space: &dyn MapSpaceView,
        objective: &mut dyn Objective,
        budget: Budget,
        rng: &mut StdRng,
    ) -> SearchTrace;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_mapspace::{Mapping, ProblemSpec};

    #[test]
    fn fn_objective_counts_queries() {
        let problem = ProblemSpec::conv1d(32, 3);
        let m = Mapping::minimal(&problem);
        let mut obj = FnObjective::new(|_: &Mapping| 42.0);
        assert_eq!(obj.queries(), 0);
        assert_eq!(obj.cost(&m), 42.0);
        assert_eq!(obj.cost(&m), 42.0);
        assert_eq!(obj.queries(), 2);
    }

    #[test]
    fn budget_exhaustion_rules() {
        let b = Budget::iterations(10);
        assert!(!b.exhausted(9, Duration::from_secs(100)));
        assert!(b.exhausted(10, Duration::ZERO));

        let b = Budget::time(Duration::from_millis(5));
        assert!(!b.exhausted(1_000_000, Duration::from_millis(4)));
        assert!(b.exhausted(0, Duration::from_millis(5)));

        let b = Budget::queries_and_time(10, Duration::from_millis(5));
        assert!(b.exhausted(10, Duration::ZERO));
        assert!(b.exhausted(0, Duration::from_millis(6)));
        assert!(!b.exhausted(9, Duration::from_millis(4)));
    }
}
