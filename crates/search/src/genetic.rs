//! Genetic Algorithm baseline (Appendix A): DEAP-style evolutionary search
//! with an initial population of 100, crossover probability 0.75, and
//! per-individual mutation probability 0.05, tournament selection by fitness
//! (EDP).

use std::time::Instant;

use mm_mapspace::{MapSpace, Mapping};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::objective::{Budget, Objective, Searcher};
use crate::trace::SearchTrace;

/// Genetic Algorithm hyper-parameters (paper defaults from Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Probability that a selected pair is recombined.
    pub crossover_probability: f64,
    /// Probability that each attribute of an individual is randomly mutated.
    pub mutation_probability: f64,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Number of elite individuals carried over unchanged each generation.
    pub elitism: usize,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 100,
            crossover_probability: 0.75,
            mutation_probability: 0.05,
            tournament_size: 3,
            elitism: 2,
        }
    }
}

/// Genetic Algorithm searcher.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    config: GeneticConfig,
}

impl GeneticAlgorithm {
    /// Create a GA searcher.
    pub fn new(config: GeneticConfig) -> Self {
        GeneticAlgorithm { config }
    }
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        Self::new(GeneticConfig::default())
    }
}

struct Individual {
    mapping: Mapping,
    fitness: f64,
}

impl Searcher for GeneticAlgorithm {
    fn name(&self) -> &str {
        "GA"
    }

    fn search(
        &mut self,
        space: &MapSpace,
        objective: &mut dyn Objective,
        budget: Budget,
        rng: &mut StdRng,
    ) -> SearchTrace {
        let start = Instant::now();
        let mut trace = SearchTrace::new(self.name());
        let popsize = self.config.population.max(2);

        // Initial population.
        let mut population: Vec<Individual> = Vec::with_capacity(popsize);
        for _ in 0..popsize {
            if budget.exhausted(objective.queries(), start.elapsed()) {
                break;
            }
            let mapping = space.random_mapping(rng);
            let fitness = objective.cost(&mapping);
            trace.record(fitness, &mapping, start.elapsed());
            population.push(Individual { mapping, fitness });
        }
        if population.is_empty() {
            return trace;
        }

        let tournament = |pop: &[Individual], rng: &mut StdRng| -> usize {
            let mut best = rng.gen_range(0..pop.len());
            for _ in 1..self.config.tournament_size.max(1) {
                let other = rng.gen_range(0..pop.len());
                if pop[other].fitness < pop[best].fitness {
                    best = other;
                }
            }
            best
        };

        while !budget.exhausted(objective.queries(), start.elapsed()) {
            // Sort ascending by fitness (EDP): lower is better.
            population.sort_by(|a, b| a.fitness.partial_cmp(&b.fitness).unwrap());
            let mut next: Vec<Individual> = Vec::with_capacity(popsize);
            // Elitism: carry over the best individuals without re-evaluation.
            for elite in population.iter().take(self.config.elitism.min(popsize)) {
                next.push(Individual {
                    mapping: elite.mapping.clone(),
                    fitness: elite.fitness,
                });
            }
            while next.len() < popsize {
                if budget.exhausted(objective.queries(), start.elapsed()) {
                    break;
                }
                let pa = tournament(&population, rng);
                let pb = tournament(&population, rng);
                let mut child = if rng.gen_bool(self.config.crossover_probability) {
                    space.crossover(&population[pa].mapping, &population[pb].mapping, rng)
                } else {
                    population[pa].mapping.clone()
                };
                // Per-attribute mutation: apply the map space's mutation
                // kernel with the configured probability, several times to
                // approximate "each attribute mutates independently".
                let attributes = space.problem().num_dims() * 3 + space.problem().num_tensors();
                for _ in 0..attributes {
                    if rng.gen_bool(self.config.mutation_probability) {
                        space.mutate_in_place(&mut child, rng);
                    }
                }
                space.repair(&mut child);
                let fitness = objective.cost(&child);
                trace.record(fitness, &child, start.elapsed());
                next.push(Individual {
                    mapping: child,
                    fitness,
                });
            }
            if next.is_empty() {
                break;
            }
            population = next;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::ProblemSpec;
    use rand::SeedableRng;

    fn setup() -> (MapSpace, CostModel) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        (space, CostModel::new(arch, problem))
    }

    #[test]
    fn respects_query_budget_exactly() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut ga = GeneticAlgorithm::new(GeneticConfig {
            population: 10,
            ..GeneticConfig::default()
        });
        let trace = ga.search(&space, &mut obj, Budget::iterations(77), &mut rng);
        assert_eq!(obj.queries(), 77);
        assert_eq!(trace.len(), 77);
    }

    #[test]
    fn population_evolution_improves_over_initial_generation() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut ga = GeneticAlgorithm::new(GeneticConfig {
            population: 16,
            ..GeneticConfig::default()
        });
        let trace = ga.search(&space, &mut obj, Budget::iterations(400), &mut rng);
        // Best of the initial random generation vs. final best.
        let initial_best = trace.points[..16]
            .iter()
            .map(|p| p.cost)
            .fold(f64::INFINITY, f64::min);
        assert!(trace.best_cost <= initial_best);
        assert!(space.is_member(trace.best_mapping.as_ref().unwrap()));
    }

    #[test]
    fn default_config_matches_appendix_a() {
        let c = GeneticConfig::default();
        assert_eq!(c.population, 100);
        assert!((c.crossover_probability - 0.75).abs() < 1e-9);
        assert!((c.mutation_probability - 0.05).abs() < 1e-9);
    }
}
