//! Genetic Algorithm baseline (Appendix A): DEAP-style evolutionary search
//! with an initial population of 100, crossover probability 0.75, and
//! per-individual mutation probability 0.05, tournament selection by fitness
//! (EDP).
//!
//! The GA is a stepwise state machine implementing [`ProposalSearch`]:
//! children of one generation depend only on the *previous* generation, so a
//! whole generation of proposals can be in flight at once
//! ([`ProposalSearch::lookahead`] = population size) — the natural batch for
//! an evaluation pool.
//!
//! Under a [`SyncPolicy`](crate::SyncPolicy), [`SyncAction::Adopt`] injects
//! the shared incumbent into the population (replacing the current worst
//! individual when the incumbent beats it), and [`SyncAction::Restart`]
//! reseeds the population *from* the incumbent: the next generation is bred
//! entirely out of it (plus mutation), refocusing a stalled population on
//! the incumbent's basin.

use mm_mapspace::{MapSpaceView, Mapping};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::proposal::{ProposalBuf, ProposalSearch};
use crate::sync::SyncAction;

/// Genetic Algorithm hyper-parameters (paper defaults from Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Probability that a selected pair is recombined.
    pub crossover_probability: f64,
    /// Probability that each attribute of an individual is randomly mutated.
    pub mutation_probability: f64,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Number of elite individuals carried over unchanged each generation.
    pub elitism: usize,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 100,
            crossover_probability: 0.75,
            mutation_probability: 0.05,
            tournament_size: 3,
            elitism: 2,
        }
    }
}

#[derive(Debug, Clone)]
struct Individual {
    mapping: Mapping,
    fitness: f64,
}

#[derive(Debug, Clone, Default)]
struct GaState {
    /// The completed previous generation (sorted lazily at evolution time).
    population: Vec<Individual>,
    /// Reported members of the generation currently being built (starts with
    /// the elites, which carry their fitness without re-evaluation).
    incoming: Vec<Individual>,
    /// Proposals in flight (proposed, not yet reported).
    outstanding: usize,
}

/// Genetic Algorithm searcher.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    config: GeneticConfig,
    state: GaState,
    /// Horizon-derived population cap installed at `begin` (`None`:
    /// unbounded): a population larger than half the evaluation horizon
    /// could never complete two generations, so tiny (e.g. per-shard)
    /// budgets shrink the effective population instead of spending the
    /// whole budget inside one unevolved generation. Like SA's cooling
    /// schedule, this reads whatever horizon the driver supplies —
    /// unconditionally, per the `begin` contract ("schedule-based methods
    /// size their schedules with it").
    horizon_population: Option<usize>,
}

impl GeneticAlgorithm {
    /// Create a GA searcher.
    pub fn new(config: GeneticConfig) -> Self {
        GeneticAlgorithm {
            config,
            state: GaState::default(),
            horizon_population: None,
        }
    }

    fn popsize(&self) -> usize {
        self.config
            .population
            .min(self.horizon_population.unwrap_or(usize::MAX))
            .max(2)
    }

    /// Elites per generation, always leaving room for at least one child so
    /// every generation proposes something.
    fn elites(&self) -> usize {
        self.config.elitism.min(self.popsize() - 1)
    }

    fn tournament(&self, rng: &mut StdRng) -> usize {
        let pop = &self.state.population;
        let mut best = rng.gen_range(0..pop.len());
        for _ in 1..self.config.tournament_size.max(1) {
            let other = rng.gen_range(0..pop.len());
            if pop[other].fitness < pop[best].fitness {
                best = other;
            }
        }
        best
    }

    /// Breed one child from the current population into `out` (reusing its
    /// allocations).
    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    fn breed_into(&mut self, space: &dyn MapSpaceView, rng: &mut StdRng, out: &mut Mapping) {
        let pa = self.tournament(rng);
        let pb = self.tournament(rng);
        let pop = &self.state.population;
        if rng.gen_bool(self.config.crossover_probability) {
            space.crossover_into(&pop[pa].mapping, &pop[pb].mapping, out, rng);
        } else {
            out.clone_from(&pop[pa].mapping);
        }
        // Per-attribute mutation: apply the map space's mutation kernel with
        // the configured probability, several times to approximate "each
        // attribute mutates independently".
        let attributes = space.problem().num_dims() * 3 + space.problem().num_tensors();
        for _ in 0..attributes {
            if rng.gen_bool(self.config.mutation_probability) {
                space.mutate_in_place(out, rng);
            }
        }
        space.repair(out);
    }
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        Self::new(GeneticConfig::default())
    }
}

impl ProposalSearch for GeneticAlgorithm {
    fn name(&self) -> &str {
        "GA"
    }

    fn begin(&mut self, _space: &dyn MapSpaceView, horizon: Option<u64>, _rng: &mut StdRng) {
        self.state = GaState::default();
        self.horizon_population =
            horizon.map(|h| usize::try_from((h / 2).max(2)).unwrap_or(usize::MAX));
    }

    fn lookahead(&self) -> usize {
        self.popsize()
    }

    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    fn propose(
        &mut self,
        space: &dyn MapSpaceView,
        rng: &mut StdRng,
        max: usize,
        out: &mut ProposalBuf,
    ) {
        let popsize = self.popsize();
        // Starting a fresh (non-initial) generation: sort the completed one
        // and seed the next with elites (no re-evaluation, hence no
        // proposals for them).
        if !self.state.population.is_empty()
            && self.state.incoming.is_empty()
            && self.state.outstanding == 0
        {
            self.state
                .population
                .sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
            // A restart can shrink the population below the elite count.
            let elites = self.elites().min(self.state.population.len());
            // mm-lint: allow(hot-path): once per generation, not per
            // proposal — the elite snapshot is amortized over `population`
            // proposals.
            let seed: Vec<Individual> = self.state.population[..elites].to_vec();
            self.state.incoming = seed;
        }
        for _ in 0..max {
            if self.state.incoming.len() + self.state.outstanding >= popsize {
                break; // generation fully proposed; wait for reports
            }
            if self.state.population.is_empty() {
                space.random_mapping_into(out.next_slot(), rng); // initial generation
            } else {
                self.breed_into(space, rng, out.next_slot());
            }
            self.state.outstanding += 1;
            static PROPOSED: std::sync::OnceLock<std::sync::Arc<mm_telemetry::Counter>> =
                std::sync::OnceLock::new();
            crate::tele_counter(&PROPOSED, "search.ga.proposed").bump(1);
        }
    }

    fn report(&mut self, mapping: &Mapping, cost: f64, _rng: &mut StdRng) {
        debug_assert!(self.state.outstanding > 0, "report without proposal");
        self.state.outstanding = self.state.outstanding.saturating_sub(1);
        self.state.incoming.push(Individual {
            mapping: mapping.clone(),
            fitness: cost,
        });
        static ACCEPTED: std::sync::OnceLock<std::sync::Arc<mm_telemetry::Counter>> =
            std::sync::OnceLock::new();
        crate::tele_counter(&ACCEPTED, "search.ga.accepted").bump(1);
        if self.state.incoming.len() >= self.popsize() && self.state.outstanding == 0 {
            self.state.population = std::mem::take(&mut self.state.incoming);
        }
    }

    /// [`SyncAction::Adopt`] injects the incumbent into the completed
    /// population, replacing the worst individual when the incumbent beats
    /// it (no effect while the initial random generation is still being
    /// evaluated). [`SyncAction::Restart`] reseeds: the population becomes
    /// the incumbent alone, so the whole next generation is bred from it.
    fn observe_global_best(
        &mut self,
        _space: &dyn MapSpaceView,
        mapping: &Mapping,
        cost: f64,
        action: SyncAction,
        _rng: &mut StdRng,
    ) {
        match action {
            SyncAction::Adopt => {
                let Some((worst, _)) = self
                    .state
                    .population
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.fitness.total_cmp(&b.fitness))
                else {
                    return;
                };
                if cost < self.state.population[worst].fitness {
                    self.state.population[worst] = Individual {
                        mapping: mapping.clone(),
                        fitness: cost,
                    };
                }
            }
            SyncAction::Restart => {
                self.state.population = vec![Individual {
                    mapping: mapping.clone(),
                    fitness: cost,
                }];
                // Drop the partially assembled generation; reports for
                // still-outstanding proposals will seed the next one.
                self.state.incoming.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Budget, FnObjective, Objective, Searcher};
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{MapSpace, ProblemSpec};
    use rand::SeedableRng;

    fn setup() -> (MapSpace, CostModel) {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        (space, CostModel::new(arch, problem))
    }

    #[test]
    fn respects_query_budget_exactly() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut ga = GeneticAlgorithm::new(GeneticConfig {
            population: 10,
            ..GeneticConfig::default()
        });
        let trace = ga.search(&space, &mut obj, Budget::iterations(77), &mut rng);
        assert_eq!(obj.queries(), 77);
        assert_eq!(trace.len(), 77);
    }

    #[test]
    fn population_evolution_improves_over_initial_generation() {
        let (space, model) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut ga = GeneticAlgorithm::new(GeneticConfig {
            population: 16,
            ..GeneticConfig::default()
        });
        let trace = ga.search(&space, &mut obj, Budget::iterations(400), &mut rng);
        // Best of the initial random generation vs. final best.
        let initial_best = trace.points[..16]
            .iter()
            .map(|p| p.cost)
            .fold(f64::INFINITY, f64::min);
        assert!(trace.best_cost <= initial_best);
        assert!(space.is_member(trace.best_mapping.as_ref().unwrap()));
    }

    #[test]
    fn default_config_matches_appendix_a() {
        let c = GeneticConfig::default();
        assert_eq!(c.population, 100);
        assert!((c.crossover_probability - 0.75).abs() < 1e-9);
        assert!((c.mutation_probability - 0.05).abs() < 1e-9);
    }

    #[test]
    fn adopt_replaces_the_worst_and_restart_reseeds_from_the_incumbent() {
        let (space, _) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let mut ga = GeneticAlgorithm::new(GeneticConfig {
            population: 4,
            ..GeneticConfig::default()
        });
        ga.begin(&space, None, &mut rng);
        let mut buf = ProposalBuf::new();
        ga.propose(&space, &mut rng, 16, &mut buf);
        let gen0 = std::mem::take(&mut buf);
        for (i, m) in gen0.iter().enumerate() {
            ga.report(m, 10.0 + i as f64, &mut rng);
        }
        assert_eq!(ga.state.population.len(), 4);

        // Adopt: a strong incumbent replaces the worst individual…
        let incumbent = space.random_mapping(&mut rng);
        ga.observe_global_best(&space, &incumbent, 1.0, SyncAction::Adopt, &mut rng);
        assert!(ga.state.population.iter().any(|i| i.fitness == 1.0));
        assert!(!ga.state.population.iter().any(|i| i.fitness == 13.0));
        // …and a weak one changes nothing.
        ga.observe_global_best(&space, &incumbent, 500.0, SyncAction::Adopt, &mut rng);
        assert!(!ga.state.population.iter().any(|i| i.fitness == 500.0));

        // Restart: the population collapses onto the incumbent and the next
        // generation still proposes a full batch bred from it.
        ga.observe_global_best(&space, &incumbent, 0.5, SyncAction::Restart, &mut rng);
        assert_eq!(ga.state.population.len(), 1);
        assert_eq!(ga.state.population[0].fitness, 0.5);
        ga.propose(&space, &mut rng, 16, &mut buf);
        assert!(!buf.is_empty(), "reseeded GA keeps proposing");
        assert!(buf.iter().all(|m| space.is_member(m)));
    }

    #[test]
    fn tiny_horizons_shrink_the_effective_population() {
        let (space, _) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ga = GeneticAlgorithm::default(); // population 100
        ga.begin(&space, Some(20), &mut rng);
        let mut buf = ProposalBuf::new();
        ga.propose(&space, &mut rng, 256, &mut buf);
        assert_eq!(
            buf.len(),
            10,
            "a 20-eval horizon fits two 10-individual generations"
        );
        // No horizon (or a roomy one): the configured population stands.
        let mut ga = GeneticAlgorithm::default();
        ga.begin(&space, None, &mut rng);
        buf.clear();
        ga.propose(&space, &mut rng, 256, &mut buf);
        assert_eq!(buf.len(), 100);
        let mut ga = GeneticAlgorithm::default();
        ga.begin(&space, Some(1), &mut rng);
        buf.clear();
        ga.propose(&space, &mut rng, 256, &mut buf);
        assert_eq!(buf.len(), 2, "population never drops below 2");
    }

    #[test]
    fn whole_generation_can_be_in_flight() {
        let (space, _) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let mut ga = GeneticAlgorithm::new(GeneticConfig {
            population: 8,
            ..GeneticConfig::default()
        });
        ga.begin(&space, None, &mut rng);
        let mut buf = ProposalBuf::new();
        ga.propose(&space, &mut rng, 64, &mut buf);
        assert_eq!(buf.len(), 8, "initial generation batches fully");
        let pending = std::mem::take(&mut buf);
        ga.propose(&space, &mut rng, 64, &mut buf);
        assert!(buf.is_empty(), "waits for the generation's reports");
        for (i, m) in pending.iter().enumerate() {
            ga.report(m, i as f64, &mut rng);
        }
        // Next generation: elites are carried without proposals, the rest
        // are bred children.
        ga.propose(&space, &mut rng, 64, &mut buf);
        assert_eq!(buf.len(), 8 - 2, "popsize minus elites");
    }
}
