//! The stepwise search protocol: [`ProposalSearch`].
//!
//! The original [`Searcher`] trait is a monolithic *loop* — it owns control
//! flow from the first random mapping to budget exhaustion, querying the
//! objective inline. That shape cannot be parallelized: an orchestrator
//! (like `mm-mapper`'s `Mapper`) needs to own the loop itself so it can
//! batch evaluations onto worker pools, interleave many searchers, sync a
//! globally shared best mapping, and apply termination policies.
//!
//! [`ProposalSearch`] is the inverted-control half of the trait split:
//!
//! * [`propose`](ProposalSearch::propose) appends candidate mappings to a
//!   buffer (up to a driver-chosen batch size);
//! * [`report`](ProposalSearch::report) feeds back the evaluated cost of a
//!   proposal, in proposal order;
//! * [`lookahead`](ProposalSearch::lookahead) tells the driver how many
//!   unreported proposals the searcher tolerates in flight, so proposals can
//!   pipeline ahead of pending evaluations (1 for strictly sequential
//!   methods like simulated annealing, a full generation for GA, unbounded
//!   for random search).
//!
//! Every `ProposalSearch` automatically *is* a [`Searcher`] through a
//! blanket implementation driving the classic sequential loop, so existing
//! call sites (`Box<dyn Searcher>`, the Figure 5/6 comparison harness, the
//! examples) keep working unchanged.

use std::ops::Deref;
use std::time::Instant;

use mm_mapspace::{MapSpaceView, Mapping};
use rand::rngs::StdRng;

use crate::objective::{Budget, Objective, Searcher};
use crate::sync::SyncAction;
use crate::trace::SearchTrace;

/// A slot-reusing proposal buffer: the write half of the zero-allocation
/// proposal hot path.
///
/// Works like `Vec<Mapping>` from the reader's side (it derefs to
/// `[Mapping]` of the *logical* length), but keeps cleared mappings as
/// spare slots so a steady-state `clear()` → `next_slot()` → fill cycle
/// reuses their nested allocations instead of reallocating every proposal.
#[derive(Debug, Default)]
pub struct ProposalBuf {
    /// Slot storage; `slots[len..]` are cleared-but-allocated spares.
    slots: Vec<Mapping>,
    /// Logical number of live proposals.
    len: usize,
}

impl ProposalBuf {
    /// An empty buffer with no slots.
    pub fn new() -> Self {
        ProposalBuf::default()
    }

    /// Logical number of live proposals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no live proposals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all live proposals, keeping their slots (and allocations) as
    /// spares for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Hand out the next writable slot (reusing a spare when available) and
    /// count it as live. The slot holds whatever mapping occupied it last —
    /// callers overwrite it with an `*_into` operation.
    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    pub fn next_slot(&mut self) -> &mut Mapping {
        if self.len == self.slots.len() {
            self.slots.push(Mapping::default());
        }
        let slot = &mut self.slots[self.len];
        self.len += 1;
        slot
    }

    /// Append an owned mapping, overwriting a spare slot when available
    /// (its allocations are replaced, not reused).
    pub fn push(&mut self, mapping: Mapping) {
        if self.len == self.slots.len() {
            self.slots.push(mapping);
        } else {
            self.slots[self.len] = mapping;
        }
        self.len += 1;
    }

    /// Take the slot storage out of the buffer (for handoff to an owner
    /// that needs `Vec<Mapping>`), returning `(slots, live_len)`. The
    /// buffer is left empty; give the storage back with
    /// [`restore`](Self::restore) to keep reusing its allocations.
    pub fn take(&mut self) -> (Vec<Mapping>, usize) {
        let len = self.len;
        self.len = 0;
        (std::mem::take(&mut self.slots), len)
    }

    /// Return slot storage previously removed with [`take`](Self::take).
    /// The buffer must be empty (storage is not merged).
    pub fn restore(&mut self, slots: Vec<Mapping>) {
        debug_assert!(self.slots.is_empty() && self.len == 0);
        self.slots = slots;
        self.len = 0;
    }
}

impl Deref for ProposalBuf {
    type Target = [Mapping];

    fn deref(&self) -> &[Mapping] {
        &self.slots[..self.len]
    }
}

/// A search method driven from outside: it proposes mappings and is told
/// their cost, while someone else owns the evaluation loop.
///
/// # Contract
///
/// * [`begin`](Self::begin) is called exactly once before any proposal.
/// * When the searcher has no outstanding (unreported) proposals,
///   [`propose`](Self::propose) must append at least one mapping — otherwise
///   the driver would deadlock. With proposals outstanding it may append
///   nothing (e.g. a GA waiting for the rest of a generation).
/// * Reports arrive in proposal order, each exactly once.
pub trait ProposalSearch: Send {
    /// Short method name used in reports (e.g. `"SA"`, `"GA"`).
    fn name(&self) -> &str;

    /// Prepare for a fresh run over `space`. `horizon` is the approximate
    /// number of evaluations this searcher will receive (`None` if unknown);
    /// schedule-based methods (SA cooling) size their schedules with it.
    fn begin(&mut self, space: &dyn MapSpaceView, horizon: Option<u64>, rng: &mut StdRng);

    /// Maximum number of unreported proposals this searcher tolerates in
    /// flight. The driver never requests more than this many proposals ahead
    /// of pending evaluations.
    fn lookahead(&self) -> usize {
        1
    }

    /// Append up to `max` new candidate mappings to `out`.
    ///
    /// Implementations fill slots from [`ProposalBuf::next_slot`] with the
    /// map space's `*_into` operations so the steady state reuses the
    /// buffer's allocations.
    fn propose(
        &mut self,
        space: &dyn MapSpaceView,
        rng: &mut StdRng,
        max: usize,
        out: &mut ProposalBuf,
    );

    /// Report the evaluated cost of a previously proposed mapping.
    fn report(&mut self, mapping: &Mapping, cost: f64, rng: &mut StdRng);

    /// Observe the shared global-best mapping, with the [`SyncAction`] a
    /// driver-side [`SyncPolicy`](crate::SyncPolicy) chose for this sync
    /// point. The default ignores it.
    ///
    /// Implementations provide the *mechanics* of the action —
    /// [`SyncAction::Adopt`] re-anchors the current trajectory on `mapping`
    /// (SA current point, GA population injection, DDPG episode state);
    /// [`SyncAction::Restart`] additionally reseeds the searcher's schedule
    /// (SA temperature, DDPG exploration noise) so it searches outward from
    /// the incumbent again. The *decision* of when to call this (and with
    /// which action) belongs to the driver, which must do so only at
    /// deterministic sync points if it wants to preserve replayability.
    ///
    /// `mapping` may lie outside `space` when shards search pairwise
    /// disjoint slices: implementations must route all follow-up proposals
    /// through `space`'s own operations (`neighbor`, `crossover`,
    /// `project`, …), which keep them inside the shard.
    fn observe_global_best(
        &mut self,
        _space: &dyn MapSpaceView,
        _mapping: &Mapping,
        _cost: f64,
        _action: SyncAction,
        _rng: &mut StdRng,
    ) {
    }
}

/// Cap on proposals materialized per driver iteration. Searchers with huge
/// (or unbounded) lookaheads would otherwise be asked to generate their
/// whole remaining query budget up front — pathological under iso-time
/// budgets, where `max_queries` is effectively infinite. Evaluation is
/// sequential here anyway, so small batches lose nothing.
const DRIVE_BATCH: usize = 64;

/// Drive a [`ProposalSearch`] through the classic sequential evaluate loop,
/// producing the same [`SearchTrace`] a monolithic [`Searcher`] would.
pub fn drive(
    search: &mut dyn ProposalSearch,
    space: &dyn MapSpaceView,
    objective: &mut dyn Objective,
    budget: Budget,
    rng: &mut StdRng,
) -> SearchTrace {
    let start = Instant::now();
    let mut trace = SearchTrace::new(search.name());
    let horizon = (budget.max_queries < u64::MAX).then_some(budget.max_queries);
    search.begin(space, horizon, rng);

    let mut buf = ProposalBuf::new();
    while !budget.exhausted(objective.queries(), start.elapsed()) {
        let remaining = budget.max_queries.saturating_sub(objective.queries());
        let max = search
            .lookahead()
            .min(DRIVE_BATCH)
            .min(usize::try_from(remaining).unwrap_or(usize::MAX))
            .max(1);
        buf.clear();
        search.propose(space, rng, max, &mut buf);
        if buf.is_empty() {
            // No proposals with none outstanding: the searcher is done.
            break;
        }
        for mapping in buf.iter() {
            if budget.exhausted(objective.queries(), start.elapsed()) {
                return trace;
            }
            let cost = objective.cost(mapping);
            trace.record(cost, mapping, start.elapsed());
            search.report(mapping, cost, rng);
        }
    }
    trace
}

impl<P: ProposalSearch> Searcher for P {
    fn name(&self) -> &str {
        ProposalSearch::name(self)
    }

    fn search(
        &mut self,
        space: &dyn MapSpaceView,
        objective: &mut dyn Objective,
        budget: Budget,
        rng: &mut StdRng,
    ) -> SearchTrace {
        drive(self, space, objective, budget, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::random::RandomSearch;
    use mm_mapspace::{MapSpace, ProblemSpec};
    use rand::SeedableRng;

    #[test]
    fn drive_respects_budget_and_records_trace() {
        let problem = ProblemSpec::conv1d(64, 3);
        let space = MapSpace::new(problem, mm_mapspace::MappingConstraints::example());
        let mut rng = StdRng::seed_from_u64(0);
        let mut obj = FnObjective::new(|m: &Mapping| m.tiles[0].iter().sum::<u64>() as f64);
        let mut rs = RandomSearch::new();
        let trace = drive(&mut rs, &space, &mut obj, Budget::iterations(25), &mut rng);
        assert_eq!(trace.len(), 25);
        assert_eq!(obj.queries(), 25);
        assert!(trace.best_cost.is_finite());
    }

    #[test]
    fn iso_time_budget_with_unbounded_lookahead_evaluates_promptly() {
        // Regression: RandomSearch's lookahead is usize::MAX; under an
        // iso-time budget (huge max_queries) the driver must not ask for
        // the whole remaining query budget as one proposal batch.
        let problem = ProblemSpec::conv1d(64, 3);
        let space = MapSpace::new(problem, mm_mapspace::MappingConstraints::example());
        let mut rng = StdRng::seed_from_u64(1);
        let mut obj = FnObjective::new(|m: &Mapping| m.tiles[0].iter().sum::<u64>() as f64);
        let mut rs = RandomSearch::new();
        let start = std::time::Instant::now();
        let trace = drive(
            &mut rs,
            &space,
            &mut obj,
            Budget::time(std::time::Duration::from_millis(20)),
            &mut rng,
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "driver must stay responsive under a time budget"
        );
        assert!(!trace.is_empty(), "evaluations must actually happen");
    }

    #[test]
    fn blanket_searcher_impl_matches_drive() {
        let problem = ProblemSpec::conv1d(64, 3);
        let space = MapSpace::new(problem, mm_mapspace::MappingConstraints::example());
        let mut obj_a = FnObjective::new(|m: &Mapping| m.tiles[0].iter().sum::<u64>() as f64);
        let mut obj_b = FnObjective::new(|m: &Mapping| m.tiles[0].iter().sum::<u64>() as f64);
        let trace_a = drive(
            &mut RandomSearch::new(),
            &space,
            &mut obj_a,
            Budget::iterations(10),
            &mut StdRng::seed_from_u64(3),
        );
        let trace_b = Searcher::search(
            &mut RandomSearch::new(),
            &space,
            &mut obj_b,
            Budget::iterations(10),
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(trace_a.best_cost, trace_b.best_cost);
        assert_eq!(trace_a.len(), trace_b.len());
    }
}
