//! # mm-search
//!
//! Black-box mapping-space search baselines, as used for comparison in
//! Section 5 of *Mind Mappings* (ASPLOS 2021):
//!
//! * [`SimulatedAnnealing`] — the `simanneal`-style baseline (Appendix A);
//! * [`GeneticAlgorithm`] — the DEAP-style baseline with population 100,
//!   crossover probability 0.75, and per-attribute mutation probability 0.05;
//! * [`DdpgAgent`] — a deep-deterministic-policy-gradient actor–critic agent
//!   in the spirit of the HAQ-derived RL baseline;
//! * [`RandomSearch`] — uniform random sampling (a sanity baseline).
//!
//! All searchers implement the [`Searcher`] trait over an [`Objective`]
//! (typically the `mm-accel` cost model, or the Mind Mappings surrogate) and
//! produce a [`SearchTrace`]: the best-so-far cost after every cost-function
//! query plus wall-clock timing, which is exactly what the iso-iteration
//! (Figure 5) and iso-time (Figure 6) comparisons need.
//!
//! Since the introduction of the parallel mapper (`mm-mapper`), the trait is
//! split in two: the stepwise [`ProposalSearch`] protocol
//! (`propose`/`report`) is the primitive, and [`Searcher`] — the classic
//! monolithic loop — is blanket-implemented for every `ProposalSearch` via
//! [`proposal::drive`]. All four baselines (random search, SA, GA, and the
//! DDPG agent) are stepwise state machines.
//!
//! Multi-shard drivers additionally speak the **global-best sync protocol**:
//! a [`SyncPolicy`] decides *when* a shard re-anchors on the shared
//! incumbent (always, on stall, or with annealed probability), and each
//! searcher's [`ProposalSearch::observe_global_best`] implements the
//! re-anchor/restart mechanics for its own trajectory representation.

pub mod annealing;
pub mod genetic;
pub mod objective;
pub mod proposal;
pub mod random;
pub mod rl;
pub mod sync;
pub mod trace;

pub use annealing::{AnnealingConfig, SimulatedAnnealing};
pub use genetic::{GeneticAlgorithm, GeneticConfig};
pub use objective::{split_evenly, Budget, FnObjective, Objective, Searcher};
pub use proposal::{drive, ProposalBuf, ProposalSearch};
pub use random::RandomSearch;
pub use rl::{DdpgAgent, DdpgConfig};
pub use sync::{SyncAction, SyncPolicy, SyncState};
pub use trace::{
    merge_shard_convergence, ConvergencePoint, ConvergenceTrace, SearchTrace, TracePoint,
};

/// Intern-once helper for the searchers' proposal/acceptance counters: each
/// call site owns a `OnceLock` cell, so the hot path is one atomic load plus
/// the counter's own relaxed level check.
pub(crate) fn tele_counter(
    cell: &'static std::sync::OnceLock<std::sync::Arc<mm_telemetry::Counter>>,
    name: &'static str,
) -> &'static std::sync::Arc<mm_telemetry::Counter> {
    cell.get_or_init(|| mm_telemetry::counter(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{MapSpace, Mapping, ProblemSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// End-to-end smoke test: every searcher improves on the average random
    /// mapping for a small 1-D convolution problem.
    #[test]
    fn all_searchers_beat_average_random_mapping() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(512, 7);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        let mut rng = StdRng::seed_from_u64(99);

        // Baseline: mean EDP of random mappings.
        let mut mean = 0.0;
        let samples = 30;
        for _ in 0..samples {
            mean += model.edp(&space.random_mapping(&mut rng));
        }
        mean /= samples as f64;

        let budget = Budget::iterations(300);
        let mut searchers: Vec<Box<dyn Searcher>> = vec![
            Box::new(RandomSearch::new()),
            Box::new(SimulatedAnnealing::new(AnnealingConfig::default())),
            Box::new(GeneticAlgorithm::new(GeneticConfig {
                population: 20,
                ..GeneticConfig::default()
            })),
            Box::new(DdpgAgent::new(DdpgConfig {
                warmup: 16,
                batch_size: 8,
                ..DdpgConfig::default()
            })),
        ];
        for searcher in &mut searchers {
            let mut objective = FnObjective::new(|m: &Mapping| model.edp(m));
            let trace = searcher.search(&space, &mut objective, budget, &mut rng);
            assert!(
                trace.best_cost < mean,
                "{} did not beat the random-mapping mean: {} vs {}",
                searcher.name(),
                trace.best_cost,
                mean
            );
            assert!(trace.best_mapping.is_some());
            assert!(space.is_member(trace.best_mapping.as_ref().unwrap()));
        }
    }
}
