//! Uniform random search: repeatedly sample valid mappings and keep the
//! best. A sanity baseline that any guided method should beat.

use std::time::Instant;

use mm_mapspace::MapSpace;
use rand::rngs::StdRng;

use crate::objective::{Budget, Objective, Searcher};
use crate::trace::SearchTrace;

/// Uniform random search.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl RandomSearch {
    /// Create a random-search baseline.
    pub fn new() -> Self {
        RandomSearch
    }
}

impl Searcher for RandomSearch {
    fn name(&self) -> &str {
        "Random"
    }

    fn search(
        &mut self,
        space: &MapSpace,
        objective: &mut dyn Objective,
        budget: Budget,
        rng: &mut StdRng,
    ) -> SearchTrace {
        let start = Instant::now();
        let mut trace = SearchTrace::new(self.name());
        while !budget.exhausted(objective.queries(), start.elapsed()) {
            let mapping = space.random_mapping(rng);
            let cost = objective.cost(&mapping);
            trace.record(cost, &mapping, start.elapsed());
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{Mapping, ProblemSpec};
    use rand::SeedableRng;

    #[test]
    fn random_search_exhausts_budget_and_finds_finite_cost() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(256, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        let mut rng = StdRng::seed_from_u64(11);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut rs = RandomSearch::new();
        let trace = rs.search(&space, &mut obj, Budget::iterations(50), &mut rng);
        assert_eq!(trace.len(), 50);
        assert!(trace.best_cost.is_finite());
        assert!(trace.best_cost > 0.0);
        assert_eq!(trace.method, "Random");
    }
}
