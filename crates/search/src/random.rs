//! Uniform random search: repeatedly sample valid mappings and keep the
//! best. A sanity baseline that any guided method should beat.
//!
//! Random search is the ideal pipelining citizen: proposals are independent
//! of evaluation results, so its [`ProposalSearch::lookahead`] is unbounded
//! and an orchestrator can batch arbitrarily many proposals onto an
//! evaluation pool without waiting for reports.

use mm_mapspace::{MapSpaceView, Mapping};
use rand::rngs::StdRng;

use crate::proposal::ProposalSearch;

/// Uniform random search.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl RandomSearch {
    /// Create a random-search baseline.
    pub fn new() -> Self {
        RandomSearch
    }
}

impl ProposalSearch for RandomSearch {
    fn name(&self) -> &str {
        "Random"
    }

    fn begin(&mut self, _space: &dyn MapSpaceView, _horizon: Option<u64>, _rng: &mut StdRng) {}

    fn lookahead(&self) -> usize {
        usize::MAX
    }

    fn propose(
        &mut self,
        space: &dyn MapSpaceView,
        rng: &mut StdRng,
        max: usize,
        out: &mut Vec<Mapping>,
    ) {
        for _ in 0..max.max(1) {
            out.push(space.random_mapping(rng));
        }
    }

    fn report(&mut self, _mapping: &Mapping, _cost: f64, _rng: &mut StdRng) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Budget, FnObjective, Searcher};
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{MapSpace, Mapping, ProblemSpec};
    use rand::SeedableRng;

    #[test]
    fn random_search_exhausts_budget_and_finds_finite_cost() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(256, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        let mut rng = StdRng::seed_from_u64(11);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut rs = RandomSearch::new();
        let trace = rs.search(&space, &mut obj, Budget::iterations(50), &mut rng);
        assert_eq!(trace.len(), 50);
        assert!(trace.best_cost.is_finite());
        assert!(trace.best_cost > 0.0);
        assert_eq!(trace.method, "Random");
    }

    #[test]
    fn proposals_are_valid_and_batchable() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(128, 3);
        let space = MapSpace::new(problem, arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(1);
        let mut rs = RandomSearch::new();
        rs.begin(&space, None, &mut rng);
        let mut buf = Vec::new();
        rs.propose(&space, &mut rng, 32, &mut buf);
        assert_eq!(buf.len(), 32);
        assert!(buf.iter().all(|m| space.is_member(m)));
    }
}
