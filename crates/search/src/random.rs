//! Uniform random search: repeatedly sample valid mappings and keep the
//! best. A sanity baseline that any guided method should beat.
//!
//! Random search is the ideal pipelining citizen: proposals are independent
//! of evaluation results, so its [`ProposalSearch::lookahead`] is unbounded
//! and an orchestrator can batch arbitrarily many proposals onto an
//! evaluation pool without waiting for reports.
//!
//! Under a [`SyncPolicy`](crate::SyncPolicy), random search turns into
//! *anchored* random search: once a global best is observed, every second
//! proposal is a neighbour of the anchor instead of a uniform sample —
//! half the budget keeps exploring globally, half exploits the incumbent's
//! basin. Without an observation the behaviour is exactly uniform.

use mm_mapspace::{MapSpaceView, Mapping};
use rand::rngs::StdRng;

use crate::proposal::{ProposalBuf, ProposalSearch};
use crate::sync::SyncAction;

/// Uniform random search (anchored near the global best once one is
/// observed).
#[derive(Debug, Clone, Default)]
pub struct RandomSearch {
    /// The last observed global best; when set, every second proposal is a
    /// neighbour of it.
    anchor: Option<Mapping>,
    /// Proposal counter driving the uniform/neighbour alternation.
    proposed: u64,
}

impl RandomSearch {
    /// Create a random-search baseline.
    pub fn new() -> Self {
        RandomSearch::default()
    }
}

impl ProposalSearch for RandomSearch {
    fn name(&self) -> &str {
        "Random"
    }

    fn begin(&mut self, _space: &dyn MapSpaceView, _horizon: Option<u64>, _rng: &mut StdRng) {
        self.anchor = None;
        self.proposed = 0;
    }

    fn lookahead(&self) -> usize {
        usize::MAX
    }

    // mm-lint: hot-path — the steady-state eval loop must not allocate.
    fn propose(
        &mut self,
        space: &dyn MapSpaceView,
        rng: &mut StdRng,
        max: usize,
        out: &mut ProposalBuf,
    ) {
        for _ in 0..max.max(1) {
            self.proposed += 1;
            match &self.anchor {
                // Alternate: exploit the anchor's neighbourhood on even
                // proposals, keep sampling uniformly on odd ones.
                Some(anchor) if self.proposed.is_multiple_of(2) => {
                    space.neighbor_into(anchor, out.next_slot(), rng);
                }
                _ => space.random_mapping_into(out.next_slot(), rng),
            }
        }
        static PROPOSED: std::sync::OnceLock<std::sync::Arc<mm_telemetry::Counter>> =
            std::sync::OnceLock::new();
        crate::tele_counter(&PROPOSED, "search.random.proposed").bump(max.max(1) as u64);
    }

    fn report(&mut self, _mapping: &Mapping, _cost: f64, _rng: &mut StdRng) {}

    /// Anchor future proposals near the incumbent. [`SyncAction::Restart`]
    /// additionally resets the alternation phase, so the reseeded stream
    /// leads with a fresh uniform sample before exploiting the anchor.
    fn observe_global_best(
        &mut self,
        _space: &dyn MapSpaceView,
        mapping: &Mapping,
        _cost: f64,
        action: SyncAction,
        _rng: &mut StdRng,
    ) {
        self.anchor = Some(mapping.clone());
        if action == SyncAction::Restart {
            self.proposed = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Budget, FnObjective, Searcher};
    use mm_accel::{Architecture, CostModel};
    use mm_mapspace::{MapSpace, Mapping, ProblemSpec};
    use rand::SeedableRng;

    #[test]
    fn random_search_exhausts_budget_and_finds_finite_cost() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(256, 5);
        let space = MapSpace::new(problem.clone(), arch.mapping_constraints());
        let model = CostModel::new(arch, problem);
        let mut rng = StdRng::seed_from_u64(11);
        let mut obj = FnObjective::new(|m: &Mapping| model.edp(m));
        let mut rs = RandomSearch::new();
        let trace = rs.search(&space, &mut obj, Budget::iterations(50), &mut rng);
        assert_eq!(trace.len(), 50);
        assert!(trace.best_cost.is_finite());
        assert!(trace.best_cost > 0.0);
        assert_eq!(trace.method, "Random");
    }

    #[test]
    fn proposals_are_valid_and_batchable() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(128, 3);
        let space = MapSpace::new(problem, arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(1);
        let mut rs = RandomSearch::new();
        rs.begin(&space, None, &mut rng);
        let mut buf = ProposalBuf::new();
        rs.propose(&space, &mut rng, 32, &mut buf);
        assert_eq!(buf.len(), 32);
        assert!(buf.iter().all(|m| space.is_member(m)));
    }

    #[test]
    fn observed_best_anchors_half_the_proposals() {
        let arch = Architecture::example();
        let problem = ProblemSpec::conv1d(128, 3);
        let space = MapSpace::new(problem, arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(2);
        let mut rs = RandomSearch::new();
        rs.begin(&space, None, &mut rng);
        let anchor = space.random_mapping(&mut rng);
        rs.observe_global_best(&space, &anchor, 1.0, SyncAction::Adopt, &mut rng);
        let mut buf = ProposalBuf::new();
        rs.propose(&space, &mut rng, 64, &mut buf);
        assert_eq!(buf.len(), 64);
        assert!(buf.iter().all(|m| space.is_member(m)));
        // Neighbours perturb a single attribute, so anchored proposals stay
        // closer to the anchor than uniform samples do: at least some of
        // them must share the anchor's L2 loop order.
        let close = buf
            .iter()
            .filter(|m| m.loop_orders == anchor.loop_orders)
            .count();
        assert!(close > 0, "no proposal stayed near the anchor");
        // begin() drops the anchor for the next run.
        rs.begin(&space, None, &mut rng);
        assert!(rs.anchor.is_none());
    }
}
