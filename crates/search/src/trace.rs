//! Search traces: best-so-far cost after every cost-function query.
//!
//! Figures 5 and 6 plot the (run-averaged) best-so-far EDP against the number
//! of iterations and against wall-clock time respectively; [`SearchTrace`]
//! records exactly the data needed to regenerate both.

use std::time::Duration;

use mm_mapspace::Mapping;
use serde::{Deserialize, Serialize};

/// One point of a search trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Number of cost-function queries made so far (1-based).
    pub queries: u64,
    /// Cost of the mapping evaluated at this query.
    pub cost: f64,
    /// Best cost observed up to and including this query.
    pub best_cost: f64,
    /// Wall-clock time elapsed since the start of the search.
    pub elapsed_s: f64,
}

/// The result of one search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Name of the search method that produced the trace.
    pub method: String,
    /// Per-query progress points.
    pub points: Vec<TracePoint>,
    /// Best cost found.
    pub best_cost: f64,
    /// The mapping achieving [`best_cost`](Self::best_cost).
    pub best_mapping: Option<Mapping>,
    /// Total wall-clock duration of the search.
    pub wall_time_s: f64,
}

impl SearchTrace {
    /// Create an empty trace for a method.
    pub fn new(method: impl Into<String>) -> Self {
        SearchTrace {
            method: method.into(),
            points: Vec::new(),
            best_cost: f64::INFINITY,
            best_mapping: None,
            wall_time_s: 0.0,
        }
    }

    /// Record a cost evaluation; updates the best-so-far bookkeeping.
    pub fn record(&mut self, cost: f64, mapping: &Mapping, elapsed: Duration) {
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_mapping = Some(mapping.clone());
        }
        self.points.push(TracePoint {
            queries: self.points.len() as u64 + 1,
            cost,
            best_cost: self.best_cost,
            elapsed_s: elapsed.as_secs_f64(),
        });
        self.wall_time_s = elapsed.as_secs_f64();
    }

    /// Number of cost evaluations recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Best cost after at most `queries` cost evaluations (∞ if none made).
    pub fn best_after_queries(&self, queries: u64) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.queries <= queries)
            .last()
            .map_or(f64::INFINITY, |p| p.best_cost)
    }

    /// Best cost achieved within the first `seconds` of wall-clock time.
    pub fn best_after_time(&self, seconds: f64) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.elapsed_s <= seconds)
            .last()
            .map_or(f64::INFINITY, |p| p.best_cost)
    }

    /// Average wall-clock seconds per cost-function query.
    pub fn seconds_per_query(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.wall_time_s / self.points.len() as f64
        }
    }

    /// Average several traces of the same method point-wise (per query
    /// index), as done for the 100-run averages in Figures 5 and 6.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn average(traces: &[SearchTrace]) -> SearchTrace {
        assert!(!traces.is_empty(), "cannot average zero traces");
        let method = traces[0].method.clone();
        let max_len = traces.iter().map(|t| t.points.len()).max().unwrap_or(0);
        let mut points = Vec::with_capacity(max_len);
        for i in 0..max_len {
            let mut best = 0.0f64;
            let mut cost = 0.0f64;
            let mut elapsed = 0.0f64;
            let mut n = 0usize;
            for t in traces {
                // Clamp to the last point so shorter traces extend flat.
                if t.points.is_empty() {
                    continue;
                }
                let p = t.points[i.min(t.points.len() - 1)];
                best += p.best_cost;
                cost += p.cost;
                elapsed += p.elapsed_s;
                n += 1;
            }
            let n = n.max(1) as f64;
            points.push(TracePoint {
                queries: i as u64 + 1,
                cost: cost / n,
                best_cost: best / n,
                elapsed_s: elapsed / n,
            });
        }
        let best_cost = traces.iter().map(|t| t.best_cost).sum::<f64>() / traces.len() as f64;
        SearchTrace {
            method,
            points,
            best_cost,
            best_mapping: traces
                .iter()
                .min_by(|a, b| a.best_cost.partial_cmp(&b.best_cost).unwrap())
                .and_then(|t| t.best_mapping.clone()),
            wall_time_s: traces.iter().map(|t| t.wall_time_s).sum::<f64>() / traces.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_mapspace::ProblemSpec;

    fn mapping() -> Mapping {
        Mapping::minimal(&ProblemSpec::conv1d(32, 3))
    }

    #[test]
    fn record_tracks_best_so_far() {
        let mut t = SearchTrace::new("SA");
        let m = mapping();
        t.record(10.0, &m, Duration::from_millis(1));
        t.record(20.0, &m, Duration::from_millis(2));
        t.record(5.0, &m, Duration::from_millis(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.best_cost, 5.0);
        assert_eq!(t.points[1].best_cost, 10.0);
        assert_eq!(t.points[2].best_cost, 5.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn best_after_queries_and_time() {
        let mut t = SearchTrace::new("GA");
        let m = mapping();
        t.record(10.0, &m, Duration::from_millis(10));
        t.record(4.0, &m, Duration::from_millis(20));
        t.record(2.0, &m, Duration::from_millis(30));
        assert_eq!(t.best_after_queries(1), 10.0);
        assert_eq!(t.best_after_queries(2), 4.0);
        assert_eq!(t.best_after_queries(100), 2.0);
        assert_eq!(t.best_after_time(0.015), 10.0);
        assert_eq!(t.best_after_time(10.0), 2.0);
        assert!(t.best_after_time(0.001).is_infinite());
        assert!(t.seconds_per_query() > 0.0);
    }

    #[test]
    fn average_of_traces() {
        let m = mapping();
        let mut a = SearchTrace::new("RL");
        a.record(10.0, &m, Duration::from_millis(1));
        a.record(6.0, &m, Duration::from_millis(2));
        let mut b = SearchTrace::new("RL");
        b.record(20.0, &m, Duration::from_millis(1));
        let avg = SearchTrace::average(&[a, b]);
        assert_eq!(avg.points.len(), 2);
        assert_eq!(avg.points[0].best_cost, 15.0);
        // Second point: a has 6, b extends flat at 20 -> 13.
        assert_eq!(avg.points[1].best_cost, 13.0);
        assert_eq!(avg.best_cost, 13.0);
        assert_eq!(avg.method, "RL");
    }

    #[test]
    #[should_panic(expected = "cannot average zero traces")]
    fn average_rejects_empty_input() {
        let _ = SearchTrace::average(&[]);
    }
}
