//! Search traces: best-so-far cost after every cost-function query.
//!
//! Figures 5 and 6 plot the (run-averaged) best-so-far EDP against the number
//! of iterations and against wall-clock time respectively; [`SearchTrace`]
//! records exactly the data needed to regenerate both. The parallel paths
//! (sharded `Mapper`, serve scheduler) record the cheaper
//! [`ConvergenceTrace`] — improvement points indexed by evaluation count, no
//! mapping clones, no clock reads — and merge per-shard traces
//! deterministically with [`merge_shard_convergence`].

use std::time::Duration;

use mm_mapspace::Mapping;
use serde::{Deserialize, Serialize};

/// One improvement point of a convergence trace: after `evals` cost
/// evaluations, the best cost seen so far dropped to `best_cost`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Number of cost evaluations made up to and including the improving
    /// one (1-based).
    pub evals: u64,
    /// The new best cost.
    pub best_cost: f64,
}

/// A best-so-far convergence curve indexed by evaluation count.
///
/// Unlike [`SearchTrace`] this stores only *improvements* (one point per
/// new best, not one per query) and never clones mappings or reads clocks,
/// so the parallel hot paths can record it cheaply. Eval indices — not
/// wall-clock — are the x-axis, which keeps the curve deterministic across
/// worker counts.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Improvement points in strictly increasing `evals` order with
    /// strictly decreasing `best_cost`.
    pub points: Vec<ConvergencePoint>,
    /// Total evaluations the trace covers (the x-axis extent).
    pub total_evals: u64,
}

impl ConvergenceTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the result of one more evaluation; stores a point only when
    /// `cost` improves on the best so far.
    #[inline]
    pub fn record(&mut self, cost: f64) {
        self.total_evals += 1;
        if cost < self.best_cost() {
            self.points.push(ConvergencePoint {
                evals: self.total_evals,
                best_cost: cost,
            });
        }
    }

    /// The best cost recorded so far (∞ when empty).
    pub fn best_cost(&self) -> f64 {
        self.points.last().map_or(f64::INFINITY, |p| p.best_cost)
    }

    /// Number of improvement points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no improvement was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Best cost after at most `evals` evaluations (∞ if no improvement
    /// had landed yet).
    pub fn best_after_evals(&self, evals: u64) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.evals <= evals)
            .last()
            .map_or(f64::INFINITY, |p| p.best_cost)
    }
}

/// Merge per-shard convergence traces into one global curve, deterministic
/// in the shard traces alone (never in thread scheduling).
///
/// Shards run concurrently, so there is no true global evaluation order;
/// this uses the canonical round-robin interleaving — shard 0's first eval
/// is global eval 1, shard 1's first is 2, …, wrapping until shorter shards
/// are exhausted — which matches how the barrier-synced mapper grants
/// budget. Shard `s`'s `r`-th eval (0-based) lands at global index
/// `r + Σ_{s'<s} min(E_{s'}, r+1) + Σ_{s'>s} min(E_{s'}, r) + 1` where
/// `E_{s'}` is shard `s'`'s total; the merged curve keeps only the points
/// that still improve in that order.
pub fn merge_shard_convergence(shards: &[ConvergenceTrace]) -> ConvergenceTrace {
    let totals: Vec<u64> = shards.iter().map(|t| t.total_evals).collect();
    let mut merged: Vec<(u64, usize, f64)> = Vec::new();
    for (s, trace) in shards.iter().enumerate() {
        for p in &trace.points {
            let r = p.evals - 1; // 0-based round index within the shard
            let before: u64 = totals[..s].iter().map(|&e| e.min(r + 1)).sum();
            let after: u64 = totals[s + 1..].iter().map(|&e| e.min(r)).sum();
            merged.push((r + before + after + 1, s, p.best_cost));
        }
    }
    merged.sort_by_key(|&(g, s, _)| (g, s));
    let mut out = ConvergenceTrace {
        points: Vec::new(),
        total_evals: totals.iter().sum(),
    };
    for (g, _, cost) in merged {
        if cost < out.best_cost() {
            out.points.push(ConvergencePoint {
                evals: g,
                best_cost: cost,
            });
        }
    }
    out
}

/// One point of a search trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Number of cost-function queries made so far (1-based).
    pub queries: u64,
    /// Cost of the mapping evaluated at this query.
    pub cost: f64,
    /// Best cost observed up to and including this query.
    pub best_cost: f64,
    /// Wall-clock time elapsed since the start of the search.
    pub elapsed_s: f64,
}

/// The result of one search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Name of the search method that produced the trace.
    pub method: String,
    /// Per-query progress points.
    pub points: Vec<TracePoint>,
    /// Best cost found.
    pub best_cost: f64,
    /// The mapping achieving [`best_cost`](Self::best_cost).
    pub best_mapping: Option<Mapping>,
    /// Total wall-clock duration of the search.
    pub wall_time_s: f64,
}

impl SearchTrace {
    /// Create an empty trace for a method.
    pub fn new(method: impl Into<String>) -> Self {
        SearchTrace {
            method: method.into(),
            points: Vec::new(),
            best_cost: f64::INFINITY,
            best_mapping: None,
            wall_time_s: 0.0,
        }
    }

    /// Record a cost evaluation; updates the best-so-far bookkeeping.
    pub fn record(&mut self, cost: f64, mapping: &Mapping, elapsed: Duration) {
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_mapping = Some(mapping.clone());
        }
        self.points.push(TracePoint {
            queries: self.points.len() as u64 + 1,
            cost,
            best_cost: self.best_cost,
            elapsed_s: elapsed.as_secs_f64(),
        });
        self.wall_time_s = elapsed.as_secs_f64();
    }

    /// Number of cost evaluations recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Best cost after at most `queries` cost evaluations (∞ if none made).
    pub fn best_after_queries(&self, queries: u64) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.queries <= queries)
            .last()
            .map_or(f64::INFINITY, |p| p.best_cost)
    }

    /// Best cost achieved within the first `seconds` of wall-clock time.
    pub fn best_after_time(&self, seconds: f64) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.elapsed_s <= seconds)
            .last()
            .map_or(f64::INFINITY, |p| p.best_cost)
    }

    /// Collapse the per-query trace into its improvement-only
    /// [`ConvergenceTrace`] (the shape the parallel paths record natively).
    pub fn convergence(&self) -> ConvergenceTrace {
        let mut out = ConvergenceTrace::new();
        for p in &self.points {
            out.record(p.cost);
        }
        out
    }

    /// Average wall-clock seconds per cost-function query.
    pub fn seconds_per_query(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.wall_time_s / self.points.len() as f64
        }
    }

    /// Average several traces of the same method point-wise (per query
    /// index), as done for the 100-run averages in Figures 5 and 6.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn average(traces: &[SearchTrace]) -> SearchTrace {
        assert!(!traces.is_empty(), "cannot average zero traces");
        let method = traces[0].method.clone();
        let max_len = traces.iter().map(|t| t.points.len()).max().unwrap_or(0);
        let mut points = Vec::with_capacity(max_len);
        for i in 0..max_len {
            let mut best = 0.0f64;
            let mut cost = 0.0f64;
            let mut elapsed = 0.0f64;
            let mut n = 0usize;
            for t in traces {
                // Clamp to the last point so shorter traces extend flat.
                if t.points.is_empty() {
                    continue;
                }
                let p = t.points[i.min(t.points.len() - 1)];
                best += p.best_cost;
                cost += p.cost;
                elapsed += p.elapsed_s;
                n += 1;
            }
            let n = n.max(1) as f64;
            points.push(TracePoint {
                queries: i as u64 + 1,
                cost: cost / n,
                best_cost: best / n,
                elapsed_s: elapsed / n,
            });
        }
        let best_cost = traces.iter().map(|t| t.best_cost).sum::<f64>() / traces.len() as f64;
        SearchTrace {
            method,
            points,
            best_cost,
            best_mapping: traces
                .iter()
                .min_by(|a, b| a.best_cost.total_cmp(&b.best_cost))
                .and_then(|t| t.best_mapping.clone()),
            wall_time_s: traces.iter().map(|t| t.wall_time_s).sum::<f64>() / traces.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_mapspace::ProblemSpec;

    fn mapping() -> Mapping {
        Mapping::minimal(&ProblemSpec::conv1d(32, 3))
    }

    #[test]
    fn record_tracks_best_so_far() {
        let mut t = SearchTrace::new("SA");
        let m = mapping();
        t.record(10.0, &m, Duration::from_millis(1));
        t.record(20.0, &m, Duration::from_millis(2));
        t.record(5.0, &m, Duration::from_millis(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.best_cost, 5.0);
        assert_eq!(t.points[1].best_cost, 10.0);
        assert_eq!(t.points[2].best_cost, 5.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn best_after_queries_and_time() {
        let mut t = SearchTrace::new("GA");
        let m = mapping();
        t.record(10.0, &m, Duration::from_millis(10));
        t.record(4.0, &m, Duration::from_millis(20));
        t.record(2.0, &m, Duration::from_millis(30));
        assert_eq!(t.best_after_queries(1), 10.0);
        assert_eq!(t.best_after_queries(2), 4.0);
        assert_eq!(t.best_after_queries(100), 2.0);
        assert_eq!(t.best_after_time(0.015), 10.0);
        assert_eq!(t.best_after_time(10.0), 2.0);
        assert!(t.best_after_time(0.001).is_infinite());
        assert!(t.seconds_per_query() > 0.0);
    }

    #[test]
    fn average_of_traces() {
        let m = mapping();
        let mut a = SearchTrace::new("RL");
        a.record(10.0, &m, Duration::from_millis(1));
        a.record(6.0, &m, Duration::from_millis(2));
        let mut b = SearchTrace::new("RL");
        b.record(20.0, &m, Duration::from_millis(1));
        let avg = SearchTrace::average(&[a, b]);
        assert_eq!(avg.points.len(), 2);
        assert_eq!(avg.points[0].best_cost, 15.0);
        // Second point: a has 6, b extends flat at 20 -> 13.
        assert_eq!(avg.points[1].best_cost, 13.0);
        assert_eq!(avg.best_cost, 13.0);
        assert_eq!(avg.method, "RL");
    }

    #[test]
    #[should_panic(expected = "cannot average zero traces")]
    fn average_rejects_empty_input() {
        let _ = SearchTrace::average(&[]);
    }

    #[test]
    fn convergence_records_improvements_only() {
        let mut t = ConvergenceTrace::new();
        for cost in [10.0, 12.0, 8.0, 8.0, 3.0] {
            t.record(cost);
        }
        assert_eq!(t.total_evals, 5);
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.points,
            vec![
                ConvergencePoint {
                    evals: 1,
                    best_cost: 10.0
                },
                ConvergencePoint {
                    evals: 3,
                    best_cost: 8.0
                },
                ConvergencePoint {
                    evals: 5,
                    best_cost: 3.0
                },
            ]
        );
        assert_eq!(t.best_after_evals(0), f64::INFINITY);
        assert_eq!(t.best_after_evals(2), 10.0);
        assert_eq!(t.best_after_evals(4), 8.0);
        assert_eq!(t.best_cost(), 3.0);
    }

    #[test]
    fn search_trace_collapses_to_the_same_convergence() {
        let m = mapping();
        let mut t = SearchTrace::new("SA");
        for (cost, ms) in [(10.0, 1), (12.0, 2), (8.0, 3)] {
            t.record(cost, &m, Duration::from_millis(ms));
        }
        let c = t.convergence();
        assert_eq!(c.total_evals, 3);
        assert_eq!(c.best_cost(), t.best_cost);
        assert_eq!(c.len(), 2, "one point per improvement");
    }

    #[test]
    fn shard_merge_round_robins_deterministically() {
        // Shard 0: evals at 1 (cost 10) and 3 (cost 4), total 4.
        // Shard 1: eval at 1 (cost 6), total 2.
        let mut s0 = ConvergenceTrace::new();
        for cost in [10.0, 11.0, 4.0, 9.0] {
            s0.record(cost);
        }
        let mut s1 = ConvergenceTrace::new();
        for cost in [6.0, 7.0] {
            s1.record(cost);
        }
        let merged = merge_shard_convergence(&[s0.clone(), s1.clone()]);
        assert_eq!(merged.total_evals, 6);
        // Round-robin order: s0e1=g1, s1e1=g2, s0e2=g3, s1e2=g4, s0e3=g5,
        // s0e4=g6. Improvements: g1 cost 10, g2 cost 6, g5 cost 4.
        assert_eq!(
            merged.points,
            vec![
                ConvergencePoint {
                    evals: 1,
                    best_cost: 10.0
                },
                ConvergencePoint {
                    evals: 2,
                    best_cost: 6.0
                },
                ConvergencePoint {
                    evals: 5,
                    best_cost: 4.0
                },
            ]
        );
        // Deterministic in the inputs: shard order matters, call order
        // does not.
        assert_eq!(merged, merge_shard_convergence(&[s0, s1]));
    }

    #[test]
    fn shard_merge_of_empty_and_single_inputs() {
        assert!(merge_shard_convergence(&[]).is_empty());
        let mut only = ConvergenceTrace::new();
        only.record(5.0);
        let merged = merge_shard_convergence(&[ConvergenceTrace::new(), only.clone()]);
        assert_eq!(merged.points, only.points);
        assert_eq!(merged.total_evals, 1);
    }
}
