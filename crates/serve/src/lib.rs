//! # mm-serve
//!
//! A whole-network mapping service over a shared evaluation pool: the
//! "map this whole model" layer of the Mind Mappings reproduction.
//!
//! The paper searches one layer at a time; production workloads are whole
//! networks whose layers repeat shapes heavily. `mm-serve` accepts a
//! [`Network`](mm_workloads::Network) (ordered named layers with repeat
//! counts — e.g. [`table1_network`](mm_workloads::table1_network)), plans
//! one search job per *distinct* layer shape, and multiplexes those jobs
//! over one long-lived [`EvalPool`](mm_mapper::EvalPool):
//!
//! * [`MappingService`] — the front-end: bounded job queue, deterministic
//!   first-occurrence job ordering, per-call [`NetworkReport`]s, lifetime
//!   [`ServeStats`];
//! * a scheduler that keeps every active layer search's proposals in
//!   flight on the shared pool at once, so pool threads are spawned once
//!   per service — not once per layer — and never idle while any job has
//!   budget;
//! * a result cache keyed by a `(problem, architecture, search-config)`
//!   fingerprint: repeated layers are mapped once and replayed, within a
//!   network and across calls;
//! * a batched evaluation path: the pool hands whole proposal batches to
//!   [`CostEvaluator::evaluate_batch`](mm_mapper::CostEvaluator::evaluate_batch),
//!   which [`SurrogateEvaluator`] answers with a **single** forward pass of
//!   the surrogate MLP per batch.
//!
//! # Determinism
//!
//! Same seed + same network ⇒ the same report, byte for byte
//! ([`NetworkReport::canonical_string`]), independent of worker count,
//! concurrency, scheduling, and machine speed. Each layer's RNG stream is
//! derived from the master seed and the layer's fingerprint — not its
//! position — so cache replay returns exactly what a fresh search would.
//!
//! ```
//! use mm_serve::{MappingService, ServeConfig};
//! use mm_workloads::Network;
//! use mm_mapspace::ProblemSpec;
//! use mm_accel::Architecture;
//!
//! let net = Network::new("tiny")
//!     .with_layer("conv_a", ProblemSpec::conv1d(128, 3), 2)
//!     .with_layer("conv_b", ProblemSpec::conv1d(256, 5), 1)
//!     .with_layer("conv_a_again", ProblemSpec::conv1d(128, 3), 1);
//!
//! let config = ServeConfig::default().with_search_size(64);
//! let mut service = MappingService::new(Architecture::example(), config);
//! let report = service.map_network(&net);
//!
//! assert_eq!(report.layers.len(), 3);
//! assert_eq!(report.unique_searches, 2); // conv_a's shape is searched once
//! assert_eq!(report.cache_hits, 1);
//! assert_eq!(report.total_evaluations, 128);
//! assert!(report.aggregate.total_edp_js.unwrap() > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod eval;
pub mod report;
mod scheduler;
pub mod service;

pub use cache::{fingerprint_parts, CacheStats, CachedLayer};
pub use config::ServeConfig;
// Re-exported so serve callers can configure `ServeConfig::sync` without
// depending on mm-search directly.
pub use eval::SurrogateEvaluator;
pub use mm_search::{SyncAction, SyncPolicy};
pub use report::{LayerReport, NetworkAggregate, NetworkReport};
pub use service::{EvaluatorFactory, MappingService, SearchFactory, ServeStats};
