//! # mm-serve
//!
//! A multi-tenant whole-network mapping service over a shared evaluation
//! pool: the "map this whole model" layer of the Mind Mappings reproduction.
//!
//! The paper searches one layer at a time; production workloads are whole
//! networks whose layers repeat shapes heavily, submitted by many
//! concurrent callers. `mm-serve` accepts [`Network`](mm_workloads::Network)
//! requests (ordered named layers with repeat counts — e.g.
//! [`table1_network`](mm_workloads::table1_network)), plans one search job
//! per *distinct* layer shape, and multiplexes the jobs of every in-flight
//! request over one long-lived [`EvalPool`](mm_mapper::EvalPool):
//!
//! * [`MappingService`] — the front-end:
//!   [`submit`](MappingService::submit) admits a network under a
//!   [`RequestConfig`] through a bounded queue (typed [`AdmissionError`],
//!   optional per-tenant budgets) and returns a [`RequestHandle`];
//!   [`wait`](MappingService::wait) collects that request's
//!   [`NetworkReport`]. [`map_network`](MappingService::map_network) remains
//!   as synchronous sugar over submit + wait;
//! * a deterministic weighted fair-share scheduler: per-layer jobs of
//!   concurrent requests interleave on the shared pool proportionally to
//!   request priority, so pool threads are spawned once per service — not
//!   once per request — and never idle while any job has budget;
//! * a result cache keyed by a `(problem, architecture, search-config)`
//!   fingerprint: repeated layers are mapped once and replayed, within a
//!   request, across requests, and across tenants — and concurrent requests
//!   needing the same shape share one in-flight search;
//! * request-scoped failure isolation: a panicking evaluator fails only the
//!   requests attached to the panicking search ([`RequestError`]); pool
//!   workers survive and sibling requests complete byte-identically;
//! * a batched evaluation path: the pool hands whole proposal batches to
//!   [`CostEvaluator::evaluate_batch`](mm_mapper::CostEvaluator::evaluate_batch),
//!   which [`SurrogateEvaluator`] answers with a **single** forward pass of
//!   the surrogate MLP per batch.
//!
//! # Determinism
//!
//! Same seed + same network ⇒ the same report, byte for byte
//! ([`NetworkReport::canonical_string`]), independent of worker count,
//! concurrency, scheduling, machine speed — and of *sibling requests*: a
//! request's canonical report is unchanged by how many other requests are
//! in flight or how submissions interleave. Each layer's RNG stream is
//! derived from the request seed and the layer's fingerprint — not its
//! position — so cache replay and cross-request sharing return exactly what
//! a fresh search would.
//!
//! ```
//! use mm_serve::{MappingService, RequestConfig, ServiceConfig};
//! use mm_workloads::Network;
//! use mm_mapspace::ProblemSpec;
//! use mm_accel::Architecture;
//!
//! let net = Network::new("tiny")
//!     .with_layer("conv_a", ProblemSpec::conv1d(128, 3), 2)
//!     .with_layer("conv_b", ProblemSpec::conv1d(256, 5), 1)
//!     .with_layer("conv_a_again", ProblemSpec::conv1d(128, 3), 1);
//!
//! let mut service = MappingService::new(Architecture::example(), ServiceConfig::default());
//! let handle = service
//!     .submit(&net, RequestConfig::default().with_search_size(64))
//!     .expect("queue has room");
//! let report = service.wait(handle).expect("no evaluator panics");
//!
//! assert_eq!(report.layers.len(), 3);
//! assert_eq!(report.unique_searches, 2); // conv_a's shape is searched once
//! assert_eq!(report.cache_hits, 1);
//! assert_eq!(report.total_evaluations, 128);
//! assert!(report.aggregate.total_edp_js.unwrap() > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod eval;
pub mod report;
pub mod request;
mod scheduler;
pub mod service;

pub use cache::{fingerprint_parts, CacheStats, CachedLayer};
#[allow(deprecated)]
pub use config::ServeConfig;
pub use config::{RequestConfig, ServiceConfig, ServiceProfile};
// Re-exported so serve callers can configure `RequestConfig::sync` without
// depending on mm-search directly.
pub use eval::SurrogateEvaluator;
pub use mm_search::{SyncAction, SyncPolicy};
pub use report::{LayerReport, NetworkAggregate, NetworkReport};
pub use request::{AdmissionError, RequestError, RequestHandle};
pub use service::{EvaluatorFactory, MappingService, SearchFactory, ServeStats};
