//! The serve-side result cache: completed layer searches keyed by a
//! deterministic `(problem, architecture, search-config)` fingerprint.
//!
//! Real networks repeat shapes heavily (every block of a ResNet stage shares
//! one convolution shape), so the service maps each distinct fingerprint
//! once and replays the cached result for every other occurrence — within a
//! network and across `map_network` calls on a long-lived service.
//!
//! The cache keeps real statistics (hits, misses, inserts, evictions) and
//! supports an optional entry bound with **admission-ordered eviction**:
//! every insert carries the admission sequence of the search unit that
//! produced it (assigned when its request was planned, not when the search
//! finished), and the resident entry with the lowest sequence is evicted
//! first. Under the concurrent service, inserts land in unit *completion*
//! order — which varies with worker timing — but the surviving resident
//! set depends only on the admission sequence, so a fixed submit/wait call
//! sequence always leaves the same entries resident, unlike recency- or
//! completion-driven policies whose order would depend on replay patterns
//! or thread timing. (An insert admitted earlier than every resident entry
//! evicts itself immediately: the deterministic outcome of arriving late.)
//! Statistics are surfaced in `NetworkReport` and mirrored into
//! `mm-telemetry` counters.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

use mm_mapper::{Evaluation, OptMetric, SyncPolicy};
use mm_mapspace::Mapping;
use mm_search::ConvergenceTrace;
use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit over the given parts (with a separator byte between parts,
/// so `["ab", "c"]` and `["a", "bc"]` differ). Stable across processes —
/// unlike `DefaultHasher` — which keeps fingerprints usable as on-disk or
/// cross-run cache keys later.
pub fn fingerprint_parts(parts: &[&str]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The reusable outcome of one layer search.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedLayer {
    /// Best mapping found (None only if the search evaluated nothing).
    pub best_mapping: Option<Mapping>,
    /// Metrics of the best mapping, in the evaluator's priority order.
    pub best_metrics: Option<Evaluation>,
    /// The evaluator's metric priority list.
    pub metric_names: Vec<OptMetric>,
    /// Evaluations the producing search spent.
    pub evaluations: u64,
    /// Searcher name (e.g. `"Random"`, `"SA"`).
    pub searcher: String,
    /// The job-local sync policy the producing search ran under (also part
    /// of the fingerprint that keyed this entry).
    pub sync: SyncPolicy,
    /// Wall-clock seconds of the producing search.
    pub wall_time_s: f64,
    /// Whether the searcher exhausted its proposals before the budget.
    pub exhausted: bool,
    /// Merged best-so-far convergence of the producing search (present when
    /// telemetry was enabled while it ran; replayed verbatim on cache hits).
    pub convergence: Option<ConvergenceTrace>,
}

/// Observable result-cache statistics, surfaced in `NetworkReport`.
///
/// Hits and misses count cache lookups (one per layer
/// occurrence the service checks against the cache); inserts and evictions
/// count entry turnover under the optional capacity bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (including replacements of an existing key).
    pub inserts: u64,
    /// Entries evicted to the capacity bound (lowest admission sequence
    /// first).
    pub evictions: u64,
    /// Entries resident when the stats were read.
    pub entries: u64,
    /// The configured capacity bound (`None` = unbounded).
    pub capacity: Option<u64>,
}

fn tele_cache(kind: usize) -> &'static Arc<mm_telemetry::Counter> {
    static CELLS: [OnceLock<Arc<mm_telemetry::Counter>>; 4] = [const { OnceLock::new() }; 4];
    const NAMES: [&str; 4] = [
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.cache.inserts",
        "serve.cache.evictions",
    ];
    CELLS[kind].get_or_init(|| mm_telemetry::counter(NAMES[kind]))
}

/// Fingerprint-keyed store of completed layer searches, with statistics and
/// optional admission-ordered eviction.
#[derive(Default)]
pub(crate) struct ResultCache {
    map: HashMap<u64, Arc<CachedLayer>>,
    /// Resident keys by admission sequence (the eviction order: lowest
    /// sequence evicts first, regardless of the order inserts landed in).
    order: BTreeMap<u64, u64>,
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

impl ResultCache {
    /// Fresh cache bounded to `capacity` entries (`None` = unbounded).
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        ResultCache {
            capacity: capacity.map(|c| c.max(1)),
            ..ResultCache::default()
        }
    }

    /// Fetch without touching the statistics.
    ///
    /// Admission planning peeks first and records the lookups only once the
    /// request is accepted ([`note_lookup`](Self::note_lookup)), so a
    /// rejected submit perturbs no statistics.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<CachedLayer>> {
        self.map.get(&fingerprint).cloned()
    }

    /// Record a hit or miss observed earlier via [`get`](Self::get).
    pub fn note_lookup(&mut self, fingerprint: u64, hit: bool) {
        if hit {
            self.hits += 1;
            tele_cache(0).bump(1);
            mm_telemetry::event("serve.cache.hit", || format!("fp={fingerprint:016x}"));
        } else {
            self.misses += 1;
            tele_cache(1).bump(1);
            mm_telemetry::event("serve.cache.miss", || format!("fp={fingerprint:016x}"));
        }
    }

    /// Fetch and record a hit or miss (the service uses the two-phase
    /// `get` + `note_lookup` so rejected admissions stay stats-neutral).
    #[cfg(test)]
    pub fn lookup(&mut self, fingerprint: u64) -> Option<Arc<CachedLayer>> {
        let found = self.map.get(&fingerprint).cloned();
        self.note_lookup(fingerprint, found.is_some());
        found
    }

    #[cfg(test)]
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.map.contains_key(&fingerprint)
    }

    /// Insert (or replace) an entry, evicting the lowest-admission-sequence
    /// residents beyond the capacity bound.
    ///
    /// `seq` is the producing unit's admission sequence (the service passes
    /// its unit id, monotonic in planning order): eviction follows it
    /// instead of insert-arrival order, so the resident set is independent
    /// of the completion timing of concurrent units. Replacing a resident
    /// key keeps the key's original admission slot.
    pub fn insert(&mut self, fingerprint: u64, layer: Arc<CachedLayer>, seq: u64) {
        self.inserts += 1;
        tele_cache(2).bump(1);
        if self.map.insert(fingerprint, layer).is_none() {
            self.order.insert(seq, fingerprint);
        }
        if let Some(cap) = self.capacity {
            while self.map.len() > cap {
                let Some((_, oldest)) = self.order.pop_first() else {
                    break;
                };
                self.map.remove(&oldest);
                self.evictions += 1;
                tele_cache(3).bump(1);
                mm_telemetry::event("serve.cache.evict", || format!("fp={oldest:016x}"));
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Point-in-time statistics (counters plus residency/capacity).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            inserts: self.inserts,
            evictions: self.evictions,
            entries: self.map.len() as u64,
            capacity: self.capacity.map(|c| c as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(evaluations: u64) -> Arc<CachedLayer> {
        Arc::new(CachedLayer {
            best_mapping: None,
            best_metrics: Some(Evaluation::scalar(1.5)),
            metric_names: vec![OptMetric::Edp],
            evaluations,
            searcher: "Random".into(),
            sync: SyncPolicy::Off,
            wall_time_s: 0.0,
            exhausted: false,
            convergence: None,
        })
    }

    #[test]
    fn fingerprints_are_stable_and_separator_aware() {
        let a = fingerprint_parts(&["problem", "arch", "cfg"]);
        assert_eq!(a, fingerprint_parts(&["problem", "arch", "cfg"]));
        assert_ne!(a, fingerprint_parts(&["problem", "archcfg"]));
        assert_ne!(
            fingerprint_parts(&["ab", "c"]),
            fingerprint_parts(&["a", "bc"])
        );
        assert_ne!(fingerprint_parts(&[]), fingerprint_parts(&[""]));
    }

    #[test]
    fn cache_round_trips() {
        let mut cache = ResultCache::default();
        let fp = fingerprint_parts(&["x"]);
        assert!(!cache.contains(fp));
        assert!(cache.get(fp).is_none());
        cache.insert(fp, entry(10), 0);
        assert!(cache.contains(fp));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(fp).unwrap().evaluations, 10);
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = ResultCache::default();
        let fp = fingerprint_parts(&["x"]);
        assert!(cache.lookup(fp).is_none());
        cache.insert(fp, entry(1), 0);
        assert!(cache.lookup(fp).is_some());
        assert!(cache.lookup(fp).is_some());
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.inserts, stats.evictions),
            (2, 1, 1, 0)
        );
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, None);
        // `get`/`contains` stay statistics-neutral.
        let _ = cache.get(fp);
        let _ = cache.contains(fp);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn bounded_cache_evicts_by_admission_sequence() {
        let mut cache = ResultCache::with_capacity(Some(2));
        let fps: Vec<u64> = ["a", "b", "c"]
            .iter()
            .map(|s| fingerprint_parts(&[s]))
            .collect();
        cache.insert(fps[0], entry(0), 0);
        cache.insert(fps[1], entry(1), 1);
        // A hit on the oldest entry does not save it: eviction follows the
        // admission sequence, so the order stays deterministic under any
        // replay mix.
        assert!(cache.lookup(fps[0]).is_some());
        cache.insert(fps[2], entry(2), 2);
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(fps[0]), "oldest admission evicted first");
        assert!(cache.contains(fps[1]) && cache.contains(fps[2]));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, Some(2));

        // Replacing a resident key neither grows the cache nor evicts, and
        // keeps the key's original admission slot.
        cache.insert(fps[1], entry(9), 7);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(fps[1]).unwrap().evaluations, 9);
        cache.insert(fps[0], entry(5), 8);
        assert!(
            !cache.contains(fps[1]),
            "the replaced key still evicts at its original (oldest) slot"
        );
    }

    #[test]
    fn eviction_is_independent_of_insert_arrival_order() {
        // Concurrent units complete — and therefore insert — in
        // timing-dependent order; the resident set must depend only on the
        // admission sequence each insert carries.
        let fps: Vec<u64> = ["a", "b", "c"]
            .iter()
            .map(|s| fingerprint_parts(&[s]))
            .collect();
        let run = |arrival: &[usize]| -> Vec<bool> {
            let mut cache = ResultCache::with_capacity(Some(2));
            for &i in arrival {
                cache.insert(fps[i], entry(i as u64), i as u64);
            }
            fps.iter().map(|fp| cache.contains(*fp)).collect()
        };
        let in_order = run(&[0, 1, 2]);
        assert_eq!(in_order, vec![false, true, true]);
        // Reversed arrival: the seq-0 insert lands last, finds the cache
        // full of younger admissions, and evicts itself — same residents.
        assert_eq!(in_order, run(&[2, 1, 0]));
        assert_eq!(in_order, run(&[1, 2, 0]));
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut cache = ResultCache::with_capacity(Some(0));
        let a = fingerprint_parts(&["a"]);
        let b = fingerprint_parts(&["b"]);
        cache.insert(a, entry(0), 0);
        assert_eq!(cache.len(), 1, "capacity clamps to at least one entry");
        cache.insert(b, entry(1), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(b));
    }
}
