//! The serve-side result cache: completed layer searches keyed by a
//! deterministic `(problem, architecture, search-config)` fingerprint.
//!
//! Real networks repeat shapes heavily (every block of a ResNet stage shares
//! one convolution shape), so the service maps each distinct fingerprint
//! once and replays the cached result for every other occurrence — within a
//! network and across `map_network` calls on a long-lived service.

use std::collections::HashMap;
use std::sync::Arc;

use mm_mapper::{Evaluation, OptMetric, SyncPolicy};
use mm_mapspace::Mapping;

/// FNV-1a 64-bit over the given parts (with a separator byte between parts,
/// so `["ab", "c"]` and `["a", "bc"]` differ). Stable across processes —
/// unlike `DefaultHasher` — which keeps fingerprints usable as on-disk or
/// cross-run cache keys later.
pub fn fingerprint_parts(parts: &[&str]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The reusable outcome of one layer search.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedLayer {
    /// Best mapping found (None only if the search evaluated nothing).
    pub best_mapping: Option<Mapping>,
    /// Metrics of the best mapping, in the evaluator's priority order.
    pub best_metrics: Option<Evaluation>,
    /// The evaluator's metric priority list.
    pub metric_names: Vec<OptMetric>,
    /// Evaluations the producing search spent.
    pub evaluations: u64,
    /// Searcher name (e.g. `"Random"`, `"SA"`).
    pub searcher: String,
    /// The job-local sync policy the producing search ran under (also part
    /// of the fingerprint that keyed this entry).
    pub sync: SyncPolicy,
    /// Wall-clock seconds of the producing search.
    pub wall_time_s: f64,
    /// Whether the searcher exhausted its proposals before the budget.
    pub exhausted: bool,
}

/// Fingerprint-keyed store of completed layer searches.
#[derive(Default)]
pub(crate) struct ResultCache {
    map: HashMap<u64, Arc<CachedLayer>>,
}

impl ResultCache {
    pub fn get(&self, fingerprint: u64) -> Option<Arc<CachedLayer>> {
        self.map.get(&fingerprint).cloned()
    }

    pub fn contains(&self, fingerprint: u64) -> bool {
        self.map.contains_key(&fingerprint)
    }

    pub fn insert(&mut self, fingerprint: u64, layer: Arc<CachedLayer>) {
        self.map.insert(fingerprint, layer);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_separator_aware() {
        let a = fingerprint_parts(&["problem", "arch", "cfg"]);
        assert_eq!(a, fingerprint_parts(&["problem", "arch", "cfg"]));
        assert_ne!(a, fingerprint_parts(&["problem", "archcfg"]));
        assert_ne!(
            fingerprint_parts(&["ab", "c"]),
            fingerprint_parts(&["a", "bc"])
        );
        assert_ne!(fingerprint_parts(&[]), fingerprint_parts(&[""]));
    }

    #[test]
    fn cache_round_trips() {
        let mut cache = ResultCache::default();
        let fp = fingerprint_parts(&["x"]);
        assert!(!cache.contains(fp));
        assert!(cache.get(fp).is_none());
        cache.insert(
            fp,
            Arc::new(CachedLayer {
                best_mapping: None,
                best_metrics: Some(Evaluation::scalar(1.5)),
                metric_names: vec![OptMetric::Edp],
                evaluations: 10,
                searcher: "Random".into(),
                sync: SyncPolicy::Off,
                wall_time_s: 0.0,
                exhausted: false,
            }),
        );
        assert!(cache.contains(fp));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(fp).unwrap().evaluations, 10);
    }
}
