//! Request-side vocabulary of the multi-tenant front-end: handles for
//! submitted networks and the typed errors of admission and execution.

use std::fmt;

/// Ticket for one admitted request, returned by
/// [`submit`](crate::MappingService::submit) and redeemed with
/// [`wait`](crate::MappingService::wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestHandle {
    pub(crate) id: u64,
}

impl RequestHandle {
    /// The service-assigned request id (monotonic in admission order).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Why [`submit`](crate::MappingService::submit) refused a request.
///
/// Admission is checked before any state changes: a rejected request spends
/// no budget, starts no jobs, and perturbs no sibling request's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded admission queue is full: `backlog` requests are admitted
    /// but not yet completed, and the service was configured with
    /// `queue_depth`. Retry after draining in-flight requests.
    QueueFull {
        /// Requests currently admitted but incomplete.
        backlog: usize,
        /// The configured [`ServiceConfig::queue_depth`](crate::ServiceConfig).
        queue_depth: usize,
    },
    /// Admitting the request would push its tenant past the configured
    /// per-tenant budget of outstanding planned evaluations.
    TenantBudgetExhausted {
        /// The tenant named by the request.
        tenant: String,
        /// Planned evaluations of the tenant's in-flight requests.
        outstanding: u64,
        /// Fresh evaluations this request would add.
        requested: u64,
        /// The configured [`ServiceConfig::tenant_budget`](crate::ServiceConfig).
        budget: u64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                backlog,
                queue_depth,
            } => write!(
                f,
                "admission queue full: {backlog} requests in flight (queue_depth={queue_depth})"
            ),
            AdmissionError::TenantBudgetExhausted {
                tenant,
                outstanding,
                requested,
                budget,
            } => write!(
                f,
                "tenant {tenant:?} budget exhausted: {outstanding} evaluations outstanding + \
                 {requested} requested > budget {budget}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why an admitted request failed to produce a report.
///
/// Failure is request-scoped: a panicking evaluator or searcher fails the
/// requests attached to the panicking search unit and no others — the
/// shared pool and every sibling request keep running, and the siblings'
/// reports are byte-identical to what they produce with no failure nearby.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// A search job of this request panicked (the message is the panic
    /// payload, propagated from the evaluation worker or searcher).
    Failed {
        /// The failed request.
        request: u64,
        /// Panic message of the first failing job.
        message: String,
    },
    /// The handle does not name an in-flight request on this service (never
    /// admitted, already collected, expired uncollected past
    /// [`ServiceConfig::completed_capacity`](crate::ServiceConfig), or from
    /// another service instance).
    Unknown {
        /// The handle's request id.
        request: u64,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Failed { request, message } => {
                write!(f, "request {request} failed: {message}")
            }
            RequestError::Unknown { request } => {
                write!(f, "request {request} is not in flight on this service")
            }
        }
    }
}

impl std::error::Error for RequestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let full = AdmissionError::QueueFull {
            backlog: 8,
            queue_depth: 8,
        };
        assert!(full.to_string().contains("queue_depth=8"));
        let budget = AdmissionError::TenantBudgetExhausted {
            tenant: "team-a".into(),
            outstanding: 900,
            requested: 200,
            budget: 1_000,
        };
        let rendered = budget.to_string();
        assert!(rendered.contains("team-a") && rendered.contains("1000"));
        let failed = RequestError::Failed {
            request: 3,
            message: "boom".into(),
        };
        assert!(failed.to_string().contains("request 3") && failed.to_string().contains("boom"));
        assert!(RequestError::Unknown { request: 9 }
            .to_string()
            .contains("not in flight"));
    }
}
