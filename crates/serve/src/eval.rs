//! [`SurrogateEvaluator`]: the trained Mind Mappings surrogate as a
//! [`CostEvaluator`], with the batched forward pass as its
//! `evaluate_batch` fast path.
//!
//! The pool dispatches whole proposal batches to workers, so every batch
//! becomes **one** matrix traversal of the MLP
//! ([`Surrogate::predict_normalized_edp_batch`]) instead of one network
//! walk per mapping — the "async/batched surrogate evaluation" path of the
//! roadmap. Scores are lower-bound-normalized EDPs (the quantity Phase 2
//! minimizes); they rank mappings like absolute EDP but are not joules ×
//! seconds, so serve-level energy/delay aggregates are unavailable on this
//! path.

use mm_core::{MindMappingsError, Surrogate};
use mm_mapper::{CostEvaluator, Evaluation};
use mm_mapspace::{Mapping, ProblemSpec};

/// A surrogate bound to one problem, usable as a (batched) pool evaluator.
#[derive(Debug, Clone)]
pub struct SurrogateEvaluator {
    surrogate: Surrogate,
    problem: ProblemSpec,
}

impl SurrogateEvaluator {
    /// Bind `surrogate` to `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`MindMappingsError::FamilyMismatch`] when the problem's
    /// shape differs from the family the surrogate was trained on.
    pub fn new(surrogate: Surrogate, problem: ProblemSpec) -> Result<Self, MindMappingsError> {
        surrogate.check_problem(&problem)?;
        Ok(SurrogateEvaluator { surrogate, problem })
    }

    /// The bound problem.
    pub fn problem(&self) -> &ProblemSpec {
        &self.problem
    }
}

impl CostEvaluator for SurrogateEvaluator {
    fn evaluate(&self, mapping: &Mapping) -> Evaluation {
        Evaluation::scalar(
            self.surrogate
                .predict_normalized_edp(&self.problem, mapping),
        )
    }

    fn evaluate_batch(&self, mappings: &[Mapping]) -> Vec<Evaluation> {
        self.surrogate
            .predict_normalized_edp_batch(&self.problem, mappings)
            .into_iter()
            .map(Evaluation::scalar)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_accel::Architecture;
    use mm_core::Phase1Config;
    use mm_mapspace::MapSpace;
    use mm_workloads::conv1d::Conv1dFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_surrogate() -> (Surrogate, Architecture) {
        let arch = Architecture::example();
        let mut rng = StdRng::seed_from_u64(0);
        let ds = mm_core::generate_training_set(&arch, &Conv1dFamily::default(), 300, 30, &mut rng)
            .unwrap();
        let cfg = Phase1Config {
            hidden_layers: vec![16, 16],
            epochs: 4,
            ..Phase1Config::quick()
        };
        let (s, _) = Surrogate::train(arch.clone(), &ds, &cfg, &mut rng).unwrap();
        (s, arch)
    }

    #[test]
    fn batch_path_matches_single_path() {
        let (s, arch) = tiny_surrogate();
        let problem = ProblemSpec::conv1d(400, 5);
        let eval = SurrogateEvaluator::new(s, problem.clone()).unwrap();
        let space = MapSpace::new(problem, arch.mapping_constraints());
        let mut rng = StdRng::seed_from_u64(1);
        let mappings: Vec<Mapping> = (0..12).map(|_| space.random_mapping(&mut rng)).collect();
        let singles: Vec<Evaluation> = mappings.iter().map(|m| eval.evaluate(m)).collect();
        assert_eq!(eval.evaluate_batch(&mappings), singles);
        assert!(singles.iter().all(|e| e.primary() > 0.0));
    }

    #[test]
    fn wrong_family_is_rejected() {
        let (s, _) = tiny_surrogate();
        let cnn = mm_workloads::cnn::CnnLayer::resnet_conv4().into_problem();
        assert!(SurrogateEvaluator::new(s, cnn).is_err());
    }
}
