//! [`MappingService`]: the multi-tenant whole-network mapping front-end.
//!
//! One service owns one long-lived [`EvalPool`] and serves many concurrent
//! requests over it: [`submit`](MappingService::submit) admits a
//! [`Network`] + [`RequestConfig`] through a bounded queue (typed
//! [`AdmissionError`] when full or over a tenant budget) and returns a
//! [`RequestHandle`]; the per-layer search jobs of every in-flight request
//! are interleaved over the **one** shared pool by a deterministic
//! weighted fair-share scheduler; [`wait`](MappingService::wait) collects
//! the per-request [`NetworkReport`].
//!
//! # Determinism under concurrency
//!
//! A request's report is a pure function of `(network, RequestConfig,
//! service identity, persistent-cache state at admission)`:
//! [`NetworkReport::canonical_string`] is byte-identical regardless of how
//! many sibling requests are in flight, how submissions interleave, and
//! how many pool workers run. Two mechanisms make that hold:
//!
//! * every layer search job derives its RNG stream from the layer
//!   fingerprint and the request seed — never from arrival order or pool
//!   timing — so a job's outcome depends only on its spec;
//! * concurrent requests that need the *same* fingerprint share one
//!   in-flight search unit, and every subscriber reports it as its own
//!   fresh search (`cache_hit=false`, full evaluations attributed): the
//!   shared outcome is byte-identical to what the request's own search
//!   would have produced, so sharing saves work without leaking sibling
//!   presence into any report. Only results *completed and cached before
//!   admission* report as cache hits — exactly the sequential semantics.
//!
//! # Failure isolation
//!
//! A panicking evaluator or searcher fails only the requests attached to
//! the panicking search unit ([`RequestError::Failed`] from `wait`); pool
//! workers survive, sibling requests complete, and their reports are
//! byte-identical to an undisturbed run.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use mm_accel::{Architecture, CostModel};
use mm_mapper::{
    derive_stream_seed, split_evenly, CostEvaluator, EvalPool, ModelEvaluator, OptMetric,
};
use mm_mapspace::{MapSpace, ProblemSpec};
use mm_search::{ProposalSearch, RandomSearch};
use mm_workloads::Network;
use serde::{Deserialize, Serialize};

use crate::cache::{fingerprint_parts, CachedLayer, ResultCache};
use crate::config::{RequestConfig, ServiceConfig, ServiceProfile};
use crate::report::{LayerReport, NetworkAggregate, NetworkReport};
use crate::request::{AdmissionError, RequestError, RequestHandle};
use crate::scheduler::{JobEnd, JobOutcome, JobSpec, Scheduler};

/// Builds the cost evaluator for one layer's problem.
pub type EvaluatorFactory = Box<dyn Fn(&Architecture, &ProblemSpec) -> Arc<dyn CostEvaluator>>;

/// Builds a fresh searcher instance for one layer job.
pub type SearchFactory = Box<dyn Fn() -> Box<dyn ProposalSearch>>;

/// Lifetime counters of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Fresh layer searches run (search units completed).
    pub searches_run: u64,
    /// Layers answered from cache (or deduplicated within a request).
    pub cache_hits: u64,
    /// Evaluations actually spent across all fresh searches.
    pub total_evaluations: u64,
    /// Requests admitted.
    pub requests_admitted: u64,
    /// Requests rejected at admission (queue full or tenant budget).
    pub requests_rejected: u64,
    /// Requests completed successfully.
    pub requests_completed: u64,
    /// Requests failed by a panicking evaluator/searcher.
    pub requests_failed: u64,
    /// In-flight search units shared with a concurrent request instead of
    /// re-run (cross-request incumbent sharing).
    pub shared_searches: u64,
}

fn tele_admission(kind: usize) -> &'static Arc<mm_telemetry::Counter> {
    use std::sync::OnceLock;
    static CELLS: [OnceLock<Arc<mm_telemetry::Counter>>; 5] = [const { OnceLock::new() }; 5];
    const NAMES: [&str; 5] = [
        "serve.admission.accepted",
        "serve.admission.rejected_queue_full",
        "serve.admission.rejected_tenant_budget",
        "serve.requests.completed",
        "serve.requests.failed",
    ];
    CELLS[kind].get_or_init(|| mm_telemetry::counter(NAMES[kind]))
}

fn tele_shared_units() -> &'static Arc<mm_telemetry::Counter> {
    use std::sync::OnceLock;
    static C: OnceLock<Arc<mm_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| mm_telemetry::counter("serve.scheduler.shared_units"))
}

/// How one layer of a request is satisfied.
enum Plan {
    /// Replay this cached result (captured at plan time, so a bounded
    /// cache evicting the entry mid-request cannot strand the layer).
    Hit(Arc<CachedLayer>),
    /// The in-flight search unit with this id produces the result.
    Unit(u64),
}

/// One in-flight search unit: the shard jobs of one distinct fingerprint,
/// shared by every request that planned against it while it ran.
struct UnitState {
    fingerprint: u64,
    /// Scheduler job ids, in shard order (merge order).
    job_ids: Vec<u64>,
    outcomes: Vec<Option<JobOutcome>>,
    remaining: usize,
    /// Requests reporting this unit (creator first).
    subscribers: Vec<u64>,
    /// Insert the merged result into the persistent cache (the creator ran
    /// with `use_cache`).
    insert_on_completion: bool,
    sync: mm_search::SyncPolicy,
}

/// Everything the service tracks for one admitted request.
struct RequestState {
    network_name: String,
    /// Per layer: name, problem name, repeat.
    layers: Vec<(String, String, u64)>,
    plans: Vec<Plan>,
    /// Distinct unit ids, in first-reference order.
    units: Vec<u64>,
    /// Merged results, filled in as units complete.
    resolved: HashMap<u64, Arc<CachedLayer>>,
    /// Planned fresh evaluations (tenant-budget units, released on exit).
    planned_evals: u64,
    tenant: String,
    /// Units attached to a sibling's in-flight search.
    shared_units: u64,
    started_wall: Instant,
    /// Request-lifecycle span track (`serve.request{id}`), spans level only.
    track: Option<Arc<mm_telemetry::Track>>,
    /// `request.queue`: admission → first job activation.
    queue_span: Option<mm_telemetry::SpanGuard>,
    /// `request.run`: first job activation → completion.
    run_span: Option<mm_telemetry::SpanGuard>,
}

/// A long-lived, multi-tenant mapping service over one shared eval pool.
pub struct MappingService {
    arch: Architecture,
    service: ServiceConfig,
    default_request: RequestConfig,
    pool: EvalPool,
    cache: ResultCache,
    evaluator_factory: EvaluatorFactory,
    evaluator_tag: String,
    search_factory: SearchFactory,
    searcher_name: String,
    /// Pre-rendered constant fingerprint prefix (`{arch:?}|{searcher}|
    /// {evaluator}|`) — the request tag appends to it, reproducing the
    /// legacy `config_tag` byte format exactly.
    identity_tag: String,
    scheduler: Scheduler,
    stats: ServeStats,
    next_request_id: u64,
    next_unit_id: u64,
    /// Admitted, uncompleted requests.
    requests: HashMap<u64, RequestState>,
    /// In-flight search units by unit id.
    units: HashMap<u64, UnitState>,
    /// Scheduler job id → unit id, for routing job ends.
    job_to_unit: HashMap<u64, u64>,
    /// Fingerprint → in-flight unit id (cross-request sharing).
    inflight_by_fp: HashMap<u64, u64>,
    /// Outstanding planned evaluations per tenant (admission budgeting).
    tenant_outstanding: HashMap<String, u64>,
    /// Finished requests awaiting collection by `wait`, bounded to
    /// [`ServiceConfig::completed_capacity`] (oldest-admitted results are
    /// dropped past the bound, so abandoned handles cannot grow service
    /// state forever). A `BTreeMap` so eviction follows request-id order —
    /// deterministic — rather than completion timing.
    completed: BTreeMap<u64, Result<NetworkReport, RequestError>>,
}

impl MappingService {
    /// A service mapping onto `arch` with the reference cost model
    /// (optimizing `edp`, with `energy` and `delay` carried for the
    /// network aggregates) and random search per layer.
    ///
    /// `profile` accepts a [`ServiceConfig`] (default per-request config),
    /// a `(ServiceConfig, RequestConfig)` pair, or a legacy `ServeConfig`.
    pub fn new(arch: Architecture, profile: impl Into<ServiceProfile>) -> Self {
        let factory: EvaluatorFactory = Box::new(|arch, problem| {
            Arc::new(ModelEvaluator::with_metrics(
                CostModel::new(arch.clone(), problem.clone()),
                vec![OptMetric::Edp, OptMetric::Energy, OptMetric::Delay],
            ))
        });
        Self::with_evaluator_factory(
            arch,
            profile,
            factory,
            "reference-model[edp,energy,delay]".to_string(),
        )
    }

    /// A service with a custom per-problem evaluator. `evaluator_tag` is a
    /// stable description of the evaluator configuration; it participates in
    /// result-cache fingerprints, so distinct evaluators must use distinct
    /// tags.
    pub fn with_evaluator_factory(
        arch: Architecture,
        profile: impl Into<ServiceProfile>,
        evaluator_factory: EvaluatorFactory,
        evaluator_tag: String,
    ) -> Self {
        let ServiceProfile {
            service,
            default_request,
        } = profile.into();
        let search_factory: SearchFactory = Box::new(|| Box::new(RandomSearch::new()));
        let searcher_name = search_factory().name().to_string();
        let identity_tag = Self::identity_tag(&arch, &searcher_name, &evaluator_tag);
        MappingService {
            pool: EvalPool::shared(service.workers.max(1)),
            cache: ResultCache::with_capacity(service.cache_capacity),
            scheduler: Scheduler::new(service.max_active_jobs),
            arch,
            service,
            default_request,
            evaluator_factory,
            evaluator_tag,
            search_factory,
            searcher_name,
            identity_tag,
            stats: ServeStats::default(),
            next_request_id: 0,
            next_unit_id: 0,
            requests: HashMap::new(),
            units: HashMap::new(),
            job_to_unit: HashMap::new(),
            inflight_by_fp: HashMap::new(),
            tenant_outstanding: HashMap::new(),
            completed: BTreeMap::new(),
        }
    }

    /// Replace the per-layer search method (builder style); call before
    /// submitting requests.
    ///
    /// Cached results are dropped: fingerprints identify searchers by name
    /// only (`"GA"`, `"SA"`, …), so results produced by a differently
    /// configured searcher of the same name must not be replayed.
    pub fn with_searcher(mut self, search_factory: SearchFactory) -> Self {
        debug_assert!(
            self.requests.is_empty(),
            "swap searchers on an idle service"
        );
        self.searcher_name = search_factory().name().to_string();
        self.search_factory = search_factory;
        self.identity_tag =
            Self::identity_tag(&self.arch, &self.searcher_name, &self.evaluator_tag);
        self.cache = ResultCache::with_capacity(self.service.cache_capacity);
        self
    }

    /// Render the request-independent fingerprint prefix. A request's
    /// [`search_tag`](RequestConfig) appends directly (no separator), so
    /// the concatenation reproduces the legacy `config_tag` bytes exactly
    /// — fingerprints, derived seeds, golden fixtures, and bench quality
    /// baselines are unchanged by the multi-tenant split.
    fn identity_tag(arch: &Architecture, searcher_name: &str, evaluator_tag: &str) -> String {
        format!("{arch:?}|{searcher_name}|{evaluator_tag}|")
    }

    /// The architecture served.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The service-level configuration.
    pub fn service_config(&self) -> &ServiceConfig {
        &self.service
    }

    /// The per-request configuration used by [`map_network`] and
    /// [`map_problem`].
    ///
    /// [`map_network`]: MappingService::map_network
    /// [`map_problem`]: MappingService::map_problem
    pub fn default_request(&self) -> &RequestConfig {
        &self.default_request
    }

    /// Worker threads of the shared pool.
    pub fn pool_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Distinct results currently cached.
    pub fn cached_results(&self) -> usize {
        self.cache.len()
    }

    /// Requests admitted but not yet completed.
    pub fn in_flight_requests(&self) -> usize {
        self.requests.len()
    }

    /// Deterministic cache/replay key for a problem under this service's
    /// architecture, searcher, evaluator, and the request's search tag.
    fn fingerprint(&self, problem: &ProblemSpec, search_tag: &str) -> u64 {
        fingerprint_parts(&[
            &format!("{problem:?}"),
            &format!("{}{}", self.identity_tag, search_tag),
        ])
    }

    /// Admit `network` for mapping under `config`, returning a handle to
    /// [`wait`](MappingService::wait) on. Jobs start running as any handle
    /// is waited on (or [`drive`](MappingService::drive) is called);
    /// submission order only affects scheduling, never results.
    ///
    /// Admission is all-or-nothing: a rejected request changes no service
    /// state (no budget consumed, no statistics perturbed).
    pub fn submit(
        &mut self,
        network: &Network,
        config: RequestConfig,
    ) -> Result<RequestHandle, AdmissionError> {
        // Bounded queue: depth counts admitted-but-uncompleted requests.
        let queue_depth = self.service.queue_depth.max(1);
        if self.requests.len() >= queue_depth {
            self.stats.requests_rejected += 1;
            tele_admission(1).bump(1);
            mm_telemetry::event("serve.request.reject", || {
                format!("network={} reason=queue_full", network.name)
            });
            return Err(AdmissionError::QueueFull {
                backlog: self.requests.len(),
                queue_depth,
            });
        }

        // Plan without mutating state: per layer, a persistent-cache hit,
        // an attachment to an in-flight unit, or a fresh unit. `PlanStep`
        // indexes into `new_units` for fresh ones.
        enum PlanStep {
            Hit(Arc<CachedLayer>),
            Attach(u64),
            Fresh(usize),
        }
        let search_tag = config.search_tag();
        let mut steps: Vec<(u64, PlanStep)> = Vec::with_capacity(network.len());
        let mut new_units: Vec<(u64, ProblemSpec)> = Vec::new();
        let mut fresh_for_fp: HashMap<u64, usize> = HashMap::new();
        for layer in &network.layers {
            let fp = self.fingerprint(&layer.problem, &search_tag);
            let step = if config.use_cache {
                if let Some(cached) = self.cache.get(fp) {
                    PlanStep::Hit(cached)
                } else if let Some(&unit) = self.inflight_by_fp.get(&fp) {
                    PlanStep::Attach(unit)
                } else if let Some(&idx) = fresh_for_fp.get(&fp) {
                    PlanStep::Fresh(idx)
                } else {
                    let idx = new_units.len();
                    new_units.push((fp, layer.problem.clone()));
                    fresh_for_fp.insert(fp, idx);
                    PlanStep::Fresh(idx)
                }
            } else {
                // Cache off: every occurrence searches independently —
                // identical searches, so results match the cached path;
                // only provenance and evaluation spend differ.
                let idx = new_units.len();
                new_units.push((fp, layer.problem.clone()));
                PlanStep::Fresh(idx)
            };
            steps.push((fp, step));
        }

        // Tenant budget: planned fresh evaluations of this request against
        // the tenant's outstanding total.
        let planned_evals = new_units.len() as u64 * config.search_size;
        if let Some(budget) = self.service.tenant_budget {
            let outstanding = self
                .tenant_outstanding
                .get(&config.tenant)
                .copied()
                .unwrap_or(0);
            if outstanding + planned_evals > budget {
                self.stats.requests_rejected += 1;
                tele_admission(2).bump(1);
                mm_telemetry::event("serve.request.reject", || {
                    format!(
                        "network={} tenant={} reason=tenant_budget",
                        network.name, config.tenant
                    )
                });
                return Err(AdmissionError::TenantBudgetExhausted {
                    tenant: config.tenant.clone(),
                    outstanding,
                    requested: planned_evals,
                    budget,
                });
            }
        }

        // Admitted: assign the id, open the lifecycle track, record the
        // planned cache lookups (in layer order, as the sequential path
        // did), and materialize units.
        let id = self.next_request_id;
        self.next_request_id += 1;
        self.stats.requests_admitted += 1;
        tele_admission(0).bump(1);
        let track = mm_telemetry::span_enabled()
            .then(|| mm_telemetry::track(&format!("serve.request{id}")));
        let admit_span = track.as_ref().and_then(|t| t.span("request.admit"));
        mm_telemetry::event("serve.request.submit", || {
            format!(
                "request={id} network={} layers={} fresh={} tenant={}",
                network.name,
                network.len(),
                new_units.len(),
                config.tenant
            )
        });

        // Lookups happened only if the request consulted the cache: with
        // `use_cache` off every layer plans Fresh without a probe, so
        // recording per-layer misses would overcount lookups that never ran.
        if config.use_cache {
            for (fp, step) in &steps {
                self.cache
                    .note_lookup(*fp, matches!(step, PlanStep::Hit(_)));
            }
        }

        let weight = u64::from(config.priority.max(1));
        let mut fresh_unit_ids: Vec<u64> = Vec::with_capacity(new_units.len());
        for (fp, problem) in &new_units {
            let unit_id = self.next_unit_id;
            self.next_unit_id += 1;
            let specs = self.shard_job_specs(id, weight, *fp, problem, &config);
            let job_ids: Vec<u64> = specs
                .into_iter()
                .map(|spec| {
                    let job_id = self.scheduler.enqueue(spec);
                    self.job_to_unit.insert(job_id, unit_id);
                    job_id
                })
                .collect();
            let remaining = job_ids.len();
            self.units.insert(
                unit_id,
                UnitState {
                    fingerprint: *fp,
                    outcomes: vec![None; remaining],
                    job_ids,
                    remaining,
                    subscribers: vec![id],
                    insert_on_completion: config.use_cache,
                    sync: config.sync,
                },
            );
            if config.use_cache {
                self.inflight_by_fp.insert(*fp, unit_id);
            }
            fresh_unit_ids.push(unit_id);
        }

        // Final plans and the request's distinct-unit order.
        let mut plans: Vec<Plan> = Vec::with_capacity(steps.len());
        let mut unit_order: Vec<u64> = Vec::new();
        let mut shared_units = 0u64;
        for (_, step) in steps {
            let plan = match step {
                PlanStep::Hit(cached) => Plan::Hit(cached),
                PlanStep::Attach(unit) => {
                    if !unit_order.contains(&unit) {
                        unit_order.push(unit);
                        shared_units += 1;
                        self.units
                            .get_mut(&unit)
                            .map(|u| u.subscribers.push(id))
                            .unwrap_or_default();
                    }
                    Plan::Unit(unit)
                }
                PlanStep::Fresh(idx) => {
                    let unit = fresh_unit_ids[idx];
                    if !unit_order.contains(&unit) {
                        unit_order.push(unit);
                    }
                    Plan::Unit(unit)
                }
            };
            plans.push(plan);
        }
        self.stats.shared_searches += shared_units;
        if shared_units > 0 {
            tele_shared_units().bump(shared_units);
        }
        *self
            .tenant_outstanding
            .entry(config.tenant.clone())
            .or_insert(0) += planned_evals;

        drop(admit_span);
        let queue_span = track.as_ref().and_then(|t| t.span("request.queue"));
        let state = RequestState {
            network_name: network.name.clone(),
            layers: network
                .layers
                .iter()
                .map(|l| (l.name.clone(), l.problem.name.clone(), l.repeat))
                .collect(),
            plans,
            units: unit_order,
            resolved: HashMap::new(),
            planned_evals,
            tenant: config.tenant,
            shared_units,
            started_wall: Instant::now(),
            track,
            queue_span,
            run_span: None,
        };
        self.requests.insert(id, state);

        // A fully-cached request needs no scheduling: complete it now.
        if self.requests.get(&id).is_some_and(|r| r.units.is_empty()) {
            self.finalize_request(id);
        }
        Ok(RequestHandle { id })
    }

    /// Block until `handle`'s request completes, driving the scheduler, and
    /// return its report (or the failure that ended it).
    ///
    /// Results are retained for uncollected handles only up to
    /// [`ServiceConfig::completed_capacity`]; past that, the
    /// oldest-admitted uncollected result is dropped and waiting on its
    /// handle returns [`RequestError::Unknown`].
    pub fn wait(&mut self, handle: RequestHandle) -> Result<NetworkReport, RequestError> {
        loop {
            if let Some(result) = self.completed.remove(&handle.id) {
                return result;
            }
            if !self.requests.contains_key(&handle.id) {
                return Err(RequestError::Unknown { request: handle.id });
            }
            if self.scheduler.idle() {
                debug_assert!(
                    false,
                    "request {} in flight with an idle scheduler",
                    handle.id
                );
                return Err(RequestError::Unknown { request: handle.id });
            }
            self.pump();
        }
    }

    /// Drive every in-flight request to completion (without collecting any
    /// report — `wait` each handle afterwards).
    pub fn drive(&mut self) {
        while !self.scheduler.idle() {
            self.pump();
        }
    }

    /// One scheduler step plus request bookkeeping.
    fn pump(&mut self) {
        let events = self.scheduler.step(&mut self.pool);
        for request in events.started {
            if let Some(state) = self.requests.get_mut(&request) {
                // queue → run transition of the request lifecycle.
                drop(state.queue_span.take());
                state.run_span = state.track.as_ref().and_then(|t| t.span("request.run"));
            }
        }
        for (job, end) in events.finished {
            self.on_job_end(job, end);
        }
    }

    /// Route one retired job to its unit, completing or failing dependents.
    fn on_job_end(&mut self, job: u64, end: JobEnd) {
        let Some(&unit_id) = self.job_to_unit.get(&job) else {
            // A drained job of an already-failed/cancelled unit.
            return;
        };
        match end {
            JobEnd::Done(outcome) => {
                let Some(unit) = self.units.get_mut(&unit_id) else {
                    return;
                };
                let Some(pos) = unit.job_ids.iter().position(|&j| j == job) else {
                    return;
                };
                if unit.outcomes[pos].replace(outcome).is_none() {
                    unit.remaining -= 1;
                }
                if unit.remaining == 0 {
                    self.finalize_unit(unit_id);
                }
            }
            JobEnd::Failed(message) => self.fail_unit(unit_id, message),
            JobEnd::Cancelled => {
                self.job_to_unit.remove(&job);
            }
        }
    }

    /// Merge a completed unit's shard outcomes (in shard order,
    /// strictly-better-wins, budgets summed), publish to cache and
    /// subscribers, and finalize any request this completes.
    fn finalize_unit(&mut self, unit_id: u64) {
        let Some(unit) = self.units.remove(&unit_id) else {
            return;
        };
        for job in &unit.job_ids {
            self.job_to_unit.remove(job);
        }
        if self.inflight_by_fp.get(&unit.fingerprint) == Some(&unit_id) {
            self.inflight_by_fp.remove(&unit.fingerprint);
        }
        let group: Vec<JobOutcome> = unit
            .outcomes
            .into_iter()
            .map(|o| {
                // mm-lint: allow(panic): finalize_unit runs only at
                // remaining == 0; a hole is a service bug that must fail
                // loudly rather than ship a shortened merge.
                o.expect("every shard outcome present at finalize")
            })
            .collect();
        let mut best: Option<(mm_mapspace::Mapping, mm_mapper::Evaluation)> = None;
        for o in &group {
            if let Some((m, e)) = &o.best {
                let take = match best.as_ref() {
                    None => true,
                    Some((_, incumbent)) => e.better_than(incumbent),
                };
                if take {
                    best = Some((m.clone(), e.clone()));
                }
            }
        }
        let (best_mapping, best_metrics) = match best {
            Some((m, e)) => (Some(m), Some(e)),
            None => (None, None),
        };
        let first = &group[0];
        // Shard convergence curves merge in shard order (round-robin global
        // eval indexing), mirroring the mapper's report.
        let convergence = group
            .iter()
            .map(|o| o.convergence.clone())
            .collect::<Option<Vec<_>>>()
            .filter(|t| !t.is_empty())
            .map(|t| mm_search::merge_shard_convergence(&t));
        let merged = Arc::new(CachedLayer {
            best_mapping,
            best_metrics,
            metric_names: first.metric_names.clone(),
            evaluations: group.iter().map(|o| o.evaluations).sum(),
            searcher: first.searcher.clone(),
            sync: unit.sync,
            wall_time_s: group.iter().map(|o| o.wall_time_s).fold(0.0, f64::max),
            exhausted: group.iter().any(|o| o.exhausted),
            convergence,
        });
        self.stats.searches_run += 1;
        self.stats.total_evaluations += merged.evaluations;
        if unit.insert_on_completion {
            // The unit id is the admission sequence: bounded-cache eviction
            // follows it, so residency never depends on which of several
            // concurrent units happened to complete first.
            self.cache
                .insert(unit.fingerprint, Arc::clone(&merged), unit_id);
        }
        for subscriber in unit.subscribers {
            let complete = match self.requests.get_mut(&subscriber) {
                Some(state) => {
                    state.resolved.insert(unit_id, Arc::clone(&merged));
                    state.resolved.len() == state.units.len()
                }
                None => false,
            };
            if complete {
                self.finalize_request(subscriber);
            }
        }
    }

    /// A job of `unit_id` panicked: fail every subscriber request and tear
    /// the unit (and any now-subscriber-less units) down.
    fn fail_unit(&mut self, unit_id: u64, message: String) {
        let subscribers = self
            .units
            .get(&unit_id)
            .map(|u| u.subscribers.clone())
            .unwrap_or_default();
        for request in subscribers {
            self.fail_request(request, message.clone());
        }
        // All subscribers failed, so the detach pass in fail_request has
        // already cancelled and removed the unit itself.
        debug_assert!(!self.units.contains_key(&unit_id));
    }

    /// Fail one request: surface the error on its handle, release its
    /// budget, and cancel any search unit no healthy request still needs.
    fn fail_request(&mut self, request: u64, message: String) {
        let Some(mut state) = self.requests.remove(&request) else {
            return;
        };
        self.stats.requests_failed += 1;
        tele_admission(4).bump(1);
        mm_telemetry::event("serve.request.fail", || {
            format!("request={request} network={}", state.network_name)
        });
        drop(state.queue_span.take());
        drop(state.run_span.take());
        if let Some(outstanding) = self.tenant_outstanding.get_mut(&state.tenant) {
            *outstanding = outstanding.saturating_sub(state.planned_evals);
            if *outstanding == 0 {
                self.tenant_outstanding.remove(&state.tenant);
            }
        }
        for unit_id in &state.units {
            let Some(unit) = self.units.get_mut(unit_id) else {
                continue;
            };
            unit.subscribers.retain(|&r| r != request);
            if !unit.subscribers.is_empty() {
                continue;
            }
            // Nobody is waiting on this search any more: tear it down.
            if let Some(unit) = self.units.remove(unit_id) {
                self.scheduler.cancel_jobs(&unit.job_ids);
                for job in &unit.job_ids {
                    self.job_to_unit.remove(job);
                }
                if self.inflight_by_fp.get(&unit.fingerprint) == Some(unit_id) {
                    self.inflight_by_fp.remove(&unit.fingerprint);
                }
            }
        }
        self.park_result(request, Err(RequestError::Failed { request, message }));
    }

    /// Park a finished request's result for `wait`, dropping the
    /// oldest-admitted uncollected result once the retained set exceeds
    /// [`ServiceConfig::completed_capacity`]. A later `wait` on a dropped
    /// handle gets [`RequestError::Unknown`].
    fn park_result(&mut self, request: u64, result: Result<NetworkReport, RequestError>) {
        self.completed.insert(request, result);
        let capacity = self.service.completed_capacity.max(1);
        while self.completed.len() > capacity {
            let Some((expired, _)) = self.completed.pop_first() else {
                break;
            };
            mm_telemetry::event("serve.request.expire", || {
                format!("request={expired} reason=uncollected_past_completed_capacity")
            });
        }
    }

    /// Assemble the report of a request whose units are all resolved.
    fn finalize_request(&mut self, request: u64) {
        let Some(mut state) = self.requests.remove(&request) else {
            return;
        };
        // Per-layer reports in network order. A layer is a cache hit unless
        // it is the first occurrence referencing its unit in this request —
        // identical to the sequential semantics, and independent of sibling
        // requests (shared units report as fresh searches; their outcome is
        // byte-identical to an unshared run).
        let mut seen_units: Vec<u64> = Vec::new();
        let mut cache_hits = 0usize;
        let layers: Vec<LayerReport> = state
            .layers
            .iter()
            .zip(&state.plans)
            .map(|((layer, problem, repeat), plan)| {
                let (cached, hit): (Arc<CachedLayer>, bool) = match plan {
                    Plan::Hit(cached) => (Arc::clone(cached), true),
                    Plan::Unit(unit) => {
                        let first = !seen_units.contains(unit);
                        if first {
                            seen_units.push(*unit);
                        }
                        let resolved = state
                            .resolved
                            .get(unit)
                            // mm-lint: allow(panic): finalize_request runs
                            // only once every unit resolved; a hole is a
                            // service bug that must fail loudly.
                            .expect("unit resolved before request finalize");
                        (Arc::clone(resolved), !first)
                    }
                };
                if hit {
                    cache_hits += 1;
                }
                LayerReport::from_cached(layer, problem, *repeat, hit, &cached)
            })
            .collect();
        let unique_searches = state.units.len();
        let total_evaluations: u64 = state
            .units
            .iter()
            .map(|u| state.resolved.get(u).map_or(0, |r| r.evaluations))
            .sum();
        self.stats.cache_hits += cache_hits as u64;
        self.stats.requests_completed += 1;
        tele_admission(3).bump(1);
        mm_telemetry::event("serve.request.finish", || {
            format!(
                "request={request} network={} unique={} hits={} evals={}",
                state.network_name, unique_searches, cache_hits, total_evaluations
            )
        });
        if let Some(outstanding) = self.tenant_outstanding.get_mut(&state.tenant) {
            *outstanding = outstanding.saturating_sub(state.planned_evals);
            if *outstanding == 0 {
                self.tenant_outstanding.remove(&state.tenant);
            }
        }
        // Close the lifecycle spans (queue may still be open for a request
        // that never activated a job of its own).
        drop(state.queue_span.take());
        drop(state.run_span.take());
        let wall_time_s = state.started_wall.elapsed().as_secs_f64();
        let report = NetworkReport {
            network: state.network_name,
            aggregate: NetworkAggregate::from_layers(&layers),
            layers,
            unique_searches,
            cache_hits,
            total_evaluations,
            wall_time_s,
            evals_per_sec: if wall_time_s > 0.0 {
                total_evaluations as f64 / wall_time_s
            } else {
                0.0
            },
            request_id: request,
            tenant: state.tenant,
            shared_searches: state.shared_units,
            cache: self.cache.stats(),
            telemetry: mm_telemetry::snapshot_if_enabled(),
        };
        self.park_result(request, Ok(report));
    }

    /// Map every layer of `network` under the service's default request
    /// config, returning per-layer reports in network order plus
    /// repeat-weighted aggregates — the legacy synchronous surface, now
    /// sugar over [`submit`](MappingService::submit) +
    /// [`wait`](MappingService::wait).
    ///
    /// Distinct uncached layer shapes each get one search job of
    /// `search_size` evaluations, multiplexed over the shared pool; repeated
    /// shapes — within this network or cached from earlier calls — replay
    /// the existing result without searching. With `use_cache` off, every
    /// layer occurrence searches; the searches are identical, so the best
    /// mappings and metrics are unchanged — only the evaluation cost and
    /// the provenance fields (`cache_hit`, `unique_searches`, …) differ.
    pub fn map_network(&mut self, network: &Network) -> NetworkReport {
        let config = self.default_request.clone();
        self.map_network_with(network, config)
    }

    /// [`map_network`](MappingService::map_network) with an explicit
    /// per-request config.
    ///
    /// # Panics
    ///
    /// Panics if admission fails (other requests hold the queue) or the
    /// request fails (a panicking evaluator/searcher) — matching the legacy
    /// synchronous contract. Use `submit`/`wait` for typed errors.
    pub fn map_network_with(&mut self, network: &Network, config: RequestConfig) -> NetworkReport {
        match self.submit(network, config) {
            Ok(handle) => match self.wait(handle) {
                Ok(report) => report,
                // mm-lint: allow(panic): the legacy synchronous surface
                // propagates a request failure as a panic, exactly as the
                // pre-multi-tenant service did via EvalPool::recv.
                Err(err) => panic!("map_network: {err}"),
            },
            // mm-lint: allow(panic): same legacy contract — the synchronous
            // caller has no handle to surface a typed rejection on.
            Err(err) => panic!("map_network: {err}"),
        }
    }

    /// Map a single named problem (a one-layer network).
    pub fn map_problem(&mut self, name: &str, problem: ProblemSpec) -> LayerReport {
        let net = Network::new(name).with_layer(name, problem, 1);
        self.map_network(&net)
            .layers
            .into_iter()
            .next()
            // mm-lint: allow(panic): map_network emits exactly one
            // LayerReport per layer and `net` has one layer by construction.
            .expect("one-layer network yields one report")
    }

    /// The shard jobs of one distinct layer search: one job per map-space
    /// shard (a single full-space job when `shards` is 1), with the layer's
    /// evaluation budget split exactly across the shards and each shard's
    /// RNG stream derived from the fingerprint *and* the shard index.
    fn shard_job_specs(
        &self,
        request: u64,
        weight: u64,
        fingerprint: u64,
        problem: &ProblemSpec,
        config: &RequestConfig,
    ) -> Vec<JobSpec> {
        let space = MapSpace::new(problem.clone(), self.arch.mapping_constraints());
        let requested = config.shards.max(1);
        let shards = match &config.shard_axes {
            Some(kinds) => space.clamp_shard_count_for(kinds, requested),
            None => space.clamp_shard_count(requested),
        };
        (0..shards)
            .map(|s| {
                let view: Box<dyn mm_mapspace::MapSpaceView> = if shards > 1 {
                    match &config.shard_axes {
                        Some(kinds) => Box::new(space.shard_with(kinds, s, shards)),
                        None => Box::new(space.shard(s, shards)),
                    }
                } else {
                    Box::new(space.clone())
                };
                JobSpec {
                    request,
                    weight,
                    space: view,
                    evaluator: (self.evaluator_factory)(&self.arch, problem),
                    search: (self.search_factory)(),
                    // Seed from the fingerprint and shard, not the layer
                    // position: a layer's result is independent of where it
                    // appears, so cache replay is exactly what a fresh
                    // search would have produced.
                    seed: derive_stream_seed(config.seed ^ fingerprint, s),
                    budget: split_evenly(config.search_size, s, shards),
                    sync: config.sync,
                    shard_horizon: config.shard_horizon,
                }
            })
            .collect()
    }
}
