//! [`MappingService`]: the whole-network mapping front-end.
//!
//! One service owns one long-lived [`EvalPool`]; every
//! [`map_network`](MappingService::map_network) call fingerprints each
//! layer, schedules one search job per *distinct uncached* fingerprint over
//! the shared pool (bounded queue, deterministic first-occurrence order),
//! and assembles a [`NetworkReport`] with cached layers replayed for free.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use mm_accel::{Architecture, CostModel};
use mm_mapper::{
    derive_stream_seed, split_evenly, CostEvaluator, EvalPool, ModelEvaluator, OptMetric,
};
use mm_mapspace::{MapSpace, ProblemSpec};
use mm_search::{ProposalSearch, RandomSearch};
use mm_workloads::Network;
use serde::{Deserialize, Serialize};

use crate::cache::{fingerprint_parts, CachedLayer, ResultCache};
use crate::config::ServeConfig;
use crate::report::{LayerReport, NetworkAggregate, NetworkReport};
use crate::scheduler::{run_jobs, JobSpec};

/// Builds the cost evaluator for one layer's problem.
pub type EvaluatorFactory = Box<dyn Fn(&Architecture, &ProblemSpec) -> Arc<dyn CostEvaluator>>;

/// Builds a fresh searcher instance for one layer job.
pub type SearchFactory = Box<dyn Fn() -> Box<dyn ProposalSearch>>;

/// Lifetime counters of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Fresh layer searches run.
    pub searches_run: u64,
    /// Layers answered from cache.
    pub cache_hits: u64,
    /// Evaluations spent across all fresh searches.
    pub total_evaluations: u64,
}

/// How one layer of a `map_network` call is satisfied.
enum LayerPlan {
    /// Replay this cached result (captured at plan time, so a bounded
    /// cache evicting the entry mid-call cannot strand the layer).
    Hit(Arc<CachedLayer>),
    /// Unique search `job` (an index into this call's merged per-unique
    /// results, each covering one or more shard jobs) performs the search.
    Search { job: usize },
}

/// A long-lived, multi-workload mapping service over one shared eval pool.
pub struct MappingService {
    arch: Architecture,
    config: ServeConfig,
    pool: EvalPool,
    cache: ResultCache,
    evaluator_factory: EvaluatorFactory,
    evaluator_tag: String,
    search_factory: SearchFactory,
    searcher_name: String,
    /// Pre-rendered constant portion of the fingerprint (arch, searcher,
    /// evaluator, seed, budget) — recomputed only when the searcher changes,
    /// so per-layer fingerprinting formats just the problem.
    config_tag: String,
    stats: ServeStats,
}

impl MappingService {
    /// A service mapping onto `arch` with the reference cost model
    /// (optimizing `edp`, with `energy` and `delay` carried for the
    /// network aggregates) and random search per layer.
    pub fn new(arch: Architecture, config: ServeConfig) -> Self {
        let factory: EvaluatorFactory = Box::new(|arch, problem| {
            Arc::new(ModelEvaluator::with_metrics(
                CostModel::new(arch.clone(), problem.clone()),
                vec![OptMetric::Edp, OptMetric::Energy, OptMetric::Delay],
            ))
        });
        Self::with_evaluator_factory(
            arch,
            config,
            factory,
            "reference-model[edp,energy,delay]".to_string(),
        )
    }

    /// A service with a custom per-problem evaluator. `evaluator_tag` is a
    /// stable description of the evaluator configuration; it participates in
    /// result-cache fingerprints, so distinct evaluators must use distinct
    /// tags.
    pub fn with_evaluator_factory(
        arch: Architecture,
        config: ServeConfig,
        evaluator_factory: EvaluatorFactory,
        evaluator_tag: String,
    ) -> Self {
        let search_factory: SearchFactory = Box::new(|| Box::new(RandomSearch::new()));
        let searcher_name = search_factory().name().to_string();
        let config_tag = Self::config_tag(&arch, &searcher_name, &evaluator_tag, &config);
        MappingService {
            arch,
            config,
            pool: EvalPool::shared(config.workers.max(1)),
            cache: ResultCache::with_capacity(config.cache_capacity),
            evaluator_factory,
            evaluator_tag,
            search_factory,
            searcher_name,
            config_tag,
            stats: ServeStats::default(),
        }
    }

    /// Replace the per-layer search method (builder style).
    ///
    /// Cached results are dropped: fingerprints identify searchers by name
    /// only (`"GA"`, `"SA"`, …), so results produced by a differently
    /// configured searcher of the same name must not be replayed.
    pub fn with_searcher(mut self, search_factory: SearchFactory) -> Self {
        self.searcher_name = search_factory().name().to_string();
        self.search_factory = search_factory;
        self.config_tag = Self::config_tag(
            &self.arch,
            &self.searcher_name,
            &self.evaluator_tag,
            &self.config,
        );
        self.cache = ResultCache::with_capacity(self.config.cache_capacity);
        self
    }

    /// Render the layer-independent fingerprint portion. The shard count,
    /// the sync policy, and the shard-horizon hint are part of the search
    /// configuration (they change which subspaces each job covers, the
    /// per-shard budget split, how a job's trajectory re-anchors
    /// mid-search, and how schedule-based searchers size their schedules),
    /// so all three are folded into the fingerprint — cached replays never
    /// cross shard, sync, or horizon configurations.
    fn config_tag(
        arch: &Architecture,
        searcher_name: &str,
        evaluator_tag: &str,
        config: &ServeConfig,
    ) -> String {
        format!(
            "{arch:?}|{searcher_name}|{evaluator_tag}|seed={} search_size={} shards={} sync={} \
             shard_horizon={}",
            config.seed,
            config.search_size,
            config.shards.max(1),
            config.sync.canonical_string(),
            config.shard_horizon,
        )
    }

    /// The architecture served.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Worker threads of the shared pool.
    pub fn pool_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Distinct results currently cached.
    pub fn cached_results(&self) -> usize {
        self.cache.len()
    }

    /// Deterministic cache/replay key for a problem under this service's
    /// architecture, searcher, evaluator, and search budget/seed.
    fn fingerprint(&self, problem: &ProblemSpec) -> u64 {
        fingerprint_parts(&[&format!("{problem:?}"), &self.config_tag])
    }

    /// Map every layer of `network`, returning per-layer reports in network
    /// order plus repeat-weighted aggregates.
    ///
    /// Distinct uncached layer shapes each get one search job of
    /// `search_size` evaluations, multiplexed over the shared pool; repeated
    /// shapes — within this network or cached from earlier calls — replay
    /// the existing result without searching. With `use_cache` off, every
    /// layer occurrence searches; the searches are identical, so the best
    /// mappings and metrics are unchanged — only the evaluation cost and
    /// the provenance fields (`cache_hit`, `unique_searches`, …) differ.
    pub fn map_network(&mut self, network: &Network) -> NetworkReport {
        let start = Instant::now();

        // Plan: one search (of one or more shard jobs) per distinct uncached
        // fingerprint, in first-occurrence order (the deterministic job
        // ordering of the service).
        let mut plans: Vec<LayerPlan> = Vec::with_capacity(network.len());
        let mut jobs: Vec<JobSpec> = Vec::new();
        let mut unique_fingerprints: Vec<u64> = Vec::new();
        // Per unique search: its contiguous job-index range (one job per
        // map-space shard; shard config routed through the job queue).
        let mut job_ranges: Vec<std::ops::Range<usize>> = Vec::new();
        let mut unique_for_fp: HashMap<u64, usize> = HashMap::new();
        for layer in &network.layers {
            let fp = self.fingerprint(&layer.problem);
            let cached = if self.config.use_cache {
                self.cache.lookup(fp)
            } else {
                None
            };
            let plan = if let Some(cached) = cached {
                LayerPlan::Hit(cached)
            } else if self.config.use_cache && unique_for_fp.contains_key(&fp) {
                LayerPlan::Search {
                    job: unique_for_fp[&fp],
                }
            } else {
                let unique = unique_fingerprints.len();
                let start = jobs.len();
                jobs.extend(self.shard_job_specs(start, fp, &layer.problem));
                job_ranges.push(start..jobs.len());
                unique_fingerprints.push(fp);
                unique_for_fp.insert(fp, unique);
                LayerPlan::Search { job: unique }
            };
            plans.push(plan);
        }

        // Run all fresh searches over the shared, long-lived pool.
        let unique_searches = unique_fingerprints.len();
        let outcomes = run_jobs(
            &mut self.pool,
            jobs,
            self.config.max_active_jobs,
            self.config.queue_capacity,
        );
        // Merge each unique search's shard outcomes in shard order
        // (strictly-better-wins, budgets summed).
        let results: Vec<Arc<CachedLayer>> = job_ranges
            .iter()
            .map(|range| {
                let group = &outcomes[range.clone()];
                let mut best: Option<(mm_mapspace::Mapping, mm_mapper::Evaluation)> = None;
                for o in group {
                    if let Some((m, e)) = &o.best {
                        let take = match best.as_ref() {
                            None => true,
                            Some((_, incumbent)) => e.better_than(incumbent),
                        };
                        if take {
                            best = Some((m.clone(), e.clone()));
                        }
                    }
                }
                let (best_mapping, best_metrics) = match best {
                    Some((m, e)) => (Some(m), Some(e)),
                    None => (None, None),
                };
                let first = &group[0];
                // Shard convergence curves merge in shard order (round-robin
                // global eval indexing), mirroring the mapper's report.
                let convergence = group
                    .iter()
                    .map(|o| o.convergence.clone())
                    .collect::<Option<Vec<_>>>()
                    .filter(|t| !t.is_empty())
                    .map(|t| mm_search::merge_shard_convergence(&t));
                Arc::new(CachedLayer {
                    best_mapping,
                    best_metrics,
                    metric_names: first.metric_names.clone(),
                    evaluations: group.iter().map(|o| o.evaluations).sum(),
                    searcher: first.searcher.clone(),
                    sync: self.config.sync,
                    wall_time_s: group.iter().map(|o| o.wall_time_s).fold(0.0, f64::max),
                    exhausted: group.iter().any(|o| o.exhausted),
                    convergence,
                })
            })
            .collect();
        let total_evaluations: u64 = results.iter().map(|r| r.evaluations).sum();
        if self.config.use_cache {
            for (fp, result) in unique_fingerprints.iter().zip(&results) {
                self.cache.insert(*fp, Arc::clone(result));
            }
        }

        // Assemble per-layer reports in network order. A layer is a cache
        // hit unless it is the first occurrence that triggered its job.
        let mut first_use: Vec<bool> = vec![false; unique_searches];
        let mut cache_hits = 0usize;
        let layers: Vec<LayerReport> = network
            .layers
            .iter()
            .zip(&plans)
            .map(|(layer, plan)| {
                let (cached, hit): (Arc<CachedLayer>, bool) = match plan {
                    // A Hit plan means the fingerprint was cached before
                    // this call started.
                    LayerPlan::Hit(cached) => (Arc::clone(cached), true),
                    LayerPlan::Search { job } => {
                        let first = !first_use[*job];
                        first_use[*job] = true;
                        (Arc::clone(&results[*job]), !first)
                    }
                };
                if hit {
                    cache_hits += 1;
                }
                LayerReport::from_cached(
                    &layer.name,
                    &layer.problem.name,
                    layer.repeat,
                    hit,
                    &cached,
                )
            })
            .collect();

        let wall_time_s = start.elapsed().as_secs_f64();
        self.stats.searches_run += unique_searches as u64;
        self.stats.cache_hits += cache_hits as u64;
        self.stats.total_evaluations += total_evaluations;

        NetworkReport {
            network: network.name.clone(),
            aggregate: NetworkAggregate::from_layers(&layers),
            layers,
            unique_searches,
            cache_hits,
            total_evaluations,
            wall_time_s,
            evals_per_sec: if wall_time_s > 0.0 {
                total_evaluations as f64 / wall_time_s
            } else {
                0.0
            },
            cache: self.cache.stats(),
            telemetry: mm_telemetry::snapshot_if_enabled(),
        }
    }

    /// Map a single named problem (a one-layer network).
    pub fn map_problem(&mut self, name: &str, problem: ProblemSpec) -> LayerReport {
        let net = Network::new(name).with_layer(name, problem, 1);
        self.map_network(&net)
            .layers
            .into_iter()
            .next()
            // mm-lint: allow(panic): map_network emits exactly one
            // LayerReport per layer and `net` has one layer by construction.
            .expect("one-layer network yields one report")
    }

    /// The shard jobs of one distinct layer search: one job per map-space
    /// shard (a single full-space job when `shards` is 1), with the layer's
    /// evaluation budget split exactly across the shards and each shard's
    /// RNG stream derived from the fingerprint *and* the shard index.
    fn shard_job_specs(
        &self,
        base_index: usize,
        fingerprint: u64,
        problem: &ProblemSpec,
    ) -> Vec<JobSpec> {
        let space = MapSpace::new(problem.clone(), self.arch.mapping_constraints());
        let shards = space.clamp_shard_count(self.config.shards.max(1));
        (0..shards)
            .map(|s| {
                let view: Box<dyn mm_mapspace::MapSpaceView> = if shards > 1 {
                    Box::new(space.shard(s, shards))
                } else {
                    Box::new(space.clone())
                };
                JobSpec {
                    index: base_index + s,
                    space: view,
                    evaluator: (self.evaluator_factory)(&self.arch, problem),
                    search: (self.search_factory)(),
                    // Seed from the fingerprint and shard, not the layer
                    // position: a layer's result is independent of where it
                    // appears, so cache replay is exactly what a fresh
                    // search would have produced.
                    seed: derive_stream_seed(self.config.seed ^ fingerprint, s),
                    budget: split_evenly(self.config.search_size, s, shards),
                    sync: self.config.sync,
                    shard_horizon: self.config.shard_horizon,
                }
            })
            .collect()
    }
}
